//! Seeded chaos suite: randomized-but-reproducible kill schedules over
//! the store writer, driven by the deterministic fault facility.
//!
//! Each round derives a fault site (`hop` / `journal` / `manifest`), a
//! fault kind (write error / torn write), and an operation ordinal from
//! one seed, kills a preprocessing run with it, and checks the crash
//! contract: the interrupted store either reloads complete or fails
//! `open` — never wrong data — and resuming produces a store
//! byte-identical to an uninterrupted run.
//!
//! The seed comes from `PPGNN_FAULTS="seed=<n>"` (the CI chaos leg sets
//! it per run and echoes it) and defaults to a fixed constant, so a
//! red run reproduces locally with the printed seed.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ppgnn_core::preprocess::Preprocessor;
use ppgnn_dataio::fault::{self, FaultKind, FaultPlan};
use ppgnn_dataio::FeatureStore;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppgnn-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// FNV-1a over every file (sorted relative paths and contents).
fn dir_digest(dir: &Path) -> u64 {
    fn walk(dir: &Path, root: &Path, files: &mut Vec<(String, PathBuf)>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(&path, root, files);
            } else {
                let rel = path.strip_prefix(root).unwrap();
                files.push((rel.to_string_lossy().into_owned(), path.clone()));
            }
        }
    }
    let mut files = Vec::new();
    walk(dir, dir, &mut files);
    files.sort();
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    };
    for (rel, path) in files {
        eat(rel.as_bytes());
        eat(&fs::read(path).unwrap());
    }
    h
}

/// The fault plan is process-global; tests that install one take this
/// lock so a concurrent test's `install`/`clear` can't disarm a round
/// mid-run.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// xorshift64* — deterministic round derivation from the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

#[test]
fn seeded_kill_schedule_resumes_byte_identical() {
    let _guard = FAULT_LOCK.lock().unwrap();
    let seed = fault::env_seed().unwrap_or(0x5eed_c0ffee);
    println!("chaos seed: {seed} (reproduce with PPGNN_FAULTS=\"seed={seed}\")");
    let mut rng = Rng(seed | 1);

    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 3).unwrap();
    let prep = Preprocessor::new(vec![Operator::SymNorm], 2);
    let clean = temp_dir("clean");
    prep.run_with_store(&data, &clean, "chaos-sim", 16).unwrap();
    let clean_digest = dir_digest(&clean);

    for round in 0..6 {
        let site = ["hop", "journal", "manifest"][(rng.next() % 3) as usize];
        let kind = if rng.next().is_multiple_of(2) {
            FaultKind::WriteErr
        } else {
            FaultKind::Torn
        };
        // `hop` and `journal` see 3 writes per run, `manifest` one; an
        // ordinal past the last write means the round survives — the
        // contract must hold either way.
        let nth = 1 + rng.next() % 4;
        let dir = temp_dir(&format!("round-{round}"));
        println!(
            "round {round}: kill {site}:{}:{nth}+ in {}",
            kind.name(),
            dir.display()
        );

        fault::install(
            FaultPlan::new()
                .with_spec(site, kind, nth, true)
                .scoped(&dir.to_string_lossy()),
        );
        let result = prep.run_with_store(&data, &dir, "chaos-sim", 16);
        fault::clear();

        match result {
            Ok(_) => {
                // The schedule never fired (ordinal past the run's last
                // write): the store must already be complete and exact.
                assert_eq!(
                    dir_digest(&dir),
                    clean_digest,
                    "round {round}: surviving run produced different bytes"
                );
            }
            Err(_) => {
                // Killed: the store is detectably incomplete (the
                // manifest commit point is missing), never partial-but-
                // openable...
                assert!(
                    FeatureStore::open(&dir).is_err(),
                    "round {round}: interrupted store opened cleanly"
                );
                // ...and resuming completes it bit-exactly.
                prep.run_with_store(&data, &dir, "chaos-sim", 16)
                    .unwrap_or_else(|e| panic!("round {round}: resume failed: {e}"));
                assert_eq!(
                    dir_digest(&dir),
                    clean_digest,
                    "round {round}: resumed store differs from the clean run"
                );
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::remove_dir_all(&clean).unwrap();
}

#[test]
fn seeded_bit_flips_never_read_back_as_clean_data() {
    let _guard = FAULT_LOCK.lock().unwrap();
    let seed = fault::env_seed().unwrap_or(0x5eed_c0ffee);
    println!("chaos seed: {seed} (reproduce with PPGNN_FAULTS=\"seed={seed}\")");
    // Offset the stream so this test's rounds differ from the kill
    // schedule's under the same seed.
    let mut rng = Rng(seed.wrapping_add(1) | 1);

    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 3).unwrap();
    let prep = Preprocessor::new(vec![Operator::SymNorm], 2);
    let clean = temp_dir("flip-clean");
    let (_, mut reference) = prep.run_with_store(&data, &clean, "chaos-sim", 16).unwrap();

    for round in 0..4 {
        // Flip one deterministic bit in the nth hop-file commit: the
        // write "succeeds", so the run completes and the store opens —
        // but reads must either match the clean run exactly or fail
        // with a located checksum error. Silently different data is the
        // one forbidden outcome.
        let nth = 1 + rng.next() % 3;
        let dir = temp_dir(&format!("flip-{round}"));
        fault::install(
            FaultPlan::one_shot("hop", FaultKind::BitFlip, nth).scoped(&dir.to_string_lossy()),
        );
        let result = prep.run_with_store(&data, &dir, "chaos-sim", 16);
        fault::clear();

        match result {
            Ok((_, mut store)) => {
                for k in 0..3 {
                    match store.read_full_hop(k) {
                        Ok(m) => {
                            let want = reference.read_full_hop(k).unwrap();
                            assert_eq!(
                                m.as_slice(),
                                want.as_slice(),
                                "round {round}: hop {k} read back silently wrong data"
                            );
                        }
                        Err(e) => {
                            assert!(
                                matches!(&e, ppgnn_dataio::DataIoError::Corrupt(c)
                                    if c.chunk.is_some()),
                                "round {round}: hop {k} failed without location: {e:?}"
                            );
                        }
                    }
                }
            }
            Err(e) => {
                // A flip that lands in the hop header fails the
                // writer's own finish-time open — also a detected
                // outcome, never silent.
                println!("round {round}: flip detected at finish: {e}");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::remove_dir_all(&clean).unwrap();
}
