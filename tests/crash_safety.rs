//! Crash-safety integration suite: the corruption matrix and
//! kill-and-resume byte-equality pins.
//!
//! Two properties the storage stack must hold under any interruption or
//! media fault:
//!
//! 1. **Never silently wrong data** — a tampered store (truncation, bit
//!    flip, torn in-place write) surfaces a *located* `Corrupt` error
//!    (path, hop, and — for payload damage — chunk) at open or first
//!    read, for every store dtype and for sharded stores at any `P`.
//! 2. **Resume is exact** — a run killed by an injected write fault
//!    leaves a detectably incomplete store (no manifest ⇒ `open`
//!    fails), and re-running the same preprocessing resumes from the
//!    completed-units journal to a store byte-identical (FNV digest
//!    over every file) to an uninterrupted run.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ppgnn_core::preprocess::Preprocessor;
use ppgnn_dataio::fault::{self, FaultPlan};
use ppgnn_dataio::{
    DataIoError, FeatureStore, FeatureStoreWriter, ShardedFeatureStore, ShardedStoreWriter,
    StoreDtype, StoreMeta,
};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;
use ppgnn_tensor::Matrix;

/// Serializes the tests that install a global fault plan.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

const DTYPES: [StoreDtype; 4] = [
    StoreDtype::F32,
    StoreDtype::F16,
    StoreDtype::Bf16,
    StoreDtype::Int8,
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppgnn-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn meta(dtype: StoreDtype) -> StoreMeta {
    StoreMeta {
        dataset: "crash-test".into(),
        num_hops: 2,
        rows: 13,
        cols: 5,
        chunk_size: 4,
        dtype,
    }
}

fn hop_matrix(k: usize, rows: usize, cols: usize) -> Matrix {
    // Nonzero, row-varying values so every encoded payload byte region
    // differs from a constant overwrite.
    Matrix::from_fn(rows, cols, move |r, c| {
        (k * 1_000 + r * 10 + c) as f32 * 0.375 + 1.5
    })
}

fn build_store(dir: &Path, dtype: StoreDtype) -> FeatureStore {
    let m = meta(dtype);
    let mut w = FeatureStoreWriter::create(dir, m.clone()).unwrap();
    for k in 0..m.num_hops {
        w.write_hop(k, &hop_matrix(k, m.rows, m.cols)).unwrap();
    }
    w.finish().unwrap()
}

/// `PPGC` footer length for `n` chunks: magic + version + count + sums.
fn footer_len(num_chunks: usize) -> u64 {
    (4 + 4 + 8 + 8 * num_chunks) as u64
}

fn data_offset(dtype: StoreDtype) -> u64 {
    if matches!(dtype, StoreDtype::F32) {
        24
    } else {
        28
    }
}

/// FNV-1a over every file of a store directory (sorted relative paths
/// and contents), the byte-equality digest the resume pins compare.
fn dir_digest(dir: &Path) -> u64 {
    fn walk(dir: &Path, root: &Path, files: &mut Vec<(String, PathBuf)>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(&path, root, files);
            } else {
                let rel = path.strip_prefix(root).unwrap();
                files.push((rel.to_string_lossy().into_owned(), path.clone()));
            }
        }
    }
    let mut files = Vec::new();
    walk(dir, dir, &mut files);
    files.sort();
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    };
    for (rel, path) in files {
        eat(rel.as_bytes());
        eat(&fs::read(path).unwrap());
    }
    h
}

fn located_corrupt(err: &DataIoError, want_chunk: bool) -> bool {
    match err {
        DataIoError::Corrupt(c) => {
            c.path.is_some() && c.hop.is_some() && (!want_chunk || c.chunk.is_some())
        }
        _ => false,
    }
}

/// The three tamper modes, applied at a seeded payload offset.
enum Tamper {
    /// Cut the file below the payload end (a lost tail).
    Truncate,
    /// Flip one payload bit (silent media corruption).
    BitFlip,
    /// Overwrite from the offset to the payload end (a torn in-place
    /// rewrite that kept the right length).
    TornWrite,
}

fn apply_tamper(path: &Path, dtype: StoreDtype, num_chunks: usize, mode: &Tamper, seed: u64) {
    let bytes = fs::read(path).unwrap();
    let payload_end = bytes.len() as u64 - footer_len(num_chunks);
    let off = data_offset(dtype) + seed % (payload_end - data_offset(dtype));
    match mode {
        Tamper::Truncate => {
            fs::write(path, &bytes[..off as usize]).unwrap();
        }
        Tamper::BitFlip => {
            let mut bytes = bytes;
            bytes[off as usize] ^= 1u8 << (seed % 8) as u32;
            fs::write(path, bytes).unwrap();
        }
        Tamper::TornWrite => {
            let mut bytes = bytes;
            for b in &mut bytes[off as usize..payload_end as usize] {
                *b = 0xAA;
            }
            fs::write(path, bytes).unwrap();
        }
    }
}

#[test]
fn corruption_matrix_surfaces_located_errors_for_every_dtype() {
    for dtype in DTYPES {
        for (ti, mode) in [Tamper::Truncate, Tamper::BitFlip, Tamper::TornWrite]
            .iter()
            .enumerate()
        {
            let tag = format!("matrix-{}-{ti}", dtype.name());
            let dir = temp_dir(&tag);
            build_store(&dir, dtype);
            let m = meta(dtype);
            let hop = 1 + (ti % m.num_hops.saturating_sub(1));
            let seed = 0x9e37 + 17 * ti as u64 + 257 * hop as u64;
            let hop_file = dir.join(format!("hop_{hop}.ppgt"));
            apply_tamper(&hop_file, dtype, m.num_chunks(), mode, seed);
            match mode {
                Tamper::Truncate => {
                    // Length damage is caught at open, with path + hop.
                    let err = FeatureStore::open(&dir).err().unwrap_or_else(|| {
                        panic!("{}: truncated store opened cleanly", dtype.name())
                    });
                    assert!(
                        located_corrupt(&err, false),
                        "{}: truncation surfaced {err:?}",
                        dtype.name()
                    );
                }
                Tamper::BitFlip | Tamper::TornWrite => {
                    // Content damage keeps the right length: open
                    // succeeds, the first read of the damaged chunk
                    // fails with path + hop + chunk.
                    let mut store = FeatureStore::open(&dir).unwrap();
                    let err = store.read_full_hop(hop).err().unwrap_or_else(|| {
                        panic!("{}: tampered payload read back cleanly", dtype.name())
                    });
                    assert!(
                        located_corrupt(&err, true),
                        "{}: payload tamper surfaced {err:?}",
                        dtype.name()
                    );
                }
            }
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn sharded_corruption_is_located_at_every_partition_count() {
    for parts in [1usize, 2, 5] {
        let dir = temp_dir(&format!("sharded-matrix-{parts}"));
        let m = meta(StoreDtype::F32);
        let assignment: Vec<Vec<usize>> = {
            let mut a = vec![Vec::new(); parts];
            for r in 0..m.rows {
                a[r % parts].push(r);
            }
            a
        };
        let mut w = ShardedStoreWriter::create(&dir, m.clone(), &assignment, 2).unwrap();
        for k in 0..m.num_hops {
            let hop = hop_matrix(k, m.rows, m.cols);
            for (p, globals) in assignment.iter().enumerate() {
                w.submit(p, k, hop.gather_rows(globals)).unwrap();
            }
        }
        w.finish().unwrap();

        // Bit-flip the last partition's hop 1 payload: open succeeds,
        // the global read fails with a located chunk error.
        let victim = dir.join(format!("part_{}", parts - 1)).join("hop_1.ppgt");
        let part_meta = StoreMeta {
            rows: assignment[parts - 1].len(),
            ..m.clone()
        };
        apply_tamper(
            &victim,
            StoreDtype::F32,
            part_meta.num_chunks(),
            &Tamper::BitFlip,
            42 + parts as u64,
        );
        let mut store = ShardedFeatureStore::open(&dir).unwrap();
        let err = store
            .read_full_hop(1)
            .err()
            .unwrap_or_else(|| panic!("P={parts}: flipped partition read back cleanly"));
        assert!(located_corrupt(&err, true), "P={parts}: {err:?}");

        // Truncate partition 0's hop 0: the sharded open fails with a
        // located error from that partition store.
        apply_tamper(
            &dir.join("part_0").join("hop_0.ppgt"),
            StoreDtype::F32,
            StoreMeta {
                rows: assignment[0].len(),
                ..m.clone()
            }
            .num_chunks(),
            &Tamper::Truncate,
            7 + parts as u64,
        );
        let err = ShardedFeatureStore::open(&dir)
            .err()
            .unwrap_or_else(|| panic!("P={parts}: truncated partition opened cleanly"));
        assert!(located_corrupt(&err, false), "P={parts}: {err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

fn small_data() -> SynthDataset {
    SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 3).unwrap()
}

#[test]
fn killed_single_store_run_resumes_byte_identical_for_every_dtype() {
    let _guard = FAULT_LOCK.lock().unwrap();
    let data = small_data();
    for dtype in DTYPES {
        let prep = Preprocessor::new(vec![Operator::SymNorm], 2).with_store_dtype(dtype);
        let clean = temp_dir(&format!("clean-{}", dtype.name()));
        prep.run_with_store(&data, &clean, "crash-sim", 16).unwrap();

        // Kill the writer at its second hop commit; every later write
        // fails too (a dead process writes nothing more).
        let dir = temp_dir(&format!("killed-{}", dtype.name()));
        fault::install(FaultPlan::kill_at("hop", 2).scoped(&dir.to_string_lossy()));
        let err = prep.run_with_store(&data, &dir, "crash-sim", 16);
        fault::clear();
        assert!(
            err.is_err(),
            "{}: killed run reported success",
            dtype.name()
        );

        // Interrupted ⇒ detectably incomplete: the manifest (commit
        // point) is missing, so open fails rather than serving a
        // partial store.
        assert!(
            FeatureStore::open(&dir).is_err(),
            "{}: interrupted store opened cleanly",
            dtype.name()
        );

        // Resume re-runs the same call; the journal skips the committed
        // hop and the result is byte-identical to the clean run.
        prep.run_with_store(&data, &dir, "crash-sim", 16).unwrap();
        assert!(!dir.join("journal.txt").exists(), "journal must be gone");
        assert_eq!(
            dir_digest(&dir),
            dir_digest(&clean),
            "{}: resumed store differs from the uninterrupted run",
            dtype.name()
        );
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&clean).unwrap();
    }
}

#[test]
fn killed_sharded_run_resumes_byte_identical_for_every_dtype_and_p() {
    let _guard = FAULT_LOCK.lock().unwrap();
    let data = small_data();
    for dtype in DTYPES {
        for parts in [1usize, 2, 5] {
            let prep = Preprocessor::new(vec![Operator::SymNorm], 2)
                .with_store_dtype(dtype)
                .with_num_partitions(parts);
            let tag = format!("{}-p{parts}", dtype.name());
            let clean = temp_dir(&format!("sclean-{tag}"));
            prep.run_with_sharded_store(&data, &clean, "crash-sim", 16)
                .unwrap();

            let dir = temp_dir(&format!("skilled-{tag}"));
            fault::install(FaultPlan::kill_at("hop", 2).scoped(&dir.to_string_lossy()));
            let err = prep.run_with_sharded_store(&data, &dir, "crash-sim", 16);
            fault::clear();
            assert!(err.is_err(), "{tag}: killed run reported success");
            assert!(
                ShardedFeatureStore::open(&dir).is_err(),
                "{tag}: interrupted sharded store opened cleanly"
            );

            prep.run_with_sharded_store(&data, &dir, "crash-sim", 16)
                .unwrap();
            assert_eq!(
                dir_digest(&dir),
                dir_digest(&clean),
                "{tag}: resumed sharded store differs from the uninterrupted run"
            );
            fs::remove_dir_all(&dir).unwrap();
            fs::remove_dir_all(&clean).unwrap();
        }
    }
}
