//! Pins the shard-scheduled diffusion engine to the sequential reference.
//!
//! The shard×operator scheduler may only change *when* rows are computed,
//! never *what* they hold: per-row SpMM accumulation order is independent
//! of shard boundaries, so sharded pre-propagation must be **bit-identical**
//! to the sequential per-operator schedule — on the R-MAT-skewed synthetic
//! graphs whose hub rows are exactly what nnz-balanced shard plans exist
//! for. The same holds on disk: `run_with_store` through the async
//! double-buffered writer must produce **byte-identical** `FeatureStore`
//! files regardless of shard count or writer queue depth.

use preprop_gnn::core::preprocess::{Preprocessor, PrepropOutput};
use preprop_gnn::graph::synth::{DatasetProfile, SynthDataset};
use preprop_gnn::graph::Operator;

fn skewed_data() -> SynthDataset {
    // pokec-sim is R-MAT generated: heavy-tailed degrees, hub rows.
    SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.03), 11).unwrap()
}

fn assert_bit_identical(a: &PrepropOutput, b: &PrepropOutput, tag: &str) {
    for (part, (x, y)) in [
        ("train", (&a.train, &b.train)),
        ("val", (&a.val, &b.val)),
        ("test", (&a.test, &b.test)),
    ] {
        assert_eq!(x.labels, y.labels, "{tag}: {part} labels");
        for (r, (ha, hb)) in x.hops.iter().zip(&y.hops).enumerate() {
            let same = ha
                .as_slice()
                .iter()
                .zip(hb.as_slice())
                .all(|(u, v)| u.to_bits() == v.to_bits());
            assert!(same, "{tag}: {part} hop {r} is not bit-identical");
        }
    }
}

#[test]
fn sharded_diffusion_is_bit_identical_across_shard_counts() {
    let data = skewed_data();
    let prep = |shards: usize| {
        Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 3)
            .with_num_shards(shards)
            .run(&data)
    };
    let sequential = prep(1);
    for shards in [3, 7] {
        let sharded = prep(shards);
        assert_bit_identical(&sequential, &sharded, &format!("{shards} shards"));
    }
}

#[test]
fn sharded_diffusion_handles_mixed_operator_kinds() {
    // A series operator (PPR) between two simple ones exercises singleton
    // series groups embedded in a sharded schedule.
    let data = skewed_data();
    let ops = vec![
        Operator::SymNorm,
        Operator::Ppr { alpha: 0.15 },
        Operator::RowNorm,
    ];
    let sequential = Preprocessor::new(ops.clone(), 2)
        .with_num_shards(1)
        .run(&data);
    let sharded = Preprocessor::new(ops, 2).with_num_shards(5).run(&data);
    assert_bit_identical(&sequential, &sharded, "mixed operators");
}

#[test]
fn sharded_async_store_is_byte_identical_to_sequential_store() {
    let data = skewed_data();
    let base = std::env::temp_dir().join(format!("ppgnn-shardeq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let run = |shards: usize, queue: usize, tag: &str| {
        let dir = base.join(tag);
        let prep = Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 3)
            .with_num_shards(shards)
            .with_writer_queue(queue);
        let (_, store) = prep.run_with_store(&data, &dir, "pokec-sim", 32).unwrap();
        assert_eq!(store.meta().num_hops, 4);
        dir
    };

    let seq_dir = run(1, 1, "sequential");
    let shard_dir = run(4, 3, "sharded");

    // Every hop file and the manifest must match byte for byte — the
    // acceptance criterion for the sharded + async-writer pipeline.
    let mut files: Vec<String> = (0..4).map(|k| format!("hop_{k}.ppgt")).collect();
    files.push("manifest.txt".to_string());
    for name in files {
        let a = std::fs::read(seq_dir.join(&name)).unwrap();
        let b = std::fs::read(shard_dir.join(&name)).unwrap();
        assert_eq!(
            digest(&a),
            digest(&b),
            "{name} differs between sequential and sharded stores"
        );
        assert_eq!(a, b, "{name} digest collision with differing bytes");
    }
    std::fs::remove_dir_all(&base).unwrap();
}

/// FNV-1a — a cheap stand-in for a content digest, no external deps.
fn digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
