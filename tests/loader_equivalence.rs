//! The loaders-are-interchangeable property: every generation yields the
//! identical batch stream for a fixed seed (chunked loading with
//! `chunk_size = 1`), so the Section 4 optimizations change *mechanics*,
//! not *semantics*.

mod common;

use common::{drain, train_partition};
use ppgnn_core::loader::{
    BaselineLoader, ChunkReshuffleLoader, DoubleBufferLoader, FusedGatherLoader, Loader,
};

#[test]
fn all_generations_yield_identical_streams() {
    let data = train_partition();
    const SEED: u64 = 1234;
    const BATCH: usize = 37; // deliberately not dividing the partition

    let mut loaders: Vec<Box<dyn Loader>> = vec![
        Box::new(BaselineLoader::new(data.clone(), BATCH, SEED)),
        Box::new(FusedGatherLoader::new(data.clone(), BATCH, SEED)),
        Box::new(DoubleBufferLoader::new(data.clone(), BATCH, SEED)),
        Box::new(ChunkReshuffleLoader::new(data.clone(), BATCH, 1, SEED)),
    ];
    let reference = drain(loaders[0].as_mut());
    assert!(!reference.is_empty());
    for loader in loaders[1..].iter_mut() {
        let stream = drain(loader.as_mut());
        assert_eq!(
            stream.len(),
            reference.len(),
            "{} batch count",
            loader.name()
        );
        for (a, b) in reference.iter().zip(&stream) {
            assert_eq!(a.indices, b.indices, "{} indices differ", loader.name());
            assert_eq!(a.labels, b.labels, "{} labels differ", loader.name());
            for (ha, hb) in a.hops.iter().zip(&b.hops) {
                assert_eq!(ha, hb, "{} features differ", loader.name());
            }
        }
    }
}

#[test]
fn chunked_stream_covers_data_with_contiguous_runs() {
    let data = train_partition();
    let n = data.len();
    let mut loader = ChunkReshuffleLoader::new(data, 64, 16, 99);
    loader.start_epoch();
    let mut seen = Vec::new();
    while let Some(b) = loader.next_batch() {
        // runs of 16 consecutive indices (except chunk tails)
        for window in b.indices.windows(2) {
            let same_chunk = window[0] / 16 == window[1] / 16;
            if same_chunk {
                assert_eq!(window[1], window[0] + 1, "intra-chunk order broken");
            }
        }
        seen.extend(b.indices);
    }
    seen.sort_unstable();
    assert_eq!(seen, (0..n).collect::<Vec<_>>());
}

#[test]
fn different_seeds_give_different_orders_same_coverage() {
    let data = train_partition();
    let n = data.len();
    let mut a = FusedGatherLoader::new(data.clone(), 50, 1);
    let mut b = FusedGatherLoader::new(data, 50, 2);
    let sa = drain(&mut a);
    let sb = drain(&mut b);
    assert_ne!(sa[0].indices, sb[0].indices);
    let cover = |s: &[ppgnn_core::PpBatch]| {
        let mut v: Vec<usize> = s.iter().flat_map(|b| b.indices.clone()).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(cover(&sa), (0..n).collect::<Vec<_>>());
    assert_eq!(cover(&sa), cover(&sb));
}

#[test]
fn counters_expose_the_optimization_mechanism() {
    // gather ops: baseline = rows×hops, fused = batches×hops — the
    // kernel-launch reduction of Section 4.1 as a measured invariant.
    let data = train_partition();
    let hops = data.hops.len() as u64;
    let n = data.len() as u64;
    let mut base = BaselineLoader::new(data.clone(), 100, 5);
    let mut fused = FusedGatherLoader::new(data, 100, 5);
    drain(&mut base);
    drain(&mut fused);
    assert_eq!(base.counters().gather_ops, n * hops);
    assert_eq!(fused.counters().gather_ops, n.div_ceil(100) * hops);
    assert_eq!(
        base.counters().bytes_assembled,
        fused.counters().bytes_assembled,
        "same bytes move either way"
    );
}
