//! Determinism regression for the four loader generations.
//!
//! `crates/core/src/loader/mod.rs` documents that all loaders yield the
//! same [`PpBatch`] stream for a fixed seed. The `loader_equivalence` suite
//! checks the generations against each other *within* one process; this
//! suite additionally pins the stream **bytes** to a hard-coded digest, so
//! any accidental change to the RNG, the permutation algorithm, or batch
//! assembly (across refactors or vendored-dependency changes) fails loudly
//! instead of silently reshuffling every experiment in the repo.

mod common;

use std::sync::Arc;

use common::{drain, train_partition};
use ppgnn_core::loader::{
    BaselineLoader, ChunkReshuffleLoader, DoubleBufferLoader, FusedGatherLoader, Loader,
};
use ppgnn_core::PpBatch;

const SEED: u64 = 7;
const BATCH: usize = 23; // deliberately not dividing the partition

/// The digest every generation must reproduce for `SEED`/`BATCH` on the
/// fixed dataset below. If an intentional change to the RNG stream or the
/// shuffle algorithm lands, re-pin this constant in the same commit and
/// say so in the commit message — every experiment's batch order shifts.
const PINNED_DIGEST: u64 = 0x30c7_3b56_11ab_fca3;

/// FNV-1a over the exact bytes a batch stream exposes to training:
/// indices, labels, and the f32 bit patterns of every hop matrix.
fn digest(stream: &[PpBatch]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for batch in stream {
        for &i in &batch.indices {
            eat(&(i as u64).to_le_bytes());
        }
        for &l in &batch.labels {
            eat(&l.to_le_bytes());
        }
        for hop in &batch.hops {
            for &v in hop.as_slice() {
                eat(&v.to_bits().to_le_bytes());
            }
        }
    }
    h
}

fn generations(data: &Arc<ppgnn_core::preprocess::PrepropFeatures>) -> Vec<Box<dyn Loader>> {
    vec![
        Box::new(BaselineLoader::new(data.clone(), BATCH, SEED)),
        Box::new(FusedGatherLoader::new(data.clone(), BATCH, SEED)),
        Box::new(DoubleBufferLoader::new(data.clone(), BATCH, SEED)),
        Box::new(ChunkReshuffleLoader::new(data.clone(), BATCH, 1, SEED)),
    ]
}

#[test]
fn all_generations_match_the_pinned_byte_digest() {
    let data = train_partition();
    for mut loader in generations(&data) {
        let stream = drain(loader.as_mut());
        assert!(!stream.is_empty());
        assert_eq!(
            digest(&stream),
            PINNED_DIGEST,
            "{}: batch-stream bytes changed for fixed seed {SEED}",
            loader.name()
        );
    }
}

#[test]
fn reconstruction_reproduces_the_stream_bit_for_bit() {
    // Fresh loader, same seed, same process: byte-identical epoch.
    let data = train_partition();
    for (mut a, mut b) in generations(&data).into_iter().zip(generations(&data)) {
        let da = digest(&drain(a.as_mut()));
        let db = digest(&drain(b.as_mut()));
        assert_eq!(da, db, "{}: same-seed reconstruction diverged", a.name());
    }
}

#[test]
fn second_epoch_differs_but_is_itself_deterministic() {
    // Epochs reshuffle (stream changes), yet the *sequence* of epochs is a
    // pure function of the seed.
    let data = train_partition();
    let epoch2 = |()| {
        let mut l = FusedGatherLoader::new(data.clone(), BATCH, SEED);
        let e1 = digest(&drain(&mut l));
        let e2 = digest(&drain(&mut l));
        (e1, e2)
    };
    let (a1, a2) = epoch2(());
    let (b1, b2) = epoch2(());
    assert_ne!(a1, a2, "epoch 2 must reshuffle");
    assert_eq!(a1, b1);
    assert_eq!(a2, b2, "epoch sequence must be seed-deterministic");
}
