//! Pins the partition-parallel pipeline to the whole-graph reference.
//!
//! Partitioned preprocessing (ghost-row exchange over disjoint node
//! partitions, `ppgnn-partition`) may only change *where* rows are
//! computed and stored, never *what* they hold:
//!
//! * diffusion at `P ∈ {1, 2, 5}` must be **bit-identical** to the
//!   whole-graph path on R-MAT-skewed graphs, with mixed sym/rw/ppr
//!   operators (the series operators exercise per-term ghost exchange);
//! * every row served by the sharded feature store must be
//!   **byte-identical** (FNV digest + raw compare) to the same row of the
//!   single-store layout, and at `P = 1` the lone partition store's hop
//!   files must be byte-identical to the unsharded files;
//! * the [`ShardedStorageChunkLoader`] must drive an unmodified training
//!   epoch end-to-end, covering every training row exactly once.

use preprop_gnn::core::loader::{Loader, ShardedStorageChunkLoader, StorageChunkLoader};
use preprop_gnn::core::preprocess::{Preprocessor, PrepropOutput};
use preprop_gnn::dataio::AccessPath;
use preprop_gnn::graph::synth::{DatasetProfile, SynthDataset};
use preprop_gnn::graph::{BfsGrowPartitioner, Operator};

fn skewed_data() -> SynthDataset {
    // pokec-sim is R-MAT generated: heavy-tailed degrees, hub rows — the
    // case nnz-balanced partition cuts exist for.
    SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.03), 23).unwrap()
}

fn assert_bit_identical(a: &PrepropOutput, b: &PrepropOutput, tag: &str) {
    for (part, (x, y)) in [
        ("train", (&a.train, &b.train)),
        ("val", (&a.val, &b.val)),
        ("test", (&a.test, &b.test)),
    ] {
        assert_eq!(x.labels, y.labels, "{tag}: {part} labels");
        for (r, (ha, hb)) in x.hops.iter().zip(&y.hops).enumerate() {
            let same = ha
                .as_slice()
                .iter()
                .zip(hb.as_slice())
                .all(|(u, v)| u.to_bits() == v.to_bits());
            assert!(same, "{tag}: {part} hop {r} is not bit-identical");
        }
    }
}

#[test]
fn partitioned_diffusion_is_bit_identical_across_partition_counts() {
    let data = skewed_data();
    let ops = vec![
        Operator::SymNorm,
        Operator::Ppr { alpha: 0.15 },
        Operator::RowNorm,
    ];
    let reference = Preprocessor::new(ops.clone(), 3).run(&data);
    for parts in [1, 2, 5] {
        let partitioned = Preprocessor::new(ops.clone(), 3)
            .with_num_partitions(parts)
            .run_partitioned(&data);
        assert_bit_identical(&reference, &partitioned, &format!("{parts} partitions"));
        // The balance table covers the whole graph.
        let stats = &partitioned.expansion.partitions;
        assert!(!stats.is_empty() && stats.len() <= parts);
        assert_eq!(
            stats.iter().map(|s| s.rows).sum::<usize>(),
            data.graph.num_nodes()
        );
        if parts == 1 {
            assert_eq!(stats[0].ghost_rows, 0, "P=1 must exchange nothing");
        }
    }
}

#[test]
fn bfs_grow_partitioner_matches_too() {
    let data = skewed_data();
    let ops = vec![Operator::SymNorm, Operator::RowNorm];
    let reference = Preprocessor::new(ops.clone(), 2).run(&data);
    let partitioned = Preprocessor::new(ops, 2)
        .with_num_partitions(4)
        .run_partitioned_with(&data, &BfsGrowPartitioner, preprop_gnn::tensor::pool());
    assert_bit_identical(&reference, &partitioned, "bfs-grow");
}

#[test]
fn sharded_store_rows_are_byte_identical_to_single_store() {
    let data = skewed_data();
    let base = std::env::temp_dir().join(format!("ppgnn-parteq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let prep = Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 3);

    let (_, mut single) = prep
        .run_with_store(&data, base.join("single"), "pokec-sim", 32)
        .unwrap();

    for parts in [1usize, 4] {
        let dir = base.join(format!("p{parts}"));
        let (_, mut sharded) = prep
            .clone()
            .with_num_partitions(parts)
            .with_writer_queue(3)
            .run_with_sharded_store(&data, &dir, "pokec-sim", 32)
            .unwrap();
        assert_eq!(sharded.meta().rows, single.meta().rows);
        assert_eq!(sharded.meta().num_hops, 4);

        // Row-level byte identity: every global row of every hop, read
        // through the sharded mapping, digests identically to the single
        // store's row.
        let rows: Vec<usize> = (0..single.meta().rows).collect();
        for k in 0..4 {
            let a = single.read_rows(k, &rows, AccessPath::Direct).unwrap();
            let b = sharded.read_rows(k, &rows, AccessPath::Direct).unwrap();
            let bytes = |m: &preprop_gnn::tensor::Matrix| -> Vec<u8> {
                m.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect()
            };
            let (ab, bb) = (bytes(&a), bytes(&b));
            assert_eq!(
                digest(&ab),
                digest(&bb),
                "hop {k} digest differs at P={parts}"
            );
            assert_eq!(ab, bb, "hop {k} digest collision with differing bytes");
        }
    }

    // P=1 degenerates to the unsharded layout: hop files byte-identical.
    for k in 0..4 {
        let name = format!("hop_{k}.ppgt");
        let a = std::fs::read(base.join("single").join(&name)).unwrap();
        let b = std::fs::read(base.join("p1").join("part_0").join(&name)).unwrap();
        assert_eq!(digest(&a), digest(&b), "{name} differs between P=1 layouts");
        assert_eq!(a, b);
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn sharded_loader_drives_an_unmodified_training_epoch() {
    use preprop_gnn::models::{PpModel, Sgc};
    use preprop_gnn::nn::{CrossEntropyLoss, Mode, Optimizer, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let data = skewed_data();
    let prep = Preprocessor::new(vec![Operator::SymNorm], 1);
    let base = std::env::temp_dir().join(format!("ppgnn-partload-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let (out, _) = prep
        .clone()
        .with_num_partitions(3)
        .run_with_sharded_store(&data, &base, "pokec-sim", 32)
        .unwrap();

    // The same training loop the storage-path tests run — nothing about
    // the model, loss, or optimizer knows the store is sharded.
    let store = preprop_gnn::dataio::ShardedFeatureStore::open(&base).unwrap();
    let mut loader =
        ShardedStorageChunkLoader::new(store, out.train.labels.clone(), 64, AccessPath::Direct, 5);
    let mut model = Sgc::new(
        1,
        data.profile.feature_dim,
        2,
        &mut StdRng::seed_from_u64(1),
    );
    let mut opt = Sgd::new(0.05);
    let mut seen = Vec::new();
    for _ in 0..2 {
        loader.start_epoch();
        let mut rows = 0;
        while let Some(batch) = loader.next_batch() {
            let logits = model.forward(&batch.hops, Mode::Train);
            let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &batch.labels);
            model.zero_grad();
            model.backward(&grad);
            opt.step(&mut model.params());
            rows += batch.len();
            seen.extend(batch.indices.iter().copied());
        }
        assert!(loader.take_error().is_none(), "epoch must complete cleanly");
        assert_eq!(rows, out.train.len(), "every training row exactly once");
    }
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), out.train.len());
    // Reads fanned out across partition stores, sequentially.
    let io = loader.io_counters();
    assert_eq!(io.rand_requests, 0);
    assert!(loader.num_partitions() > 1);
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn single_partition_sharded_loader_matches_storage_loader_stream() {
    let data = skewed_data();
    let prep = Preprocessor::new(vec![Operator::SymNorm], 2);
    let base = std::env::temp_dir().join(format!("ppgnn-partstream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let (out, single) = prep
        .run_with_store(&data, base.join("single"), "pokec-sim", 16)
        .unwrap();
    let (_, sharded) = prep
        .clone()
        .with_num_partitions(1)
        .run_with_sharded_store(&data, base.join("sharded"), "pokec-sim", 16)
        .unwrap();

    let mut a =
        StorageChunkLoader::new(single, out.train.labels.clone(), 48, AccessPath::Direct, 77);
    let mut b = ShardedStorageChunkLoader::new(
        sharded,
        out.train.labels.clone(),
        48,
        AccessPath::Direct,
        77,
    );
    a.start_epoch();
    b.start_epoch();
    loop {
        match (a.next_batch(), b.next_batch()) {
            (None, None) => break,
            (Some(x), Some(y)) => {
                assert_eq!(x.indices, y.indices);
                assert_eq!(x.labels, y.labels);
                for (hx, hy) in x.hops.iter().zip(&y.hops) {
                    assert_eq!(hx.as_slice(), hy.as_slice());
                }
            }
            _ => panic!("loaders disagree on batch count"),
        }
    }
    std::fs::remove_dir_all(&base).unwrap();
}

/// FNV-1a — a cheap stand-in for a content digest, no external deps.
fn digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
