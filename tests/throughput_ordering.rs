//! Performance-plane integration: workloads built from *measured*
//! functional-plane quantities must reproduce the paper's throughput
//! orderings when replayed through the simulator at paper scale.

use ppgnn_core::bridge::{mp_workload, pp_workload, WorkloadScale};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_memsim::{mp_epoch, multigpu, pp_epoch, HardwareSpec, LoaderGen, MpSystem, Placement};
use ppgnn_models::{GraphSage, MpModel, Sign};
use ppgnn_sampler::{LaborSampler, SampleStats, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measures LABOR sampler statistics on the sim-scale graph.
///
/// The probe batch is kept small relative to the probe graph so the
/// neighbor expansion is not artificially capped by graph saturation.
fn measured_mp_inputs(profile: &DatasetProfile) -> (SampleStats, usize, u64) {
    let data = SynthDataset::generate(profile.scaled(0.5), 1).expect("generation succeeds");
    let mut sampler = LaborSampler::new(vec![15, 10, 5], 3);
    let mut rng = StdRng::seed_from_u64(0);
    let model = GraphSage::new(3, profile.feature_dim, 256, profile.num_classes, &mut rng);
    let batch_size = 256;
    let mut stats = SampleStats::default();
    let mut flops = 0u64;
    let batches = 4;
    for b in 0..batches {
        let seeds: Vec<usize> = (b * batch_size..(b + 1) * batch_size)
            .map(|i| i % data.graph.num_nodes())
            .collect();
        let batch = sampler.sample(&data.graph, &seeds);
        flops += model.flops_per_batch(&batch);
        stats.accumulate(&batch.stats);
    }
    (stats, batches, flops / batches as u64)
}

fn sign_workload(profile: &DatasetProfile, hops: usize) -> ppgnn_memsim::PpWorkload {
    let mut rng = StdRng::seed_from_u64(1);
    let model = Sign::new(
        hops,
        profile.feature_dim,
        512,
        profile.num_classes,
        0.0,
        &mut rng,
    );
    pp_workload(profile, &model, 1, 8000, 8000, WorkloadScale::Paper)
}

#[test]
fn ablation_stack_reaches_an_order_of_magnitude() {
    // Figure 9: fused ≈3×, +double-buffer, +chunk-reshuffle ⇒ ~15× total,
    // on a loading-dominated workload (wiki's F = 600 input; for
    // compute-bound configurations chunk reshuffling adds little — exactly
    // the Appendix F caveat).
    let spec = HardwareSpec::a6000_server();
    let w = sign_workload(&DatasetProfile::wiki_sim(), 3);
    let time = |g| pp_epoch(&spec, &w, g, Placement::Host).epoch_time;
    let base = time(LoaderGen::Baseline);
    let fused = time(LoaderGen::FusedGather);
    let dbuf = time(LoaderGen::DoubleBuffer);
    let chunk = time(LoaderGen::ChunkReshuffle);
    assert!(base / fused >= 2.0, "fused speedup {:.1}", base / fused);
    assert!(
        fused / dbuf >= 1.2,
        "double-buffer speedup {:.2}",
        fused / dbuf
    );
    assert!(dbuf / chunk >= 1.2, "chunk speedup {:.2}", dbuf / chunk);
    assert!(base / chunk >= 8.0, "total speedup {:.1}", base / chunk);
}

#[test]
fn optimized_pp_gnn_beats_mp_gnn_at_paper_scale() {
    // Tables 3–5 shape: optimized SIGN ≫ sampled GraphSAGE, driven by the
    // measured input-expansion factor of the sampler.
    let profile = DatasetProfile::products_sim();
    let spec = HardwareSpec::a6000_server();
    let (stats, batches, flops_per_batch) = measured_mp_inputs(&profile);
    assert!(
        stats.expansion_factor() > 5.0,
        "LABOR at [15,10,5] should expand inputs ≥5x, got {:.1}",
        stats.expansion_factor()
    );
    let mp = mp_workload(
        &profile,
        &stats,
        batches,
        flops_per_batch,
        256,
        4 << 20,
        WorkloadScale::Paper,
    );
    let pp = sign_workload(&profile, 3);

    let mp_best = mp_epoch(&spec, &mp, MpSystem::Preload).epoch_time;
    let pp_best = pp_epoch(&spec, &pp, LoaderGen::ChunkReshuffle, Placement::Host).epoch_time;
    assert!(
        mp_best / pp_best > 2.0,
        "optimized PP ({pp_best:.3}s) should beat best MP ({mp_best:.3}s)"
    );

    // Vanilla MP is at least an order of magnitude behind optimized PP.
    let mp_vanilla = mp_epoch(&spec, &mp, MpSystem::VanillaCpu).epoch_time;
    assert!(mp_vanilla / pp_best > 10.0);
}

#[test]
fn placement_study_matches_figure14() {
    // GPU/RR ≤ Host/CR < Host/RR, and SSD/CR within a small factor of
    // Host/CR (the Appendix H ordering).
    let spec = HardwareSpec::a6000_server();
    let w = sign_workload(&DatasetProfile::igb_medium_sim(), 3);
    let gpu_rr = pp_epoch(&spec, &w, LoaderGen::DoubleBuffer, Placement::Gpu).epoch_time;
    let host_cr = pp_epoch(&spec, &w, LoaderGen::ChunkReshuffle, Placement::Host).epoch_time;
    let host_rr = pp_epoch(&spec, &w, LoaderGen::DoubleBuffer, Placement::Host).epoch_time;
    let ssd_cr = pp_epoch(&spec, &w, LoaderGen::ChunkReshuffle, Placement::Ssd).epoch_time;
    assert!(
        gpu_rr <= host_cr * 1.05,
        "gpu {gpu_rr} vs host-cr {host_cr}"
    );
    assert!(host_cr < host_rr, "host-cr {host_cr} vs host-rr {host_rr}");
    assert!(
        ssd_cr < host_rr * 3.0,
        "ssd-cr {ssd_cr} should be competitive"
    );
}

#[test]
fn multi_gpu_scaling_shapes_match_tables_3_and_4() {
    let spec = HardwareSpec::a6000_server();
    let w = sign_workload(&DatasetProfile::igb_medium_sim(), 2);

    // GPU-resident SGD-RR scales; host-bound chunk reshuffling saturates.
    let gpu_curve =
        multigpu::scaling_curve(&spec, &w, LoaderGen::DoubleBuffer, Placement::Gpu, &[1, 4]);
    let host_curve = multigpu::scaling_curve(
        &spec,
        &w,
        LoaderGen::ChunkReshuffle,
        Placement::Host,
        &[1, 4],
    );
    let gpu_scale = gpu_curve[1].1 / gpu_curve[0].1;
    let host_scale = host_curve[1].1 / host_curve[0].1;
    assert!(gpu_scale > 2.0, "GPU-resident scaling {gpu_scale:.2}");
    assert!(
        host_scale < gpu_scale,
        "host CR must scale worse ({host_scale:.2} vs {gpu_scale:.2})"
    );
}

#[test]
fn igb_large_storage_throughput_gap_is_order_of_magnitude() {
    // Table 5: SIGN/HOGA from SSD ≫ storage-based MP-GNN training.
    let profile = DatasetProfile::igb_large_sim();
    let spec = HardwareSpec::a6000_server();
    let (stats, batches, flops_per_batch) = measured_mp_inputs(&profile);
    let mp = mp_workload(
        &profile,
        &stats,
        batches,
        flops_per_batch,
        256,
        4 << 20,
        WorkloadScale::Paper,
    );
    let pp = sign_workload(&profile, 3);
    let pp_ssd = pp_epoch(&spec, &pp, LoaderGen::ChunkReshuffle, Placement::Ssd).epoch_time;
    let mp_ssd = mp_epoch(
        &spec,
        &mp,
        MpSystem::Storage {
            cache_hit_rate: 0.5,
        },
    )
    .epoch_time;
    assert!(
        mp_ssd / pp_ssd > 8.0,
        "storage PP ({pp_ssd:.1}s) should dominate storage MP ({mp_ssd:.1}s)"
    );
}
