//! End-to-end pipeline test: synthesize → preprocess → train → evaluate,
//! across all three PP-GNN models.

use ppgnn_core::preprocess::Preprocessor;
use ppgnn_core::trainer::{LoaderKind, TrainConfig, Trainer};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;
use ppgnn_models::{Hoga, PpModel, Sgc, Sign};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 64,
        loader: LoaderKind::DoubleBuffer,
        lr: 3e-3,
        ..TrainConfig::default()
    }
}

#[test]
fn full_pipeline_beats_majority_for_every_pp_model() {
    let profile = DatasetProfile::products_sim().scaled(0.15);
    let data = SynthDataset::generate(profile, 42).expect("generation succeeds");
    let prep = Preprocessor::new(vec![Operator::SymNorm], 3).run(&data);
    let majority = data.majority_baseline();

    let f = profile.feature_dim;
    let c = profile.num_classes;
    let mut rng = StdRng::seed_from_u64(7);

    let mut results = Vec::new();
    let mut models: Vec<(&str, Box<dyn PpModel>)> = vec![
        ("sgc", Box::new(Sgc::new(3, f, c, &mut rng))),
        ("sign", Box::new(Sign::new(3, f, 48, c, 0.1, &mut rng))),
        ("hoga", Box::new(Hoga::new(3, f, 48, 4, c, 0.1, &mut rng))),
    ];
    for (name, model) in models.iter_mut() {
        let mut trainer = Trainer::new(config(25));
        let report = trainer.fit(model.as_mut(), &prep).expect("training runs");
        assert!(
            report.test_acc > majority + 0.1,
            "{name}: test acc {:.3} vs majority {:.3}",
            report.test_acc,
            majority
        );
        assert!(report.convergence_point.is_some(), "{name} never converged");
        results.push((*name, report.test_acc));
    }

    // On this centroid-signal synthetic task the deepest hop is already
    // nearly linearly separable, so SGC (one linear layer, few parameters)
    // can lead at small training budgets — unlike the paper's real
    // benchmarks. The hop-*interaction* advantage of SIGN/HOGA is pinned by
    // dedicated XOR-across-hops tests in `ppgnn-models`; here we only guard
    // against a multi-hop model collapsing.
    let sgc = results
        .iter()
        .find(|(n, _)| *n == "sgc")
        .expect("sgc ran")
        .1;
    let best_multi_hop = results
        .iter()
        .filter(|(n, _)| *n != "sgc")
        .map(|&(_, a)| a)
        .fold(0.0f64, f64::max);
    assert!(
        best_multi_hop >= 0.5 * sgc,
        "multi-hop models ({best_multi_hop:.3}) collapsed relative to SGC ({sgc:.3})"
    );
}

#[test]
fn more_hops_help_on_homophilous_graphs() {
    // The Figure 2 trend, measured for real: 3-hop SIGN beats 0-hop
    // (pure-MLP) SIGN on a noisy homophilous dataset.
    let profile = DatasetProfile::pokec_sim().scaled(0.12);
    let data = SynthDataset::generate(profile, 11).expect("generation succeeds");

    let acc_at = |hops: usize| {
        let prep = Preprocessor::new(vec![Operator::SymNorm], hops).run(&data);
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Sign::new(hops, profile.feature_dim, 32, 2, 0.1, &mut rng);
        let mut trainer = Trainer::new(config(10));
        trainer
            .fit(&mut model, &prep)
            .expect("training runs")
            .test_acc
    };
    let mlp = acc_at(0);
    let three_hop = acc_at(3);
    assert!(
        three_hop > mlp + 0.03,
        "3 hops ({three_hop:.3}) should clearly beat 0 hops ({mlp:.3})"
    );
}

#[test]
fn heterophilous_wiki_profile_is_harder_but_learnable() {
    let wiki = DatasetProfile::wiki_sim().scaled(0.05);
    let data = SynthDataset::generate(wiki, 5).expect("generation succeeds");
    let prep = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
    let mut rng = StdRng::seed_from_u64(9);
    let mut model = Sign::new(2, wiki.feature_dim, 32, wiki.num_classes, 0.1, &mut rng);
    let mut trainer = Trainer::new(config(10));
    let report = trainer.fit(&mut model, &prep).expect("training runs");
    assert!(
        report.test_acc > data.majority_baseline() + 0.1,
        "wiki-sim should still be learnable: {:.3}",
        report.test_acc
    );
}
