//! Bounds the streaming preprocessor's peak memory residency.
//!
//! The pre-streaming `Preprocessor::run` materialized every hop of every
//! operator chain twice over (clone into the per-hop chain, then a third
//! copy through `hstack`) — ~`3·K·(R+1)` full-graph matrices at peak. The
//! streaming pipeline holds only per-operator ping-pong propagation
//! buffers (plus two diffusion-series term buffers for `Ppr`/`Heat`)
//! beyond the gathered partition outputs. The shard-scheduled engine runs
//! up to `g = ⌊(R+2)/2⌋` simple operators concurrently — `2g ≤ R + 2`
//! buffers plus the group's CSR bases — so concurrency never widens the
//! budget this suite pins with a tracking global allocator: peak transient
//! allocation during `run` must stay within `R + 3` full-graph matrices,
//! on top of the returned output and one materialized CSR operator
//! (the cap's spare matrix absorbs a group's extra bases).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ppgnn_core::preprocess::Preprocessor;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;

/// System allocator wrapper tracking current and peak live bytes, plus a
/// raw allocation count (for the kernel-scratch reuse assertions).
struct TrackingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates allocation entirely to `System`; the added bookkeeping
// touches only atomics and never the returned memory.
unsafe impl GlobalAlloc for TrackingAlloc {
    // SAFETY: `unsafe` by trait signature; the `GlobalAlloc` contract is
    // met by forwarding to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarding the caller's layout unchanged to `System`.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        ptr
    }

    // SAFETY: `unsafe` by trait signature; `ptr`/`layout` come from the
    // paired `alloc` and are forwarded to `System` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        // SAFETY: forwarding the caller's pointer and layout unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

/// Serializes the tests in this binary: the allocator counters are
/// process-global, so concurrent tests would inflate each other's peaks.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Resets the peak to the current level and returns the level.
fn reset_peak() -> usize {
    let now = CURRENT.load(Ordering::Relaxed);
    PEAK.store(now, Ordering::Relaxed);
    now
}

fn full_matrix_bytes(data: &SynthDataset) -> usize {
    data.graph.num_nodes() * data.profile.feature_dim * 4
}

/// CSR bytes of the materialized operator (indices u32 + weights f32 per
/// nnz, indptr usize per row) — resident during a pass, not a hop matrix.
fn csr_bytes(data: &SynthDataset) -> usize {
    let nnz = data.graph.num_edges() + data.graph.num_nodes(); // + self loops
    nnz * 8 + (data.graph.num_nodes() + 1) * 8
}

fn assert_residency_bound(operators: Vec<Operator>, hops: usize, num_shards: Option<usize>) {
    let _guard = SERIAL.lock().unwrap();
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.05), 7)
        .expect("generation succeeds");
    let mut prep = Preprocessor::new(operators, hops);
    if let Some(shards) = num_shards {
        prep = prep.with_num_shards(shards);
    }
    let nf = full_matrix_bytes(&data);

    let before = reset_peak();
    let out = prep.run(&data);
    let peak_delta = PEAK.load(Ordering::Relaxed).saturating_sub(before);

    let output_bytes =
        (out.train.size_bytes() + out.val.size_bytes() + out.test.size_bytes()) as usize;
    // Outputs + (R+3) full-graph matrices + the CSR base + 25% slack for
    // labels/ids/allocator rounding. One operator pass at a time, so the
    // transient budget does not scale with K.
    let budget = output_bytes + (hops + 3) * nf + csr_bytes(&data) + output_bytes / 4 + nf / 4;
    assert!(
        peak_delta <= budget,
        "peak transient residency {peak_delta} B exceeds budget {budget} B \
         (outputs {output_bytes} B, full-graph matrix {nf} B, R={hops})"
    );
    // Sanity: the bound is meaningful — the old implementation's
    // 3·K·(R+1) chain would not fit it for these shapes.
    let k = out.expansion.num_operators;
    let old_peak_estimate = output_bytes + 3 * k * (hops + 1) * nf;
    assert!(
        old_peak_estimate > budget,
        "test would not have caught the pre-streaming implementation"
    );
}

#[test]
fn streaming_run_bounds_residency_single_operator() {
    assert_residency_bound(vec![Operator::SymNorm], 3, None);
}

#[test]
fn streaming_run_bounds_residency_two_operators() {
    assert_residency_bound(vec![Operator::SymNorm, Operator::RowNorm], 3, None);
}

#[test]
fn sharded_schedule_stays_inside_the_same_budget() {
    // Explicit shard count forces the concurrent shard×operator schedule
    // (auto mode may fall back to sequential on narrow machines): both
    // operators' ping-pong buffer pairs plus both CSR bases are live at
    // once, and the (R + 3)-matrix budget must still hold.
    assert_residency_bound(vec![Operator::SymNorm, Operator::RowNorm], 3, Some(4));
}

#[test]
fn linear_training_batches_reuse_scratch_with_bounded_allocations() {
    use ppgnn_nn::{Linear, Mode, Module};
    use ppgnn_tensor::Matrix;

    let _guard = SERIAL.lock().unwrap();
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(11)
    };
    let mut layer = Linear::new(64, 32, &mut rng);
    let x = Matrix::from_fn(256, 64, |r, c| ((r * 13 + c * 7) % 29) as f32 * 0.03 - 0.4);
    let g = Matrix::from_fn(256, 32, |r, c| ((r * 5 + c * 11) % 23) as f32 * 0.01 - 0.1);

    // Warm up the layer's scratch matrices and the thread-local GEMM
    // packing workspace — steady state is what training epochs live in.
    for _ in 0..3 {
        let y = layer.forward(&x, Mode::Train);
        let gx = layer.backward(&g);
        drop((y, gx));
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    let batches = 20;
    for _ in 0..batches {
        let y = layer.forward(&x, Mode::Train);
        let gx = layer.backward(&g);
        drop((y, gx));
    }
    let per_batch = (ALLOCS.load(Ordering::Relaxed) - before).div_ceil(batches);

    // Expected steady state: three allocations — the returned forward
    // output, the bias-grad sum_rows temporary, and the returned input
    // gradient. The cached input, the ∂W product, and both GEMM packing
    // buffers are reused, and the serial GEMM path computes no row-block
    // bookkeeping. Bound of 6 leaves headroom for allocator-internal
    // noise while still failing if any scratch path regresses to
    // allocate-per-batch.
    assert!(
        per_batch <= 6,
        "Linear forward+backward allocated {per_batch} times per batch; \
         scratch reuse (cached input, ∂W buffer, pack workspace) has regressed"
    );
}

#[test]
fn sign_forward_into_train_step_reuses_buffers() {
    use ppgnn_models::{PpModel, Sign};
    use ppgnn_nn::Mode;
    use ppgnn_tensor::Matrix;

    let _guard = SERIAL.lock().unwrap();
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(17)
    };
    let mut model = Sign::new(2, 16, 32, 4, 0.1, &mut rng);
    let hops: Vec<Matrix> = (0..3)
        .map(|h| {
            Matrix::from_fn(128, 16, |r, c| {
                ((r * 13 + c * 7 + h) % 29) as f32 * 0.03 - 0.4
            })
        })
        .collect();
    let g = Matrix::from_fn(128, 4, |r, c| ((r * 5 + c * 11) % 23) as f32 * 0.01 - 0.1);
    let mut logits = Matrix::default();

    // Warm up every slot: model scratch, training caches (handed back by
    // backward), and the thread-local GEMM packing workspace.
    for _ in 0..3 {
        model.forward_into(&hops, Mode::Train, &mut logits);
        model.zero_grad();
        model.backward(&g);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    let batches = 20;
    let mut fwd_allocs = 0usize;
    for _ in 0..batches {
        let t0 = ALLOCS.load(Ordering::Relaxed);
        model.forward_into(&hops, Mode::Train, &mut logits);
        fwd_allocs += ALLOCS.load(Ordering::Relaxed) - t0;
        model.zero_grad();
        model.backward(&g);
    }
    let per_batch = (ALLOCS.load(Ordering::Relaxed) - before).div_ceil(batches);

    // `forward_into` itself is allocation-free in steady state: slots are
    // resized in place and training caches ping-pong back from backward.
    assert_eq!(
        fwd_allocs, 0,
        "train-mode forward_into allocated {fwd_allocs} times over {batches} batches; \
         a forward slot or training-cache ping-pong has regressed"
    );
    // The remaining per-batch allocations are backward's returned
    // gradient chain (hsplit pieces plus per-layer input gradients).
    assert!(
        per_batch <= 48,
        "Sign forward_into+backward allocated {per_batch} times per batch; \
         the backward gradient chain has regressed"
    );

    // Eval-mode forward_into is fully allocation-free once warm.
    for _ in 0..3 {
        model.forward_into(&hops, Mode::Eval, &mut logits);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..batches {
        model.forward_into(&hops, Mode::Eval, &mut logits);
    }
    let eval_allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        eval_allocs, 0,
        "eval forward_into allocated {eval_allocs} times over {batches} batches; \
         the zero-alloc forward path has regressed"
    );
}

#[test]
fn compressed_store_reads_are_allocation_free_once_warm() {
    use ppgnn_dataio::{AccessPath, FeatureStoreWriter, StoreDtype, StoreMeta};
    use ppgnn_tensor::Matrix;

    let _guard = SERIAL.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("ppgnn-resid-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    for dtype in StoreDtype::ALL {
        let sub = dir.join(dtype.name());
        let meta = StoreMeta {
            dataset: "resid".into(),
            num_hops: 3,
            rows: 64,
            cols: 24,
            chunk_size: 16,
            dtype,
        };
        let mut w = FeatureStoreWriter::create(&sub, meta).unwrap();
        for k in 0..3 {
            let hop = Matrix::from_fn(64, 24, |r, c| ((k * 64 + r) * 24 + c) as f32 * 0.01 - 3.0);
            w.write_hop(k, &hop).unwrap();
        }
        let mut store = w.finish().unwrap();

        // Warm every slot: the caller-owned matrices, the store's encoded
        // staging buffer, and the all-hops vector.
        let mut chunk_slot = Matrix::default();
        let mut rows_slot = Matrix::default();
        let mut hop_slots = Vec::new();
        for _ in 0..2 {
            store
                .read_chunk_into(0, 1, AccessPath::Direct, &mut chunk_slot)
                .unwrap();
            store
                .read_rows_into(1, &[9, 3, 41], AccessPath::Direct, &mut rows_slot)
                .unwrap();
            store
                .read_chunk_all_hops_into(2, AccessPath::Direct, &mut hop_slots)
                .unwrap();
        }

        // Steady state: encoded bytes stage into reused scratch and decode
        // in place — the compressed paths may not allocate at all.
        let before = ALLOCS.load(Ordering::Relaxed);
        for round in 0..10 {
            store
                .read_chunk_into(round % 3, round % 4, AccessPath::Direct, &mut chunk_slot)
                .unwrap();
            store
                .read_rows_into(
                    round % 3,
                    &[9, 3, 41],
                    AccessPath::HostBounce,
                    &mut rows_slot,
                )
                .unwrap();
            store
                .read_chunk_all_hops_into(round % 4, AccessPath::Direct, &mut hop_slots)
                .unwrap();
        }
        let allocs = ALLOCS.load(Ordering::Relaxed) - before;
        assert_eq!(
            allocs, 0,
            "{dtype} steady-state reads allocated {allocs} times; \
             the scratch/slot reuse of the decode path has regressed"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disabled_telemetry_adds_no_allocations_to_hot_paths() {
    use ppgnn_graph::WeightedCsr;
    use ppgnn_models::{PpModel, Sign};
    use ppgnn_nn::Mode;
    use ppgnn_tensor::Matrix;

    static PROBE_COUNTER: ppgnn_telemetry::Counter = ppgnn_telemetry::Counter::new("test.probe");
    static PROBE_HIST: ppgnn_telemetry::Histogram =
        ppgnn_telemetry::Histogram::new("test.probe_ns");

    let _guard = SERIAL.lock().unwrap();
    // The PPGNN_TRACE=0 contract: every instrumentation site the pipeline
    // hot paths pass through — span guards in SpMM/preprocess/trainer,
    // counter adds in GEMM dispatch, histogram records per batch — must
    // cost one relaxed atomic load and zero allocations when tracing is
    // off. This is the runtime twin of the `telemetry_span` lint.
    ppgnn_telemetry::set_enabled(false);

    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 5)
        .expect("generation succeeds");
    let op = WeightedCsr::sym_norm(&data.graph, true);
    let x = data.features.clone();
    let mut y = Matrix::zeros(x.rows(), x.cols());

    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(23)
    };
    let mut model = Sign::new(2, 16, 32, 4, 0.1, &mut rng);
    let hops: Vec<Matrix> = (0..3)
        .map(|h| {
            Matrix::from_fn(128, 16, |r, c| {
                ((r * 13 + c * 7 + h) % 29) as f32 * 0.03 - 0.4
            })
        })
        .collect();
    let mut logits = Matrix::default();

    // Warm every scratch slot first — steady state is what epochs live in.
    for _ in 0..3 {
        op.spmm_into(&x, &mut y);
        model.forward_into(&hops, Mode::Eval, &mut logits);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for round in 0..10u64 {
        // Raw instrumentation primitives, as the hot loops call them.
        let _span = ppgnn_telemetry::span("resid");
        let _span2 = ppgnn_telemetry::span_with("resid2", &[("round", round)]);
        PROBE_COUNTER.add(1);
        PROBE_HIST.record(round);
        // Instrumented kernels: the SpMM driver span and the GEMM
        // dispatch counters sit on these paths.
        op.spmm_into(&x, &mut y);
        model.forward_into(&hops, Mode::Eval, &mut logits);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "disabled-telemetry hot paths allocated {allocs} times over 10 rounds; \
         an instrumentation site does work when PPGNN_TRACE=0"
    );
    // Disabled probes must also record nothing (no lazy registration).
    assert_eq!(PROBE_COUNTER.get(), 0);
    assert_eq!(PROBE_HIST.count(), 0);
}

#[test]
fn streaming_run_matches_reference_chain_under_tracking() {
    // The allocator is process-global, so also pin correctness here: hop r
    // equals r explicit applications of the operator.
    let _guard = SERIAL.lock().unwrap();
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 3)
        .expect("generation succeeds");
    let out = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
    let mut expected = data.features.clone();
    for _ in 0..2 {
        expected = Operator::SymNorm.apply(&data.graph, &expected);
    }
    let expected_rows = expected.gather_rows(&data.split.train);
    assert!(out.train.hops[2].max_abs_diff(&expected_rows) < 1e-4);
}
