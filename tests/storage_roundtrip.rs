//! Storage-path integration: preprocessed features written to the on-disk
//! store come back bit-exact, and the storage chunk loader produces the
//! same batch stream as the in-memory chunk loader.

use std::sync::Arc;

use ppgnn_core::loader::{ChunkReshuffleLoader, Loader, StorageChunkLoader};
use ppgnn_core::preprocess::Preprocessor;
use ppgnn_dataio::{AccessPath, FeatureStore};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ppgnn-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn store_round_trip_is_bit_exact() {
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 3).unwrap();
    let prep = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
    let dir = temp_dir("bitexact");
    let mut store = prep
        .write_store(&dir, "pokec-sim", 32)
        .expect("store written");
    for (k, hop) in prep.train.hops.iter().enumerate() {
        let loaded = store.read_full_hop(k).expect("hop reads back");
        assert_eq!(&loaded, hop, "hop {k} differs after round trip");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn storage_loader_matches_in_memory_chunk_loader() {
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 4).unwrap();
    let prep = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
    let dir = temp_dir("loadermatch");
    const CHUNK: usize = 16;
    const BATCH: usize = 48;
    const SEED: u64 = 77;
    prep.write_store(&dir, "pokec-sim", CHUNK)
        .expect("store written");

    let store = FeatureStore::open(&dir).expect("store reopens");
    let mut disk = StorageChunkLoader::new(
        store,
        prep.train.labels.clone(),
        BATCH,
        AccessPath::Direct,
        SEED,
    );
    let mut mem = ChunkReshuffleLoader::new(Arc::new(prep.train.clone()), BATCH, CHUNK, SEED);

    disk.start_epoch();
    mem.start_epoch();
    let mut batches = 0;
    loop {
        match (disk.next_batch(), mem.next_batch()) {
            (None, None) => break,
            (Some(d), Some(m)) => {
                assert_eq!(d.indices, m.indices, "batch {batches} indices differ");
                assert_eq!(d.labels, m.labels, "batch {batches} labels differ");
                for (hd, hm) in d.hops.iter().zip(&m.hops) {
                    assert!(
                        hd.max_abs_diff(hm) == 0.0,
                        "batch {batches} features differ"
                    );
                }
                batches += 1;
            }
            _ => panic!("storage and memory loaders disagree on batch count"),
        }
    }
    assert!(batches > 1);

    // The disk loader must have used sequential chunk reads only.
    let io = disk.io_counters();
    assert_eq!(io.rand_requests, 0);
    assert!(io.seq_requests > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn storage_loader_matches_memory_when_chunks_do_not_divide_rows() {
    // 320 training rows with chunk 24 → 13 chunks, the last one short (8
    // rows); batch 28 divides neither, so every batch crosses a chunk
    // boundary somewhere during the epoch.
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 9).unwrap();
    let prep = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
    let rows = prep.train.len();
    const CHUNK: usize = 24;
    const BATCH: usize = 28;
    const SEED: u64 = 13;
    assert_ne!(rows % CHUNK, 0, "fixture must exercise a short last chunk");
    assert_ne!(CHUNK % BATCH, 0);

    let dir = temp_dir("shortchunk");
    prep.write_store(&dir, "pokec-sim", CHUNK)
        .expect("store written");
    let store = FeatureStore::open(&dir).expect("store reopens");
    let mut disk = StorageChunkLoader::new(
        store,
        prep.train.labels.clone(),
        BATCH,
        AccessPath::Direct,
        SEED,
    );
    let mut mem = ChunkReshuffleLoader::new(Arc::new(prep.train.clone()), BATCH, CHUNK, SEED);

    disk.start_epoch();
    mem.start_epoch();
    let mut emitted = 0;
    loop {
        match (disk.next_batch(), mem.next_batch()) {
            (None, None) => break,
            (Some(d), Some(m)) => {
                assert_eq!(d.indices, m.indices, "indices diverge at row {emitted}");
                assert_eq!(d.labels, m.labels);
                for (hd, hm) in d.hops.iter().zip(&m.hops) {
                    assert!(hd.max_abs_diff(hm) == 0.0);
                }
                emitted += d.len();
            }
            _ => panic!("storage and memory loaders disagree on batch count"),
        }
    }
    assert_eq!(emitted, rows, "every row must be emitted exactly once");
    std::fs::remove_dir_all(&dir).unwrap();
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

/// Pins the **default** (f32) on-disk layout: the byte stream of
/// `manifest.txt` followed by every hop file. The digest covers the
/// crash-safety container revision — each hop file carries a `PPGC`
/// per-chunk checksum footer after the payload (checksum-less files
/// from older stores still load; `legacy_footerless_stores_still_load_
/// and_read` in ppgnn-dataio pins that). If this fails, stores written
/// by the current revision can no longer be read back byte-for-byte —
/// bump the format version instead of editing the constant.
#[test]
fn default_f32_store_bytes_are_pinned() {
    use ppgnn_dataio::{FeatureStoreWriter, StoreDtype, StoreMeta};
    use ppgnn_tensor::Matrix;

    const PRECHANGE_DIGEST: u64 = 0x517743b97238dc88;
    let dir = temp_dir("digest-pin");
    let meta = StoreMeta {
        dataset: "digest-pin".into(),
        num_hops: 3,
        rows: 32,
        cols: 5,
        chunk_size: 7,
        dtype: StoreDtype::F32,
    };
    let mut w = FeatureStoreWriter::create(&dir, meta).expect("store created");
    for k in 0..3 {
        let hop = Matrix::from_fn(32, 5, |r, c| {
            (k * 100_000 + r * 1_000 + c) as f32 * 0.5 - 3.25
        });
        w.write_hop(k, &hop).expect("hop written");
    }
    w.finish().expect("store finished");

    let mut h: u64 = 0xcbf29ce484222325;
    h = fnv1a(h, &std::fs::read(dir.join("manifest.txt")).unwrap());
    for k in 0..3 {
        h = fnv1a(
            h,
            &std::fs::read(dir.join(format!("hop_{k}.ppgt"))).unwrap(),
        );
    }
    assert_eq!(
        h, PRECHANGE_DIGEST,
        "default f32 store layout drifted from the pre-dtype format"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Sharded stores must serve **bit-identical** rows to the single-store
/// layout under every dtype and partition count: rows are dealt whole to
/// partitions, so per-row encoding (including int8's inline per-row
/// quantization parameters) cannot depend on the grouping.
#[test]
fn sharded_stores_match_single_store_bitwise_for_every_dtype() {
    use ppgnn_dataio::StoreDtype;
    use ppgnn_graph::synth::DatasetProfile;

    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 11).unwrap();
    let base = temp_dir("dtype-shard");
    for dtype in StoreDtype::ALL {
        let prep = Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 2)
            .with_store_dtype(dtype);
        let sdir = base.join(format!("single-{dtype}"));
        let (_, mut single) = prep
            .run_with_store(&data, &sdir, "pokec-sim", 16)
            .expect("single store");
        assert_eq!(single.meta().dtype, dtype);
        let rows: Vec<usize> = (0..single.meta().rows).collect();
        for parts in [1usize, 2, 5] {
            let pdir = base.join(format!("p{parts}-{dtype}"));
            let (_, mut sharded) = prep
                .clone()
                .with_num_partitions(parts)
                .run_with_sharded_store(&data, &pdir, "pokec-sim", 16)
                .expect("sharded store");
            assert_eq!(sharded.meta().dtype, dtype);
            for k in 0..3 {
                let a = single.read_rows(k, &rows, AccessPath::Direct).unwrap();
                let b = sharded.read_rows(k, &rows, AccessPath::Direct).unwrap();
                let same = a
                    .as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .all(|(u, v)| u.to_bits() == v.to_bits());
                assert!(same, "{dtype} hop {k} differs at P={parts}");
            }
        }
    }
    std::fs::remove_dir_all(&base).unwrap();
}

/// A compressed store feeds the training loop end to end: same batch
/// stream shape, every row exactly once, decodes into the unchanged
/// model — only the features are quantized.
#[test]
fn compressed_store_drives_training_loop() {
    use ppgnn_dataio::StoreDtype;

    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 8).unwrap();
    let prep = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
    let dir = temp_dir("f16-loader");
    let meta_rows = prep.train.len();
    // Build the compressed store via the synchronous writer path.
    {
        use ppgnn_dataio::{FeatureStoreWriter, StoreMeta};
        let meta = StoreMeta {
            dataset: "pokec-sim".into(),
            num_hops: prep.train.hops.len(),
            rows: meta_rows,
            cols: prep.train.hops[0].cols(),
            chunk_size: 16,
            dtype: StoreDtype::F16,
        };
        let mut w = FeatureStoreWriter::create(&dir, meta).unwrap();
        for (k, hop) in prep.train.hops.iter().enumerate() {
            w.write_hop(k, hop).unwrap();
        }
        w.finish().unwrap();
    }
    let store = FeatureStore::open(&dir).expect("compressed store reopens");
    assert_eq!(store.meta().dtype, StoreDtype::F16);
    let mut loader =
        StorageChunkLoader::new(store, prep.train.labels.clone(), 48, AccessPath::Direct, 3);
    loader.start_epoch();
    let mut rows = 0;
    while let Some(batch) = loader.next_batch() {
        for (k, hop) in batch.hops.iter().enumerate() {
            for (i, &idx) in batch.indices.iter().enumerate() {
                for c in 0..hop.cols() {
                    let exact = prep.train.hops[k].get(idx, c);
                    let got = hop.get(i, c);
                    let tol = exact.abs() / 2048.0 + 3.1e-8; // half an f16 ulp
                    assert!(
                        (exact - got).abs() <= tol,
                        "hop {k} row {idx} col {c}: {got} vs {exact}"
                    );
                }
            }
        }
        rows += batch.len();
    }
    assert_eq!(rows, meta_rows, "every row exactly once through f16 store");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_store_fails_closed_not_wrong() {
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.015), 5).unwrap();
    let prep = Preprocessor::new(vec![Operator::SymNorm], 1).run(&data);
    let dir = temp_dir("corrupt");
    prep.write_store(&dir, "pokec-sim", 16)
        .expect("store written");

    // Truncate one hop file: opening the store must fail cleanly.
    let hop1 = dir.join("hop_1.ppgt");
    let bytes = std::fs::read(&hop1).unwrap();
    std::fs::write(&hop1, &bytes[..bytes.len() / 2]).unwrap();
    let err = FeatureStore::open(&dir).expect_err("truncation must be detected");
    assert!(
        err.to_string().contains("truncated"),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn training_from_storage_matches_training_from_memory() {
    // Same seed + chunked order ⇒ training through the storage loader must
    // produce numerically identical parameters to in-memory training.
    use ppgnn_models::{PpModel, Sgc};
    use ppgnn_nn::{CrossEntropyLoss, Mode, Optimizer, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 6).unwrap();
    let prep = Preprocessor::new(vec![Operator::SymNorm], 1).run(&data);
    let dir = temp_dir("trainmatch");
    prep.write_store(&dir, "pokec-sim", 32)
        .expect("store written");

    let run = |use_disk: bool| -> Vec<f32> {
        let mut model = Sgc::new(
            1,
            data.profile.feature_dim,
            2,
            &mut StdRng::seed_from_u64(1),
        );
        let mut opt = Sgd::new(0.05);
        let mut loader: Box<dyn Loader> = if use_disk {
            let store = FeatureStore::open(&dir).expect("store reopens");
            Box::new(StorageChunkLoader::new(
                store,
                prep.train.labels.clone(),
                64,
                AccessPath::Direct,
                5,
            ))
        } else {
            Box::new(ChunkReshuffleLoader::new(
                Arc::new(prep.train.clone()),
                64,
                32,
                5,
            ))
        };
        for _ in 0..2 {
            loader.start_epoch();
            while let Some(batch) = loader.next_batch() {
                let logits = model.forward(&batch.hops, Mode::Train);
                let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &batch.labels);
                model.zero_grad();
                model.backward(&grad);
                opt.step(&mut model.params());
            }
        }
        model.params()[0].value.as_slice().to_vec()
    };

    let from_memory = run(false);
    let from_disk = run(true);
    assert_eq!(
        from_memory, from_disk,
        "storage training diverged from memory training"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
