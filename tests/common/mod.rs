//! Helpers shared by the loader integration suites.
//!
//! `loader_equivalence` (cross-generation equality) and
//! `loader_determinism` (byte-digest pin) must exercise the **same**
//! dataset and preprocessing configuration, or their guarantees cover
//! different streams; both build their fixture here.

use std::sync::Arc;

use ppgnn_core::loader::Loader;
use ppgnn_core::preprocess::{Preprocessor, PrepropFeatures};
use ppgnn_core::PpBatch;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;

/// The fixed training partition both loader suites pin their properties on.
pub fn train_partition() -> Arc<PrepropFeatures> {
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.03), 1).unwrap();
    let prep = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
    Arc::new(prep.train)
}

/// Runs one full epoch and collects the batch stream.
pub fn drain(loader: &mut dyn Loader) -> Vec<PpBatch> {
    loader.start_epoch();
    let mut out = Vec::new();
    while let Some(b) = loader.next_batch() {
        out.push(b);
    }
    out
}
