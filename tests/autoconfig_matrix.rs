//! The automated-configuration decision matrix (Section 5), exercised at
//! paper scale for all six benchmark profiles against the paper's server.

use ppgnn_core::autoconf::{probe_model_peak_bytes, AutoConfig, Method};
use ppgnn_core::bridge::{expanded_input_bytes, WorkloadScale};
use ppgnn_graph::synth::DatasetProfile;
use ppgnn_memsim::{HardwareSpec, Placement};

/// Resident expanded input: every labeled row across `R + 1` hop matrices
/// (train + val + test all stay resident during a run).
fn paper_input_bytes(profile: &DatasetProfile, hops: usize) -> u64 {
    expanded_input_bytes(profile, hops, 1, WorkloadScale::Paper)
}

#[test]
fn paper_scale_placements_match_the_evaluation_section() {
    let server = HardwareSpec::a6000_server();
    let cfg = AutoConfig::default();
    let probe = probe_model_peak_bytes(3_000_000, 8000, 4096);

    // papers100M §6.4: labeled rows shrink the input to GPU-resident size.
    let papers = DatasetProfile::papers100m_sim();
    let plan = cfg.plan(&server, paper_input_bytes(&papers, 3), probe);
    assert_eq!(
        plan.placement,
        Placement::Gpu,
        "papers100M: {}",
        plan.reason
    );

    // igb-medium §6.4: 40 GB raw × (R+1) → exceeds one GPU, fits host.
    let medium = DatasetProfile::igb_medium_sim();
    let plan = cfg.plan(&server, paper_input_bytes(&medium, 3), probe);
    assert_eq!(
        plan.placement,
        Placement::Host,
        "igb-medium: {}",
        plan.reason
    );
    assert_eq!(plan.method, Method::SgdRr, "host default is SGD-RR");

    // igb-large §6.4: 1.6 TB → storage, chunk reshuffling mandatory.
    let large = DatasetProfile::igb_large_sim();
    let plan = cfg.plan(&server, paper_input_bytes(&large, 3), probe);
    assert_eq!(plan.placement, Placement::Ssd, "igb-large: {}", plan.reason);
    assert_eq!(plan.method, Method::SgdCr);

    // medium-sized graphs (products/pokec/wiki) fit on the GPU.
    for profile in DatasetProfile::medium_profiles() {
        let plan = cfg.plan(&server, paper_input_bytes(&profile, 6), probe);
        assert_eq!(
            plan.placement,
            Placement::Gpu,
            "{}: {}",
            profile.name,
            plan.reason
        );
    }
}

#[test]
fn user_cr_preference_only_affects_host_placement() {
    let server = HardwareSpec::a6000_server();
    let cfg = AutoConfig {
        prefer_chunk_reshuffle_on_host: true,
        ..AutoConfig::default()
    };
    let probe = probe_model_peak_bytes(3_000_000, 8000, 4096);

    let gpu_plan = cfg.plan(&server, 1 << 30, probe);
    assert_eq!(gpu_plan.method, Method::SgdRr, "GPU placement keeps RR");

    let host_plan = cfg.plan(&server, 200 << 30, probe);
    assert_eq!(host_plan.placement, Placement::Host);
    assert_eq!(host_plan.method, Method::SgdCr);
    assert_eq!(
        host_plan.pinned_host_bytes,
        200 << 30,
        "CR pins the whole input"
    );
}

#[test]
fn growing_hops_walks_the_full_placement_ladder() {
    // On the tiny test machine, raising R walks one profile's input from
    // GPU → host → storage: the input-expansion problem driving Section 5.
    let tiny = HardwareSpec::tiny();
    let cfg = AutoConfig::default();
    let profile = DatasetProfile::igb_medium_sim().scaled(0.25); // 10k × 1024 f32
    let probe = probe_model_peak_bytes(100_000, 512, 1024);

    let bytes_at = |hops: usize| (profile.feature_bytes()) * (hops as u64 + 1);
    let p0 = cfg.plan(&tiny, bytes_at(0), probe);
    let p3 = cfg.plan(&tiny, bytes_at(3), probe);
    let p30 = cfg.plan(&tiny, bytes_at(30), probe);
    assert_eq!(p0.placement, Placement::Gpu, "{}", p0.reason);
    assert_eq!(p3.placement, Placement::Host, "{}", p3.reason);
    assert_eq!(p30.placement, Placement::Ssd, "{}", p30.reason);
}
