//! Seeded concurrency stress harness for the threaded subsystems:
//! [`WorkerPool`] under many concurrent caller threads, the
//! [`AsyncHopWriter`] error latch and drop ordering, and
//! [`DoubleBufferLoader`] recovery from a panicking producer.
//!
//! Runs under plain `cargo test`; `scripts/run_tsan_stress.sh` re-runs
//! this binary under ThreadSanitizer when a nightly toolchain with
//! `rust-src` is available. Timings are randomized from fixed seeds so
//! interleavings vary across the loop iterations but failures replay.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use preprop_gnn::core::loader::{BatchSource, DoubleBufferLoader, Loader, LoaderCounters, PpBatch};
use preprop_gnn::dataio::{AsyncHopWriter, DataIoError, StoreMeta};
use preprop_gnn::tensor::{Matrix, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ppgnn-audit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Many caller threads share one pool, each running several batches with
/// seeded jitter between submissions. Every batch's tasks must all run
/// exactly once, and no interleaving may deadlock the shared queue.
#[test]
fn worker_pool_survives_concurrent_batch_callers() {
    let pool = Arc::new(WorkerPool::new(4));
    let callers = 8;
    let batches_per_caller = 6;
    let tasks_per_batch = 16;
    let executed = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        for caller in 0..callers {
            let pool = Arc::clone(&pool);
            let executed = Arc::clone(&executed);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE + caller as u64);
                for _ in 0..batches_per_caller {
                    let per_batch = AtomicUsize::new(0);
                    let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..tasks_per_batch)
                        .map(|_| {
                            let jitter = rng.random_range(0..50u64);
                            let per_batch = &per_batch;
                            let executed = &executed;
                            Box::new(move || {
                                if jitter > 40 {
                                    std::thread::sleep(Duration::from_micros(jitter));
                                }
                                per_batch.fetch_add(1, Ordering::Relaxed);
                                executed.fetch_add(1, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send>
                        })
                        .collect();
                    pool.run(tasks);
                    // `run` must not return before its own batch drained.
                    assert_eq!(per_batch.load(Ordering::Relaxed), tasks_per_batch);
                }
            });
        }
    });
    assert_eq!(
        executed.load(Ordering::Relaxed),
        callers * batches_per_caller * tasks_per_batch
    );
}

/// A panicking task must neither kill the pool's workers nor deadlock the
/// submitting batch; the panic propagates to the caller and later batches
/// still run.
#[test]
fn worker_pool_recovers_after_task_panic() {
    let pool = WorkerPool::new(3);
    for round in 0..4 {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
                .map(|i| {
                    Box::new(move || {
                        if i == 5 {
                            panic!("seeded task panic (round {round})");
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            pool.run(tasks);
        }));
        assert!(result.is_err(), "round {round}: task panic must propagate");
    }
    // The pool is still functional after every panicked batch.
    let ran = AtomicUsize::new(0);
    pool.run(
        (0..8)
            .map(|_| {
                let ran = &ran;
                Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect(),
    );
    assert_eq!(ran.load(Ordering::Relaxed), 8);
}

fn audit_meta(rows: usize, cols: usize, hops: usize) -> StoreMeta {
    StoreMeta {
        dataset: "audit".into(),
        num_hops: hops,
        rows,
        cols,
        chunk_size: 4,
        dtype: ppgnn_tensor::StoreDtype::F32,
    }
}

/// Seeded sweep over failure positions: a bad-shaped hop lands at a
/// random point in the submission stream. The writer must latch the
/// first failure, eventually fail fast on later submits, and surface the
/// underlying cause (not the fail-fast placeholder) at `finish`.
#[test]
fn async_writer_latches_first_failure_under_seeded_streams() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xBAD5EED + seed);
        let hops = 12;
        let bad_at = rng.random_range(0..hops - 1);
        let queue = rng.random_range(1..4usize);
        let dir = temp_dir(&format!("latch-{seed}"));
        let mut w = AsyncHopWriter::create(&dir, audit_meta(8, 3, hops), queue).unwrap();

        let mut saw_fast_fail = false;
        for k in 0..hops {
            let m = if k == bad_at {
                Matrix::zeros(3, 3) // wrong row count
            } else {
                Matrix::from_fn(8, 3, move |r, c| (k * 100 + r * 10 + c) as f32)
            };
            if w.submit(k, m).is_err() {
                saw_fast_fail = true;
                break;
            }
            if rng.random_range(0..3u32) == 0 {
                std::thread::sleep(Duration::from_micros(rng.random_range(0..200)));
            }
        }
        let err = w.finish().expect_err("a bad hop was submitted");
        assert!(
            matches!(err, DataIoError::BadManifest(_)),
            "seed {seed}: finish must surface the write error, got {err}"
        );
        // Fast-fail is timing-dependent (the writer thread has to observe
        // the bad hop first), but the final verdict above never is.
        let _ = saw_fast_fail;
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Dropping a mid-stream writer (error latched or not) must join the
/// worker thread — no hang, no detached thread racing the directory
/// cleanup below.
#[test]
fn async_writer_drop_order_is_clean_after_failure() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xD80F + seed);
        let dir = temp_dir(&format!("drop-{seed}"));
        let mut w = AsyncHopWriter::create(&dir, audit_meta(8, 3, 6), 2).unwrap();
        let submit_until = rng.random_range(1..6usize);
        for k in 0..submit_until {
            let m = if rng.random_range(0..2u32) == 0 {
                Matrix::zeros(1, 1) // induce a latched failure sometimes
            } else {
                Matrix::zeros(8, 3)
            };
            if w.submit(k, m).is_err() {
                break;
            }
        }
        drop(w); // must join the worker regardless of latch state
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// After a failed `submit`, `take_failure` reports the real underlying
/// cause instead of the fail-fast placeholder.
#[test]
fn async_writer_take_failure_reports_the_cause() {
    let dir = temp_dir("cause");
    let mut w = AsyncHopWriter::create(&dir, audit_meta(8, 3, 4), 1).unwrap();
    w.submit(0, Matrix::zeros(2, 2)).unwrap(); // wrong shape, latches
    while !w.has_failed() {
        std::thread::sleep(Duration::from_millis(1));
    }
    let cause = w.take_failure().expect("a write failed");
    assert!(
        matches!(cause, DataIoError::BadManifest(_)),
        "expected the shape error, got {cause}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A batch source that panics on the producer thread after a seeded
/// number of batches.
#[derive(Debug)]
struct PanickingSource {
    yielded: usize,
    panic_after: usize,
    batch_rows: usize,
}

impl BatchSource for PanickingSource {
    fn begin_epoch(&mut self) {
        self.yielded = 0;
    }

    fn try_next(&mut self) -> Result<Option<PpBatch>, DataIoError> {
        if self.yielded == self.panic_after {
            panic!("seeded producer panic after {} batches", self.yielded);
        }
        self.yielded += 1;
        let rows = self.batch_rows;
        Ok(Some(PpBatch {
            indices: (0..rows).collect(),
            hops: vec![Matrix::zeros(rows, 2)],
            labels: vec![0; rows],
        }))
    }

    fn batches_per_epoch(&self) -> usize {
        self.panic_after + 3
    }

    fn source_counters(&self) -> LoaderCounters {
        LoaderCounters::default()
    }
}

/// A producer-thread panic must end the epoch as an error (not a clean
/// exhaustion), park a message for the trainer, and poison further
/// epochs — the source died with the thread, so resuming would silently
/// train on a truncated stream.
#[test]
fn double_buffer_loader_latches_producer_panics() {
    for panic_after in [0usize, 1, 3] {
        let mut loader = DoubleBufferLoader::over_source(Box::new(PanickingSource {
            yielded: 0,
            panic_after,
            batch_rows: 4,
        }));
        loader.start_epoch();
        let mut yielded = 0;
        while let Some(batch) = loader.next_batch() {
            assert_eq!(batch.len(), 4);
            yielded += 1;
        }
        assert!(
            yielded <= panic_after,
            "no batches past the panic point may be observed"
        );
        let msg = loader
            .take_error()
            .expect("a producer panic must park an error");
        assert!(msg.contains("panicked"), "unexpected message: {msg}");

        // The source is gone; the next epoch must fail loudly, not spin.
        loader.start_epoch();
        assert!(loader.next_batch().is_none());
        let msg = loader
            .take_error()
            .expect("the lost source must keep the loader failed");
        assert!(msg.contains("recreate the loader"), "got: {msg}");
    }
}

/// Sanity companion: the memory-backed double buffer completes epochs
/// under the same harness (so the panic test above fails because of the
/// panic, not the setup).
#[test]
fn double_buffer_loader_completes_clean_epochs_under_jitter() {
    use preprop_gnn::core::PrepropFeatures;
    let rows = 33;
    let data = Arc::new(PrepropFeatures {
        hops: vec![Matrix::from_fn(rows, 3, |r, c| (r * 3 + c) as f32)],
        labels: (0..rows as u32).collect(),
        node_ids: (0..rows).collect(),
    });
    let mut rng = StdRng::seed_from_u64(0x1D1E);
    let mut loader = DoubleBufferLoader::new(data, 8, 7);
    for _epoch in 0..3 {
        loader.start_epoch();
        let mut seen = 0;
        while let Some(batch) = loader.next_batch() {
            seen += batch.len();
            if rng.random_range(0..2u32) == 0 {
                std::thread::sleep(Duration::from_micros(rng.random_range(0..150)));
            }
        }
        assert_eq!(seen, rows);
        assert!(loader.take_error().is_none());
    }
}
