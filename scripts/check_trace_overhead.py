#!/usr/bin/env python3
"""Fails (exit 1) when the disabled telemetry path costs >3% wall time.

Usage: check_trace_overhead.py <BENCH_trace_profile.json>

`exp_trace_profile` measures one pipeline iteration three ways: before any
tracing ran (`untraced_seconds`), with tracing on (`traced_seconds`,
informational — spans are expected to cost something), and with tracing
switched off again (`traced_off_seconds`). The gate compares the last
against the first: both are best-of-k in the same process on the same
machine, so runner speed cancels out and what remains is the cost of the
instrumentation's disabled path (one relaxed atomic load per probe). An
absolute slack floor keeps the 3% band from flaking on smoke-scale
iterations of a few milliseconds, where a single scheduler hiccup exceeds
any percentage of the wall time.

The stage-coverage number (top-level span time / traced wall) is also
checked: spans that stop explaining the traced wall time mean a pipeline
stage lost its instrumentation.
"""

import json
import sys

# Traced-off wall may exceed the untraced baseline by 3%, plus an absolute
# slack so millisecond-scale smoke iterations don't flake on timer noise.
RELATIVE_TOLERANCE = 0.03
ABSOLUTE_SLACK_S = 0.005
# Top-level spans must account for the traced wall time to within 10%.
MIN_STAGE_COVERAGE = 0.90
MAX_STAGE_COVERAGE = 1.10


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        fresh = json.load(f)

    failed = False
    untraced = float(fresh["untraced_seconds"])
    traced_off = float(fresh["traced_off_seconds"])
    ceiling = untraced * (1.0 + RELATIVE_TOLERANCE) + ABSOLUTE_SLACK_S
    status = "OK " if traced_off <= ceiling else "FAIL"
    if traced_off > ceiling:
        failed = True
    print(
        f"{status} traced-off wall: {traced_off:.4f}s vs untraced {untraced:.4f}s "
        f"(ceiling {ceiling:.4f}s)"
    )

    coverage = float(fresh.get("stage_coverage", 0.0))
    in_band = MIN_STAGE_COVERAGE <= coverage <= MAX_STAGE_COVERAGE
    status = "OK " if in_band else "FAIL"
    if not in_band:
        failed = True
    print(
        f"{status} stage coverage: {coverage:.2%} of traced wall "
        f"(band {MIN_STAGE_COVERAGE:.0%}-{MAX_STAGE_COVERAGE:.0%})"
    )

    for field in ["traced_seconds", "span_events", "span_events_dropped"]:
        value = fresh.get(field)
        if value is not None:
            print(f"INFO {field}: {value}")

    if failed:
        print("Telemetry disabled-path overhead or span coverage regressed.")
        print("Check for unguarded Instant::now()/allocation on PPGNN_TRACE=0 paths.")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
