#!/usr/bin/env bash
# ThreadSanitizer leg of the concurrency audit: re-runs
# tests/concurrency_audit.rs (worker-pool batch races, async hop-writer
# error latch, double-buffer producer panics) with `-Zsanitizer=thread`.
#
# TSan requires a nightly toolchain plus `rust-src` (the standard
# library must be rebuilt instrumented via -Zbuild-std). Skips with
# notice (exit 0) when either is unavailable — e.g. in offline
# containers where `rustup component add` cannot download. CI treats
# the skip as green but prints the notice into the job log.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v rustup >/dev/null 2>&1; then
    echo "tsan-stress: SKIPPED (rustup not installed)"
    exit 0
fi
if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "tsan-stress: SKIPPED (no nightly toolchain; run: rustup toolchain install nightly)"
    exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null | grep -Eq '^rust-src.*\(installed\)'; then
    echo "tsan-stress: SKIPPED (rust-src not installed; run: rustup +nightly component add rust-src)"
    exit 0
fi

host="$(rustc -vV | sed -n 's/^host: //p')"
echo "tsan-stress: concurrency_audit under ThreadSanitizer (${host})"
RUSTFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -Zbuild-std --target "${host}" --test concurrency_audit
echo "tsan-stress: OK"
