#!/usr/bin/env bash
# Curated Miri pass over the unsafe-bearing units: the worker pool's
# lifetime-erased job queue and the packed-GEMM kernels' slice math
# (ppgnn-tensor is the only crate with unsafe code).
#
# Interpretation is orders of magnitude slower than native execution, so
# this runs a subset, not the workspace: the pool and gemm unit tests of
# ppgnn-tensor. Heavy tests are excluded with `#[cfg_attr(miri, ignore)]`
# at the test site.
#
# Skips with notice (exit 0) when the nightly toolchain or the miri
# component is unavailable — e.g. in offline containers where
# `rustup component add` cannot download. CI treats the skip as green
# but prints the notice into the job log.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v rustup >/dev/null 2>&1; then
    echo "miri-subset: SKIPPED (rustup not installed)"
    exit 0
fi
if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "miri-subset: SKIPPED (no nightly toolchain; run: rustup toolchain install nightly)"
    exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null | grep -Eq '^miri.*\(installed\)'; then
    echo "miri-subset: SKIPPED (miri not installed; run: rustup +nightly component add miri rust-src)"
    exit 0
fi

# Keep the interpreted pool small and the run deterministic.
export PPGNN_NUM_THREADS="${PPGNN_NUM_THREADS:-2}"
export MIRIFLAGS="${MIRIFLAGS:--Zmiri-disable-isolation}"

echo "miri-subset: pool + gemm unit tests of ppgnn-tensor"
cargo +nightly miri test -p ppgnn-tensor --lib pool
cargo +nightly miri test -p ppgnn-tensor --lib gemm
echo "miri-subset: OK"
