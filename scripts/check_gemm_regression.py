#!/usr/bin/env python3
"""Fails (exit 1) when a fresh BENCH_gemm.json regresses >20% against the
committed baseline.

Usage: check_gemm_regression.py <fresh.json> <baseline.json>

The gated quantities are the packed-vs-reference *speedup* ratios
(speedup_matmul, speedup_matmul_tn, speedup_matmul_nt): both sides of
each ratio are measured in the same process on the same machine, so a
CI runner slower than the machine that produced the committed baseline
doesn't fail the job, but a kernel edit that erodes the packed kernels'
advantage does (losing the packed path entirely is a 2-13x ratio drop,
far past any tolerance here). The ratios still shift somewhat with the
*shape* of a runner's cache hierarchy — speedup_matmul_nt especially,
since its reference kernel is dominated by a k-strided cache pathology
whose cost varies across prefetchers — so nt gets a wider band than the
20% the nn/tn ratios use. Absolute GFLOP/s and SpMM rows/s are printed
as context only. Improvements never fail.
"""

import json
import sys

# field -> allowed fractional drop below the committed baseline. A gated
# field absent from the *baseline* (an artifact from before that field
# existed) is skipped, so the gate stays compatible with old baselines;
# absent from the *fresh* artifact it fails (the bench regressed).
GATED_FIELDS = {
    "speedup_matmul": 0.20,
    "speedup_matmul_tn": 0.20,
    "speedup_matmul_nt": 0.50,
    # Batched-vs-looped on the HOGA per-head workload. On single-core
    # runners the batched win is only the per-head allocation saving
    # (~1x); the wide band catches losing the batched path outright
    # without flaking on scheduler noise around a small ratio.
    "speedup_batched_small_gemm": 0.30,
}
INFO_FIELDS = ["gflops_matmul", "gflops_matmul_tn", "gflops_matmul_nt", "spmm_rows_per_s"]
# Per-backend throughput and the autotuner's pick: informational — they
# track runner hardware, not code quality.
INFO_PREFIXES = ("gflops_kernel_",)
TUNED_FIELDS = ["tuned_kernel", "tuned_kc", "tuned_nc", "tuned_gflops"]


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    failed = False
    for field, tolerance in GATED_FIELDS.items():
        if field not in baseline:
            print(f"SKIP {field}: not in baseline (pre-{field} schema)")
            continue
        if field not in fresh:
            print(f"FAIL {field}: missing from fresh artifact")
            failed = True
            continue
        base = float(baseline[field])
        now = float(fresh[field])
        floor = base * (1.0 - tolerance)
        status = "OK " if now >= floor else "FAIL"
        if now < floor:
            failed = True
        print(f"{status} {field}: {now:.2f}x vs baseline {base:.2f}x (floor {floor:.2f}x)")

    for field in INFO_FIELDS:
        value = fresh.get(field)
        if value is not None:
            print(f"INFO {field}: {float(value):.2f}")
    for field in sorted(fresh):
        if field.startswith(INFO_PREFIXES):
            print(f"INFO {field}: {float(fresh[field]):.2f}")
    tuned = [f"{f.removeprefix('tuned_')}={fresh[f]}" for f in TUNED_FIELDS if f in fresh]
    if tuned:
        print(f"INFO tuned profile: {' '.join(tuned)}")
    if failed:
        print("Packed-kernel speedup regressed against the committed baseline.")
        print("If intentional, update BENCH_gemm.json or apply the 'skip-gemm-gate' label.")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
