#!/usr/bin/env python3
"""Fails (exit 1) when a fresh BENCH_store.json regresses against the
committed baseline.

Usage: check_store_regression.py <fresh.json> <baseline.json>

Two families of gated quantities, both deterministic (so CI runner speed
cannot fail the job):

* compression_ratio_{f16,bf16,int8} — derived from the on-disk format,
  not timed. A drop means the encoded layout grew (e.g. per-row metadata
  bloat); gated with a 1% band for float formatting only.
* acc_drift_pt_{f16,bf16,int8} — percentage points of exp_table test
  accuracy the quantized store costs against the lossless f32 run, with
  the whole harness seeded. Gated at baseline + 1.0pt: smoke runs train
  fewer epochs than the committed baseline, so the band absorbs the
  shorter schedule without letting a real quantization bug (tens of
  points) through.

Throughput (decode Mrows/s, epoch seconds) tracks runner hardware and is
printed as context only. A gated field absent from the *baseline* is
skipped (pre-field schema); absent from the *fresh* artifact it fails.
Improvements never fail.
"""

import json
import sys

# field -> allowed fractional drop below the committed baseline.
RATIO_FIELDS = {
    "compression_ratio_f16": 0.01,
    "compression_ratio_bf16": 0.01,
    "compression_ratio_int8": 0.01,
}
# field -> allowed increase (percentage points) over the baseline drift.
DRIFT_FIELDS = {
    "acc_drift_pt_f16": 1.0,
    "acc_drift_pt_bf16": 1.0,
    "acc_drift_pt_int8": 1.0,
}
INFO_PREFIXES = ("decode_mrows_per_s_", "epoch_seconds_", "bytes_per_row_", "acc_")


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    failed = False
    for field, tolerance in RATIO_FIELDS.items():
        if field not in baseline:
            print(f"SKIP {field}: not in baseline (pre-{field} schema)")
            continue
        if field not in fresh:
            print(f"FAIL {field}: missing from fresh artifact")
            failed = True
            continue
        base = float(baseline[field])
        now = float(fresh[field])
        floor = base * (1.0 - tolerance)
        status = "OK " if now >= floor else "FAIL"
        if now < floor:
            failed = True
        print(f"{status} {field}: {now:.4f} vs baseline {base:.4f} (floor {floor:.4f})")

    for field, band in DRIFT_FIELDS.items():
        if field not in baseline:
            print(f"SKIP {field}: not in baseline (pre-{field} schema)")
            continue
        if field not in fresh:
            print(f"FAIL {field}: missing from fresh artifact")
            failed = True
            continue
        base = float(baseline[field])
        now = float(fresh[field])
        ceiling = base + band
        status = "OK " if now <= ceiling else "FAIL"
        if now > ceiling:
            failed = True
        print(f"{status} {field}: {now:+.2f}pt vs baseline {base:+.2f}pt (ceiling {ceiling:+.2f}pt)")

    for field in sorted(fresh):
        if field.startswith(INFO_PREFIXES):
            print(f"INFO {field}: {float(fresh[field]):.4f}")
    if failed:
        print("Compressed-store footprint or accuracy drift regressed against the baseline.")
        print("If intentional, update BENCH_store.json or apply the 'skip-store-gate' label.")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
