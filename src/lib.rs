//! Umbrella crate for the PP-GNN reproduction workspace.
//!
//! This crate re-exports the `ppgnn-*` crates under one roof so the
//! repository-level integration tests (`tests/`) and examples (`examples/`)
//! have a package to live in, and so downstream users can depend on a
//! single crate.
//!
//! Layer order (each layer depends only on the ones before it):
//!
//! 1. [`telemetry`] — zero-dependency tracing spans, counters, and
//!    histograms (everything else may instrument through it), and
//!    [`tensor`] — dense row-major `f32` matrices and kernels
//! 2. [`graph`] — CSR graphs, SpMM operators, partition plans, synthetic
//!    datasets, and [`partition`] — ghost-exchange partitioned diffusion
//! 3. [`nn`] / [`models`] / [`sampler`] — modules, the PP/MP model zoo,
//!    minibatch samplers
//! 4. [`dataio`] / [`memsim`] — on-disk feature stores, performance-plane
//!    simulator
//! 5. [`core`] — preprocessing, the four loader generations, training
//! 6. [`bench`] — shared harness for the `exp_*` experiment binaries
//!
//! # Examples
//!
//! ```
//! use preprop_gnn::graph::synth::{DatasetProfile, SynthDataset};
//!
//! let profile = DatasetProfile::pokec_sim().scaled(0.01);
//! let data = SynthDataset::generate(profile, 7).expect("generation succeeds");
//! assert!(data.graph.num_nodes() >= 64);
//! ```

#![deny(missing_docs)]

pub use ppgnn_bench as bench;
pub use ppgnn_core as core;
pub use ppgnn_dataio as dataio;
pub use ppgnn_graph as graph;
pub use ppgnn_memsim as memsim;
pub use ppgnn_models as models;
pub use ppgnn_nn as nn;
pub use ppgnn_partition as partition;
pub use ppgnn_sampler as sampler;
pub use ppgnn_telemetry as telemetry;
pub use ppgnn_tensor as tensor;
