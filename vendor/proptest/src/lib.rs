//! Vendored, offline stand-in for the slice of `proptest` 1.x this
//! workspace's property tests use.
//!
//! Provides [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, range
//! and tuple strategies, [`collection::vec`], [`arbitrary::any`], the
//! [`proptest!`] test macro, and the `prop_assert*`/[`prop_assume!`]
//! assertion macros.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports its values (via the pattern's
//!   `Debug` where the assertion formats them) and the deterministic seed,
//!   but is not minimized.
//! - **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test name (override with `PPGNN_PROPTEST_SEED`), so CI failures
//!   reproduce locally without a persistence file.
//!
//! # Examples
//!
//! ```
//! use proptest::prelude::*;
//!
//! // In a test file each fn would also carry `#[test]` (omitted here
//! // because doctest builds strip `#[test]` items).
//! proptest! {
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` works as in upstream.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// One-stop imports for test files (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn` runs `config.cases` times with fresh
/// values drawn from the strategies named after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::deterministic_rng(stringify!($name));
                let mut executed: u32 = 0;
                let mut attempts: u32 = 0;
                while executed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(16).max(256),
                        "proptest '{}': too many rejected cases ({} rejects)",
                        stringify!($name),
                        attempts - executed,
                    );
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => executed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {} (seed source {:?}): {}",
                                stringify!($name),
                                executed,
                                stringify!($name),
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{} ({:?} != {:?})", format!($($fmt)+), l, r);
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{} ({:?} == {:?})", format!($($fmt)+), l, r);
    }};
}

/// Discards the current case (retried with fresh values) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
