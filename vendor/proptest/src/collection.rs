//! Collection strategies.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Length specifications accepted by [`vec`]: an exact `usize`, `a..b`, or
/// `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty length range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s of values drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::deterministic_rng;

    #[test]
    fn exact_and_ranged_lengths() {
        let rng = &mut deterministic_rng("lens");
        assert_eq!(vec(0u8..10, 7).new_value(rng).len(), 7);
        for _ in 0..50 {
            let l = vec(0u8..10, 2..5).new_value(rng).len();
            assert!((2..5).contains(&l));
            let l = vec(0u8..10, 0..=3).new_value(rng).len();
            assert!(l <= 3);
        }
    }
}
