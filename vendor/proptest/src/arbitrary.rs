//! The `any::<T>()` strategy.

use rand::distr::StandardUniform;
use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a default "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: StandardUniform> Arbitrary for T {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// Strategy over the full domain of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for `T` — upstream's `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
