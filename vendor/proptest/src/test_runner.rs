//! Test-loop configuration and failure plumbing.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs violated a `prop_assume!` — draw fresh inputs.
    Reject(String),
    /// An assertion failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// RNG for one property test: seeded from a hash of the test name so runs
/// are reproducible, overridable via `PPGNN_PROPTEST_SEED`.
pub fn deterministic_rng(test_name: &str) -> StdRng {
    if let Ok(s) = std::env::var("PPGNN_PROPTEST_SEED") {
        if let Ok(seed) = s.parse::<u64>() {
            return StdRng::seed_from_u64(seed);
        }
    }
    // FNV-1a over the test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}
