//! Value-generation strategies.

use rand::distr::{SampleRange, SampleUniform};
use rand::rngs::StdRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking —
/// [`Strategy::new_value`] draws one concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from this strategy.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// A heap-allocated, type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn erased_new_value(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_new_value(&self, rng: &mut StdRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.erased_new_value(rng)
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.clone().sample_single(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::deterministic_rng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let rng = &mut deterministic_rng("compose");
        let strat = (1usize..=4, 0u64..10).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            assert!(strat.new_value(rng) < 14);
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let rng = &mut deterministic_rng("flat");
        let strat = (2usize..6).prop_flat_map(|n| crate::collection::vec(0usize..n, n));
        for _ in 0..100 {
            let v = strat.new_value(rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < v.len()));
        }
    }
}
