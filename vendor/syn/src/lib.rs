//! Vendored stand-in for the `syn` crate (upstream API level 2.0).
//!
//! Implements exactly what the workspace's `ppgnn-analyze` linter needs:
//! [`parse_file`] turns source text into a [`File`] of coarse [`Item`]s —
//! functions (with attributes, `unsafe` markers, and opaque body token
//! trees), `impl`/`trait`/`mod` containers (recursively parsed), and an
//! `Other` catch-all whose token extent is preserved for scanning.
//!
//! Deviations from upstream, per vendor/README.md ground rules:
//!
//! - No expression/statement/type grammar: function bodies, generics,
//!   and initializers stay as raw `proc-macro2` token trees. Lints match
//!   token patterns instead of typed AST nodes.
//! - Doc comments are trivia (see the vendored `proc-macro2`), so they
//!   never appear as `#[doc]` attributes; consumers read raw source.
//! - The parser is error-tolerant: token sequences it cannot classify
//!   become [`Item::Other`] one token at a time rather than failing the
//!   whole file. Only lexing errors make [`parse_file`] return `Err`.

use std::fmt;

use proc_macro2::{Delimiter, Group, Ident, Span, TokenStream, TokenTree};

/// Parse failure (lex-level only; see the crate docs).
///
/// Deviation from upstream: carries the 1-based line of the failure
/// directly (upstream exposes it via `Span`), since the shim's only
/// consumer reports `path:line` diagnostics.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    /// 1-based line where lexing failed.
    pub line: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Result alias matching upstream `syn::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// A parsed source file: inner attributes plus top-level items.
#[derive(Debug)]
pub struct File {
    /// Inner (`#![…]`) attributes of the file.
    pub attrs: Vec<Attribute>,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// An outer `#[…]` or inner `#![…]` attribute, kept as its raw bracket
/// group.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// Span of the leading `#`.
    pub pound_span: Span,
    /// Whether this is an inner (`#![…]`) attribute.
    pub inner: bool,
    /// The bracket group holding path and arguments.
    pub group: Group,
}

impl Attribute {
    /// First identifier of the attribute path (`cfg`, `test`,
    /// `target_feature`, …).
    pub fn path_ident(&self) -> Option<String> {
        self.group.stream().trees().iter().find_map(|t| match t {
            TokenTree::Ident(i) => Some(i.to_string()),
            _ => None,
        })
    }

    /// Whether the attribute path starts with `name`.
    pub fn is(&self, name: &str) -> bool {
        self.path_ident().is_some_and(|p| p == name)
    }

    /// Whether this is exactly `#[cfg(test)]` (a direct `test` argument;
    /// `cfg(not(test))` does not count).
    pub fn is_cfg_test(&self) -> bool {
        if !self.is("cfg") {
            return false;
        }
        let trees = self.group.stream().trees();
        let Some(TokenTree::Group(args)) = trees.get(1) else {
            return false;
        };
        args.stream()
            .trees()
            .iter()
            .any(|t| matches!(t, TokenTree::Ident(i) if *i == "test"))
    }

    /// Whether any literal anywhere inside the attribute contains
    /// `needle` (e.g. `"fma"` within `target_feature(enable = "avx2",
    /// enable = "fma")`).
    pub fn any_literal_contains(&self, needle: &str) -> bool {
        fn walk(trees: &[TokenTree], needle: &str) -> bool {
            trees.iter().any(|t| match t {
                TokenTree::Literal(l) => l.to_string().contains(needle),
                TokenTree::Group(g) => walk(g.stream().trees(), needle),
                _ => false,
            })
        }
        walk(self.group.stream().trees(), needle)
    }
}

/// A function signature, coarse: markers, name, and the raw tokens
/// between the name and the body (generics, arguments, return type,
/// where-clauses).
#[derive(Debug)]
pub struct Signature {
    /// Span of the `unsafe` keyword, when present.
    pub unsafety: Option<Span>,
    /// The function name.
    pub ident: Ident,
    /// Span of the `fn` keyword.
    pub fn_span: Span,
    /// Tokens between the name and the body/semicolon.
    pub rest: Vec<TokenTree>,
}

/// A `fn` item (free function, method, or trait declaration).
#[derive(Debug)]
pub struct ItemFn {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The signature.
    pub sig: Signature,
    /// The body; `None` for bodiless trait declarations.
    pub block: Option<Group>,
}

impl ItemFn {
    /// 1-based line where the item starts (first attribute, else `fn`).
    pub fn start_line(&self) -> usize {
        self.attrs
            .first()
            .map(|a| a.pound_span.start().line)
            .unwrap_or_else(|| self.sig.fn_span.start().line)
    }
}

/// An `impl` block with its contents parsed as items.
#[derive(Debug)]
pub struct ItemImpl {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Span of the `unsafe` keyword for `unsafe impl`.
    pub unsafety: Option<Span>,
    /// Span of the `impl` keyword.
    pub impl_span: Span,
    /// Tokens between `impl` and the brace (generics, trait, self type).
    pub header: Vec<TokenTree>,
    /// Parsed associated items.
    pub items: Vec<Item>,
}

/// A `trait` definition with its contents parsed as items.
#[derive(Debug)]
pub struct ItemTrait {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Span of the `unsafe` keyword for `unsafe trait`.
    pub unsafety: Option<Span>,
    /// Span of the `trait` keyword.
    pub trait_span: Span,
    /// The trait name, when the coarse parse finds one.
    pub ident: Option<Ident>,
    /// Parsed associated items (declarations have `block: None`).
    pub items: Vec<Item>,
}

/// A `mod` item; `content` is `None` for out-of-line `mod name;`.
#[derive(Debug)]
pub struct ItemMod {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Span of the `mod` keyword.
    pub mod_span: Span,
    /// The module name.
    pub ident: Ident,
    /// Parsed contents for inline modules.
    pub content: Option<Vec<Item>>,
}

/// Any other item (struct, enum, use, const, static, macro invocation,
/// …) kept as its raw token extent.
#[derive(Debug)]
pub struct ItemOther {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The item's tokens, delimiter groups included.
    pub tokens: Vec<TokenTree>,
}

/// A coarse top-level or associated item.
#[derive(Debug)]
pub enum Item {
    /// A function or method.
    Fn(ItemFn),
    /// An `impl` block.
    Impl(ItemImpl),
    /// A `trait` definition.
    Trait(ItemTrait),
    /// A module.
    Mod(ItemMod),
    /// Everything else, token extent preserved.
    Other(ItemOther),
}

impl Item {
    /// The item's outer attributes.
    pub fn attrs(&self) -> &[Attribute] {
        match self {
            Item::Fn(i) => &i.attrs,
            Item::Impl(i) => &i.attrs,
            Item::Trait(i) => &i.attrs,
            Item::Mod(i) => &i.attrs,
            Item::Other(i) => &i.attrs,
        }
    }
}

/// Parses a full source file into coarse items.
///
/// # Errors
///
/// Returns an error only when the text fails to lex (unbalanced
/// delimiters, unterminated literals); anything that lexes produces a
/// `File`, with unclassifiable runs preserved as [`Item::Other`].
pub fn parse_file(src: &str) -> Result<File> {
    let stream: TokenStream = src.parse().map_err(|e: proc_macro2::LexError| Error {
        message: e.to_string(),
        line: e.line,
    })?;
    let (attrs, items) = parse_items(stream.trees());
    Ok(File { attrs, items })
}

/// Parses a token slice as a sequence of items, returning any inner
/// attributes seen alongside them.
fn parse_items(toks: &[TokenTree]) -> (Vec<Attribute>, Vec<Item>) {
    let mut inner_attrs = Vec::new();
    let mut items = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Outer attributes (inner ones are collected separately).
        let mut attrs = Vec::new();
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            match (toks.get(i + 1), toks.get(i + 2)) {
                (Some(TokenTree::Punct(bang)), Some(TokenTree::Group(g)))
                    if bang.as_char() == '!' && g.delimiter() == Delimiter::Bracket =>
                {
                    inner_attrs.push(Attribute {
                        pound_span: p.span(),
                        inner: true,
                        group: g.clone(),
                    });
                    i += 3;
                }
                (Some(TokenTree::Group(g)), _) if g.delimiter() == Delimiter::Bracket => {
                    attrs.push(Attribute {
                        pound_span: p.span(),
                        inner: false,
                        group: g.clone(),
                    });
                    i += 2;
                }
                _ => break,
            }
        }
        if i >= toks.len() {
            if !attrs.is_empty() {
                items.push(Item::Other(ItemOther {
                    attrs,
                    tokens: Vec::new(),
                }));
            }
            break;
        }

        // Visibility.
        if ident_is(toks.get(i), "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }

        // Modifiers before the defining keyword.
        let mut unsafety: Option<Span> = None;
        loop {
            match toks.get(i) {
                Some(TokenTree::Ident(id)) if *id == "unsafe" => {
                    unsafety = Some(id.span());
                    i += 1;
                }
                Some(TokenTree::Ident(id)) if *id == "async" => i += 1,
                Some(TokenTree::Ident(id))
                    if *id == "const"
                        && matches!(
                            toks.get(i + 1),
                            Some(TokenTree::Ident(n))
                                if *n == "fn" || *n == "unsafe" || *n == "extern" || *n == "async"
                        ) =>
                {
                    i += 1;
                }
                Some(TokenTree::Ident(id)) if *id == "extern" => {
                    i += 1;
                    if matches!(toks.get(i), Some(TokenTree::Literal(_))) {
                        i += 1;
                    }
                }
                _ => break,
            }
        }

        // Defining keyword.
        let (item, next) = parse_one(toks, i, attrs, unsafety);
        items.push(item);
        i = next;
    }
    (inner_attrs, items)
}

/// Parses one item starting at the defining keyword; returns it plus
/// the index just past it. Falls back to a one-token `Other` so the
/// caller always makes progress.
fn parse_one(
    toks: &[TokenTree],
    i: usize,
    attrs: Vec<Attribute>,
    unsafety: Option<Span>,
) -> (Item, usize) {
    match toks.get(i) {
        Some(TokenTree::Ident(kw)) if *kw == "fn" => {
            if let Some(TokenTree::Ident(name)) = toks.get(i + 1) {
                let mut j = i + 2;
                while j < toks.len() {
                    match &toks[j] {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            let sig = Signature {
                                unsafety,
                                ident: name.clone(),
                                fn_span: kw.span(),
                                rest: toks[i + 2..j].to_vec(),
                            };
                            return (
                                Item::Fn(ItemFn {
                                    attrs,
                                    sig,
                                    block: Some(g.clone()),
                                }),
                                j + 1,
                            );
                        }
                        TokenTree::Punct(p) if p.as_char() == ';' => {
                            let sig = Signature {
                                unsafety,
                                ident: name.clone(),
                                fn_span: kw.span(),
                                rest: toks[i + 2..j].to_vec(),
                            };
                            return (
                                Item::Fn(ItemFn {
                                    attrs,
                                    sig,
                                    block: None,
                                }),
                                j + 1,
                            );
                        }
                        _ => j += 1,
                    }
                }
            }
            other_until_boundary(toks, i, attrs)
        }
        Some(TokenTree::Ident(kw)) if *kw == "impl" => {
            let impl_span = kw.span();
            let mut j = i + 1;
            while j < toks.len() {
                if let TokenTree::Group(g) = &toks[j] {
                    if g.delimiter() == Delimiter::Brace {
                        let (_, items) = parse_items(g.stream().trees());
                        return (
                            Item::Impl(ItemImpl {
                                attrs,
                                unsafety,
                                impl_span,
                                header: toks[i + 1..j].to_vec(),
                                items,
                            }),
                            j + 1,
                        );
                    }
                }
                j += 1;
            }
            other_until_boundary(toks, i, attrs)
        }
        Some(TokenTree::Ident(kw)) if *kw == "trait" => {
            let trait_span = kw.span();
            let ident = match toks.get(i + 1) {
                Some(TokenTree::Ident(n)) => Some(n.clone()),
                _ => None,
            };
            let mut j = i + 1;
            while j < toks.len() {
                match &toks[j] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        let (_, items) = parse_items(g.stream().trees());
                        return (
                            Item::Trait(ItemTrait {
                                attrs,
                                unsafety,
                                trait_span,
                                ident,
                                items,
                            }),
                            j + 1,
                        );
                    }
                    // Trait alias `trait A = B;` — not used, treat coarse.
                    TokenTree::Punct(p) if p.as_char() == ';' => break,
                    _ => j += 1,
                }
            }
            other_until_boundary(toks, i, attrs)
        }
        Some(TokenTree::Ident(kw)) if *kw == "mod" => {
            let mod_span = kw.span();
            if let Some(TokenTree::Ident(name)) = toks.get(i + 1) {
                match toks.get(i + 2) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                        return (
                            Item::Mod(ItemMod {
                                attrs,
                                mod_span,
                                ident: name.clone(),
                                content: None,
                            }),
                            i + 3,
                        );
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let (_, items) = parse_items(g.stream().trees());
                        return (
                            Item::Mod(ItemMod {
                                attrs,
                                mod_span,
                                ident: name.clone(),
                                content: Some(items),
                            }),
                            i + 3,
                        );
                    }
                    _ => {}
                }
            }
            other_until_boundary(toks, i, attrs)
        }
        Some(_) => other_until_boundary(toks, i, attrs),
        None => (
            Item::Other(ItemOther {
                attrs,
                tokens: Vec::new(),
            }),
            i,
        ),
    }
}

/// Consumes tokens into an `Other` item until a `;` or a top-level brace
/// group that plausibly ends the item (struct/enum bodies, macro
/// invocations); consumes at least one token.
fn other_until_boundary(toks: &[TokenTree], i: usize, attrs: Vec<Attribute>) -> (Item, usize) {
    let mut j = i;
    while j < toks.len() {
        match &toks[j] {
            TokenTree::Punct(p) if p.as_char() == ';' => {
                j += 1;
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    let j = j.max(i + 1);
    (
        Item::Other(ItemOther {
            attrs,
            tokens: toks[i..j].to_vec(),
        }),
        j,
    )
}

fn ident_is(tok: Option<&TokenTree>, name: &str) -> bool {
    matches!(tok, Some(TokenTree::Ident(i)) if *i == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Vec<Item> {
        parse_file(src).expect("parses").items
    }

    #[test]
    fn parses_functions_with_attrs_and_markers() {
        let its = items(
            "#[inline]\npub unsafe fn f(a: u32) -> u32 { a }\nfn g();\nconst fn h() -> u32 { 1 }",
        );
        assert_eq!(its.len(), 3);
        let Item::Fn(f) = &its[0] else {
            panic!("expected fn")
        };
        assert_eq!(f.sig.ident.to_string(), "f");
        assert!(f.sig.unsafety.is_some());
        assert!(f.block.is_some());
        assert_eq!(f.attrs.len(), 1);
        assert!(f.attrs[0].is("inline"));
        let Item::Fn(g) = &its[1] else {
            panic!("expected fn")
        };
        assert!(g.block.is_none());
        assert!(matches!(&its[2], Item::Fn(h) if h.sig.unsafety.is_none()));
    }

    #[test]
    fn recurses_into_impl_trait_and_mod() {
        let src = "
            impl Foo for Bar {
                fn method(&self) {}
            }
            unsafe impl Send for Bar {}
            trait T {
                unsafe fn decl(&self);
            }
            mod inner {
                fn nested() {}
            }
            mod out_of_line;
        ";
        let its = items(src);
        assert_eq!(its.len(), 5);
        let Item::Impl(im) = &its[0] else {
            panic!("expected impl")
        };
        assert!(im.unsafety.is_none());
        assert!(matches!(&im.items[0], Item::Fn(f) if f.sig.ident == "method"));
        assert!(matches!(&its[1], Item::Impl(u) if u.unsafety.is_some()));
        let Item::Trait(t) = &its[2] else {
            panic!("expected trait")
        };
        assert!(
            matches!(&t.items[0], Item::Fn(d) if d.block.is_none() && d.sig.unsafety.is_some())
        );
        let Item::Mod(m) = &its[3] else {
            panic!("expected mod")
        };
        assert!(m.content.is_some());
        assert!(matches!(&its[4], Item::Mod(m) if m.content.is_none()));
    }

    #[test]
    fn cfg_test_detection_is_exact() {
        let its = items("#[cfg(test)]\nmod tests {}\n#[cfg(not(test))]\nmod real {}");
        assert!(its[0].attrs()[0].is_cfg_test());
        assert!(!its[1].attrs()[0].is_cfg_test());
    }

    #[test]
    fn other_items_keep_token_extents() {
        let its = items("pub struct S(u32);\nstatic N: usize = 3;\nuse std::fmt;");
        assert_eq!(its.len(), 3);
        for it in &its {
            assert!(matches!(it, Item::Other(o) if !o.tokens.is_empty()));
        }
    }

    #[test]
    fn attribute_literal_search_recurses() {
        let its = items("#[target_feature(enable = \"avx2\", enable = \"fma\")]\nunsafe fn k() {}");
        let a = &its[0].attrs()[0];
        assert!(a.is("target_feature"));
        assert!(a.any_literal_contains("fma"));
        assert!(!a.any_literal_contains("sse9"));
    }

    #[test]
    fn inner_attrs_surface_on_file() {
        let f = parse_file("#![allow(dead_code)]\nfn x() {}").expect("parses");
        assert_eq!(f.attrs.len(), 1);
        assert!(f.attrs[0].inner);
        assert_eq!(f.items.len(), 1);
    }
}
