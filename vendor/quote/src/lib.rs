//! Vendored stand-in for the `quote` crate (upstream API level 1.0).
//!
//! Provides [`ToTokens`] and a [`quote!`] macro sufficient for building
//! literal token streams in tests and tools. Deviation from upstream,
//! per vendor/README.md ground rules: `#var` interpolation and
//! `#(…)*` repetition are **not** supported — the macro stringifies its
//! input and re-lexes it with the vendored `proc-macro2`, so `#ident`
//! inside the body lexes as a `#` punct followed by an identifier. The
//! workspace only quotes literal token sequences.

use proc_macro2::{TokenStream, TokenTree};

/// Types convertible to a token sequence.
pub trait ToTokens {
    /// Appends `self` to `tokens`.
    fn to_tokens(&self, tokens: &mut TokenStream);

    /// Convenience: `self` as a fresh stream.
    fn to_token_stream(&self) -> TokenStream {
        let mut out = TokenStream::new();
        self.to_tokens(&mut out);
        out
    }
}

impl ToTokens for TokenStream {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        tokens.extend(self.clone());
    }
}

impl ToTokens for TokenTree {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        tokens.extend([self.clone()]);
    }
}

impl<T: ToTokens + ?Sized> ToTokens for &T {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        (**self).to_tokens(tokens);
    }
}

/// Re-exports used by the [`quote!`] expansion; not public API.
pub mod __private {
    pub use proc_macro2::TokenStream;
}

/// Builds a [`TokenStream`] from literal Rust tokens.
///
/// Unlike upstream `quote!`, no `#var` interpolation is performed; the
/// body must already be the exact tokens wanted.
#[macro_export]
macro_rules! quote {
    () => { $crate::__private::TokenStream::new() };
    ($($tt:tt)+) => {
        stringify!($($tt)+)
            .parse::<$crate::__private::TokenStream>()
            .expect("quote! body re-lexes as Rust tokens")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_builds_literal_streams() {
        let ts = quote! { fn answer() -> u32 { 42 } };
        assert_eq!(ts.trees().len(), 7); // fn answer (…) - > u32 {…}
        assert!(quote!().is_empty());
    }

    #[test]
    fn to_tokens_appends() {
        let ts = quote! { a + b };
        let doubled: TokenStream = {
            let mut out = TokenStream::new();
            ts.to_tokens(&mut out);
            ts.to_tokens(&mut out);
            out
        };
        assert_eq!(doubled.len(), 6);
    }
}
