//! Vendored stand-in for the `proc-macro2` crate (upstream API level 1.0).
//!
//! Implements exactly the surface the workspace uses: lexing Rust source
//! text into a [`TokenStream`] of spanned [`TokenTree`]s, outside of any
//! compiler macro context. The `ppgnn-analyze` linter walks these trees;
//! the vendored `syn` shim builds its coarse item model on top of them.
//!
//! Deviations from upstream, documented per vendor/README.md ground rules:
//!
//! - Comments — including doc comments — are trivia and produce no
//!   tokens. Upstream converts `///` into `#[doc = "…"]` attributes;
//!   consumers here (the linter) read doc text from raw source lines
//!   instead, which they need to do anyway for `// SAFETY:` comments.
//! - [`Span`] carries real byte offsets and line/column positions (the
//!   part upstream only offers via `span-locations`), but no hygiene or
//!   `join` support.
//! - Only lexing is supported; there is no conversion to or from the
//!   compiler's `proc_macro` types.

use std::fmt;
use std::ops::Range;
use std::str::FromStr;

/// A region of source text: byte offsets plus the 1-based line and
/// 0-based column where the region starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    lo: usize,
    hi: usize,
    line: usize,
    column: usize,
}

/// A line/column pair, mirroring `proc_macro2::LineColumn`: `line` is
/// 1-based, `column` is a 0-based UTF-8 character offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineColumn {
    /// 1-based source line.
    pub line: usize,
    /// 0-based character column.
    pub column: usize,
}

impl Span {
    /// A placeholder span pointing at nothing (offset zero).
    pub fn call_site() -> Span {
        Span {
            lo: 0,
            hi: 0,
            line: 1,
            column: 0,
        }
    }

    /// Line/column of the first character of the span.
    pub fn start(&self) -> LineColumn {
        LineColumn {
            line: self.line,
            column: self.column,
        }
    }

    /// Byte range of the span within the lexed source.
    pub fn byte_range(&self) -> Range<usize> {
        self.lo..self.hi
    }
}

/// A delimiter surrounding a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// `( ... )`
    Parenthesis,
    /// `{ ... }`
    Brace,
    /// `[ ... ]`
    Bracket,
    /// Invisible delimiters; never produced by this lexer.
    None,
}

/// Whether a [`Punct`] is immediately followed by another punctuation
/// character (`Joint`) or not (`Alone`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spacing {
    /// Followed by whitespace or a non-punctuation token.
    Alone,
    /// Immediately followed by another punctuation character.
    Joint,
}

/// An identifier or keyword (including raw `r#ident` forms).
#[derive(Debug, Clone)]
pub struct Ident {
    text: String,
    span: Span,
}

impl Ident {
    /// The identifier's span.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        self.text == other
    }
}

impl PartialEq<&str> for Ident {
    fn eq(&self, other: &&str) -> bool {
        self.text == *other
    }
}

/// A single punctuation character.
#[derive(Debug, Clone)]
pub struct Punct {
    ch: char,
    spacing: Spacing,
    span: Span,
}

impl Punct {
    /// The punctuation character.
    pub fn as_char(&self) -> char {
        self.ch
    }

    /// Whether the next source character is also punctuation.
    pub fn spacing(&self) -> Spacing {
        self.spacing
    }

    /// The character's span.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ch)
    }
}

/// A literal token: numbers, strings (all prefix/raw forms), chars.
/// [`Literal::to_string`] returns the raw source text including quotes,
/// prefixes, and suffixes.
#[derive(Debug, Clone)]
pub struct Literal {
    text: String,
    span: Span,
}

impl Literal {
    /// The literal's span.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A delimited token sequence.
#[derive(Debug, Clone)]
pub struct Group {
    delimiter: Delimiter,
    stream: TokenStream,
    span: Span,
}

impl Group {
    /// The surrounding delimiter.
    pub fn delimiter(&self) -> Delimiter {
        self.delimiter
    }

    /// The tokens between the delimiters.
    pub fn stream(&self) -> &TokenStream {
        &self.stream
    }

    /// Span covering the delimiters and everything between them.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (open, close) = match self.delimiter {
            Delimiter::Parenthesis => ("(", ")"),
            Delimiter::Brace => ("{ ", " }"),
            Delimiter::Bracket => ("[", "]"),
            Delimiter::None => ("", ""),
        };
        write!(f, "{open}{}{close}", self.stream)
    }
}

/// One node of the token tree.
#[derive(Debug, Clone)]
pub enum TokenTree {
    /// A delimited group.
    Group(Group),
    /// An identifier or keyword.
    Ident(Ident),
    /// A punctuation character.
    Punct(Punct),
    /// A literal.
    Literal(Literal),
}

impl TokenTree {
    /// The token's span (a group's span covers its delimiters).
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Group(g) => g.span(),
            TokenTree::Ident(i) => i.span(),
            TokenTree::Punct(p) => p.span(),
            TokenTree::Literal(l) => l.span(),
        }
    }
}

impl fmt::Display for TokenTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenTree::Group(g) => g.fmt(f),
            TokenTree::Ident(i) => i.fmt(f),
            TokenTree::Punct(p) => p.fmt(f),
            TokenTree::Literal(l) => l.fmt(f),
        }
    }
}

/// A sequence of [`TokenTree`]s.
#[derive(Debug, Clone, Default)]
pub struct TokenStream {
    trees: Vec<TokenTree>,
}

impl TokenStream {
    /// An empty stream.
    pub fn new() -> TokenStream {
        TokenStream::default()
    }

    /// Whether the stream holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Number of top-level token trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// The top-level token trees as a slice (shim extension; upstream
    /// offers only iteration).
    pub fn trees(&self) -> &[TokenTree] {
        &self.trees
    }
}

impl fmt::Display for TokenStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.trees.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            t.fmt(f)?;
        }
        Ok(())
    }
}

impl IntoIterator for TokenStream {
    type Item = TokenTree;
    type IntoIter = std::vec::IntoIter<TokenTree>;

    fn into_iter(self) -> Self::IntoIter {
        self.trees.into_iter()
    }
}

impl FromIterator<TokenTree> for TokenStream {
    fn from_iter<I: IntoIterator<Item = TokenTree>>(iter: I) -> Self {
        TokenStream {
            trees: iter.into_iter().collect(),
        }
    }
}

impl Extend<TokenTree> for TokenStream {
    fn extend<I: IntoIterator<Item = TokenTree>>(&mut self, iter: I) {
        self.trees.extend(iter);
    }
}

impl FromStr for TokenStream {
    type Err = LexError;

    fn from_str(src: &str) -> Result<TokenStream, LexError> {
        let mut lexer = Lexer::new(src);
        let trees = lexer.lex_stream(None)?;
        Ok(TokenStream { trees })
    }
}

/// Error produced when source text fails to lex.
#[derive(Debug, Clone)]
pub struct LexError {
    /// 1-based line of the offending character.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCT_CHARS: &str = ";,.<>=!+-*/%^&|@#?~:$'";

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            pos: 0,
            line: 1,
            column: 0,
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.rest().chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 0;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn here(&self) -> (usize, usize, usize) {
        (self.pos, self.line, self.column)
    }

    fn span_from(&self, start: (usize, usize, usize)) -> Span {
        Span {
            lo: start.0,
            hi: self.pos,
            line: start.1,
            column: start.2,
        }
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            message: message.into(),
        }
    }

    /// Skips whitespace and comments (line, doc, and nested block).
    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek_at(1) == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek_at(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some('/'), Some('*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lexes token trees until `closer` (or end of input when `None`).
    fn lex_stream(&mut self, closer: Option<char>) -> Result<Vec<TokenTree>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let Some(c) = self.peek() else {
                return match closer {
                    Some(c) => Err(self.err(format!("unbalanced delimiters: expected `{c}`"))),
                    None => Ok(out),
                };
            };
            if Some(c) == closer {
                return Ok(out);
            }
            match c {
                '(' | '[' | '{' => out.push(self.lex_group(c)?),
                ')' | ']' | '}' => return Err(self.err(format!("unexpected closing `{c}`"))),
                '"' => out.push(self.lex_string(self.here())?),
                '\'' => self.lex_quote(&mut out)?,
                c if c.is_ascii_digit() => out.push(self.lex_number()?),
                c if is_ident_start(c) => self.lex_ident_or_prefixed(&mut out)?,
                c if PUNCT_CHARS.contains(c) => out.push(self.lex_punct()),
                c => return Err(self.err(format!("unexpected character `{c}`"))),
            }
        }
    }

    fn lex_group(&mut self, open: char) -> Result<TokenTree, LexError> {
        let start = self.here();
        let (delimiter, close) = match open {
            '(' => (Delimiter::Parenthesis, ')'),
            '[' => (Delimiter::Bracket, ']'),
            _ => (Delimiter::Brace, '}'),
        };
        self.bump();
        let trees = self.lex_stream(Some(close))?;
        if self.peek() != Some(close) {
            return Err(self.err(format!("expected closing `{close}`")));
        }
        self.bump();
        Ok(TokenTree::Group(Group {
            delimiter,
            stream: TokenStream { trees },
            span: self.span_from(start),
        }))
    }

    fn lex_punct(&mut self) -> TokenTree {
        let start = self.here();
        let ch = self.bump().expect("caller checked a punct is present");
        let spacing = match self.peek() {
            Some(n) if PUNCT_CHARS.contains(n) && n != '\'' => Spacing::Joint,
            _ => Spacing::Alone,
        };
        TokenTree::Punct(Punct {
            ch,
            spacing,
            span: self.span_from(start),
        })
    }

    /// `'` starts either a lifetime (`'a`) or a char literal (`'x'`).
    fn lex_quote(&mut self, out: &mut Vec<TokenTree>) -> Result<(), LexError> {
        let start = self.here();
        // Lifetime: `'` + identifier NOT followed by another `'`.
        if self.peek_at(1).is_some_and(is_ident_start) {
            let mut n = 2;
            while self.peek_at(n).is_some_and(is_ident_continue) {
                n += 1;
            }
            if self.peek_at(n) != Some('\'') {
                self.bump(); // the quote
                out.push(TokenTree::Punct(Punct {
                    ch: '\'',
                    spacing: Spacing::Joint,
                    span: self.span_from(start),
                }));
                out.push(self.lex_bare_ident());
                return Ok(());
            }
        }
        // Char literal.
        self.bump();
        loop {
            match self.peek() {
                Some('\\') => {
                    self.bump();
                    self.bump();
                }
                Some('\'') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    self.bump();
                }
                None => return Err(self.err("unterminated char literal")),
            }
        }
        out.push(TokenTree::Literal(Literal {
            text: self.src[start.0..self.pos].to_string(),
            span: self.span_from(start),
        }));
        Ok(())
    }

    fn lex_bare_ident(&mut self) -> TokenTree {
        let start = self.here();
        while self.peek().is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenTree::Ident(Ident {
            text: self.src[start.0..self.pos].to_string(),
            span: self.span_from(start),
        })
    }

    /// An identifier, or a prefixed literal (`r"…"`, `b"…"`, `br#"…"#`,
    /// `b'x'`, `c"…"`), or a raw identifier (`r#name`).
    fn lex_ident_or_prefixed(&mut self, out: &mut Vec<TokenTree>) -> Result<(), LexError> {
        let rest = self.rest();
        for prefix in ["br", "cr", "r", "b", "c"] {
            if let Some(tail) = rest.strip_prefix(prefix) {
                let hashes = tail.len() - tail.trim_start_matches('#').len();
                let after = &tail[hashes..];
                if after.starts_with('"') && (hashes == 0 || prefix.contains('r')) {
                    out.push(self.lex_prefixed_string(prefix.len(), hashes)?);
                    return Ok(());
                }
                if prefix == "r" && hashes == 1 && after.chars().next().is_some_and(is_ident_start)
                {
                    // Raw identifier r#name: keep the prefix in the text.
                    let start = self.here();
                    self.bump();
                    self.bump();
                    while self.peek().is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    out.push(TokenTree::Ident(Ident {
                        text: self.src[start.0..self.pos].to_string(),
                        span: self.span_from(start),
                    }));
                    return Ok(());
                }
                if prefix == "b" && hashes == 0 && after.starts_with('\'') {
                    // Byte char b'x': lex as a quote literal with prefix.
                    let start = self.here();
                    self.bump();
                    let mut inner = Vec::new();
                    self.lex_quote(&mut inner)?;
                    out.push(TokenTree::Literal(Literal {
                        text: self.src[start.0..self.pos].to_string(),
                        span: self.span_from(start),
                    }));
                    return Ok(());
                }
            }
        }
        out.push(self.lex_bare_ident());
        Ok(())
    }

    /// A string with `prefix_len` prefix chars and `hashes` raw-string
    /// hashes already sighted: `b"…"`, `r#"…"#`, etc.
    fn lex_prefixed_string(
        &mut self,
        prefix_len: usize,
        hashes: usize,
    ) -> Result<TokenTree, LexError> {
        let start = self.here();
        for _ in 0..(prefix_len + hashes) {
            self.bump();
        }
        if hashes > 0 || self.src[start.0..self.pos].contains('r') {
            self.lex_raw_string_body(start, hashes)
        } else {
            self.bump(); // opening quote
            self.lex_escaped_string_body(start)
        }
    }

    fn lex_string(&mut self, start: (usize, usize, usize)) -> Result<TokenTree, LexError> {
        self.bump(); // opening quote
        self.lex_escaped_string_body(start)
    }

    fn lex_escaped_string_body(
        &mut self,
        start: (usize, usize, usize),
    ) -> Result<TokenTree, LexError> {
        loop {
            match self.peek() {
                Some('\\') => {
                    self.bump();
                    self.bump();
                }
                Some('"') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    self.bump();
                }
                None => return Err(self.err("unterminated string literal")),
            }
        }
        self.finish_literal_with_suffix(start)
    }

    fn lex_raw_string_body(
        &mut self,
        start: (usize, usize, usize),
        hashes: usize,
    ) -> Result<TokenTree, LexError> {
        self.bump(); // opening quote
        let terminator: String = std::iter::once('"')
            .chain("#".repeat(hashes).chars())
            .collect();
        loop {
            if self.rest().starts_with(&terminator) {
                for _ in 0..terminator.len() {
                    self.bump();
                }
                break;
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated raw string literal"));
            }
        }
        self.finish_literal_with_suffix(start)
    }

    fn finish_literal_with_suffix(
        &mut self,
        start: (usize, usize, usize),
    ) -> Result<TokenTree, LexError> {
        while self.peek().is_some_and(is_ident_continue) {
            self.bump();
        }
        Ok(TokenTree::Literal(Literal {
            text: self.src[start.0..self.pos].to_string(),
            span: self.span_from(start),
        }))
    }

    fn lex_number(&mut self) -> Result<TokenTree, LexError> {
        let start = self.here();
        if self.rest().starts_with("0x")
            || self.rest().starts_with("0o")
            || self.rest().starts_with("0b")
        {
            self.bump();
            self.bump();
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.bump();
            }
            return self.finish_literal_with_suffix(start);
        }
        self.eat_digits();
        // Fractional part: `.` followed by a digit, or a trailing `.` that
        // is neither a range (`..`) nor a method call (`1.max(…)`).
        if self.peek() == Some('.') {
            match self.peek_at(1) {
                Some(d) if d.is_ascii_digit() => {
                    self.bump();
                    self.eat_digits();
                }
                Some(c) if c == '.' || is_ident_start(c) => {}
                _ => {
                    self.bump();
                }
            }
        }
        // Exponent.
        if matches!(self.peek(), Some('e') | Some('E')) {
            let (sign_ok, digit_pos) = match self.peek_at(1) {
                Some('+') | Some('-') => (true, 2),
                _ => (false, 1),
            };
            if self.peek_at(digit_pos).is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
                if sign_ok {
                    self.bump();
                }
                self.eat_digits();
            }
        }
        self.finish_literal_with_suffix(start)
    }

    fn eat_digits(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Vec<TokenTree> {
        src.parse::<TokenStream>().expect("lexes").trees().to_vec()
    }

    #[test]
    fn lexes_idents_puncts_and_groups() {
        let toks = lex("fn foo(a: u32) -> u32 { a + 1 }");
        assert_eq!(toks.len(), 7); // fn foo (…) - > u32 {…}
        match &toks[0] {
            TokenTree::Ident(i) => assert_eq!(i.to_string(), "fn"),
            t => panic!("expected ident, got {t:?}"),
        }
        match &toks[6] {
            TokenTree::Group(g) => {
                assert_eq!(g.delimiter(), Delimiter::Brace);
                assert_eq!(g.stream().len(), 3);
            }
            t => panic!("expected group, got {t:?}"),
        }
    }

    #[test]
    fn spans_carry_lines_and_columns() {
        let toks = lex("a\n  bb");
        assert_eq!(toks[0].span().start().line, 1);
        assert_eq!(toks[1].span().start().line, 2);
        assert_eq!(toks[1].span().start().column, 2);
        assert_eq!(toks[1].span().byte_range(), 4..6);
    }

    #[test]
    fn comments_are_trivia() {
        let toks = lex("a // line\n/* block /* nested */ */ b /// doc\nc");
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn string_forms_lex_as_single_literals() {
        for src in [
            "\"plain \\\" esc\"",
            "r\"raw\"",
            "r#\"hash \" inside\"#",
            "b\"bytes\"",
            "br#\"raw bytes\"#",
            "c\"cstr\"",
        ] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            match &toks[0] {
                TokenTree::Literal(l) => assert_eq!(l.to_string(), src),
                t => panic!("{src}: expected literal, got {t:?}"),
            }
        }
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("&'a x");
        assert_eq!(toks.len(), 4); // & ' a x
        let toks = lex("'x' '_' '\\n' '\\u{1F600}'");
        assert_eq!(toks.len(), 4);
        assert!(toks.iter().all(|t| matches!(t, TokenTree::Literal(_))));
        let toks = lex("b'q'");
        assert_eq!(toks.len(), 1);
    }

    #[test]
    fn numbers_with_ranges_methods_and_suffixes() {
        let toks = lex("0..n");
        assert_eq!(toks.len(), 4); // 0 . . n
        let toks = lex("1.max(2)");
        assert_eq!(toks.len(), 4); // 1 . max (…)
        for src in ["1_000usize", "0xFFu8", "2.5f32", "1e-3", "1.0E+9f64", "1."] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
        }
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex("r#type");
        assert_eq!(toks.len(), 1);
        match &toks[0] {
            TokenTree::Ident(i) => assert_eq!(i.to_string(), "r#type"),
            t => panic!("expected ident, got {t:?}"),
        }
    }

    #[test]
    fn unbalanced_input_errors() {
        assert!("fn f( {".parse::<TokenStream>().is_err());
        assert!("}".parse::<TokenStream>().is_err());
        assert!("\"open".parse::<TokenStream>().is_err());
    }

    #[test]
    fn display_roundtrips_through_relex() {
        let src = "unsafe fn f<T: Sized>(a: &[f32], b: *const f32) -> f32 { a[0] * 2.0 + 1.0 }";
        let first = src.parse::<TokenStream>().expect("lexes");
        let second = first.to_string().parse::<TokenStream>().expect("relexes");
        assert_eq!(first.to_string(), second.to_string());
    }
}
