//! Vendored, dependency-free stand-in for the slice of `crossbeam` 0.8 this
//! workspace uses: [`scope`] for structured fork/join parallelism (GEMM and
//! SpMM row-partitioning) and [`channel::bounded`] for the double-buffer
//! loader's producer/consumer hand-off.
//!
//! Both are thin wrappers over `std`: [`scope`] delegates to
//! [`std::thread::scope`], and [`channel::bounded`] to
//! [`std::sync::mpsc::sync_channel`].
//!
//! # Examples
//!
//! ```
//! let mut parts = [0u64; 4];
//! crossbeam::scope(|s| {
//!     for (i, p) in parts.iter_mut().enumerate() {
//!         s.spawn(move |_| *p = i as u64 * 10);
//!     }
//! })
//! .unwrap();
//! assert_eq!(parts, [0, 10, 20, 30]);
//! ```

#![deny(missing_docs)]

use std::thread;

/// A handle for spawning threads scoped to a [`scope`] call.
///
/// Mirrors `crossbeam::thread::Scope`: closures passed to [`Scope::spawn`]
/// receive the scope itself so they can spawn nested workers.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; it is joined before [`scope`] returns.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Runs `f` with a [`Scope`] whose spawned threads may borrow local state;
/// all threads are joined before this returns.
///
/// Returns `Ok` with the closure's value. Unlike upstream crossbeam, a
/// panicking child thread propagates the panic on join (via
/// [`std::thread::scope`] semantics) rather than surfacing as `Err`; every
/// call site in this workspace immediately `unwrap`s/`expect`s the result,
/// so the observable behavior — abort the test with the panic message — is
/// the same.
///
/// # Errors
///
/// Never returns `Err` (see above); the `Result` exists for upstream API
/// compatibility.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! Bounded MPSC channels (wrapping [`std::sync::mpsc`]).

    use std::sync::mpsc;

    /// The sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is closed.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value back if the receiving half was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next value, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Fails once the channel is empty and all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Receives without blocking; `None` if no value is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a bounded channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::bounded;

        #[test]
        fn round_trips_values_in_order() {
            let (tx, rx) = bounded(2);
            let worker = std::thread::spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            worker.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn dropping_receiver_errors_the_sender() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
