//! Vendored, offline stand-in for the slice of `serde` this workspace uses:
//! `#[derive(Serialize, Deserialize)]` on plain data structs and unit
//! enums, plus [`to_string`] / [`from_str`] for round-tripping them.
//!
//! The wire format is a flat, whitespace-separated token stream (strings
//! quoted with backslash escapes, floats via `{:?}` so round-trips are
//! exact, field order = declaration order). It is self-describing enough
//! for the workspace's config types — dataset profiles, cost parameters,
//! hardware specs — and deliberately nothing more.
//!
//! # Examples
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Point {
//!     x: f64,
//!     y: f64,
//!     label: String,
//! }
//!
//! let p = Point { x: 1.5, y: -2.0, label: "origin-ish".to_string() };
//! let text = serde::to_string(&p);
//! let back: Point = serde::from_str(&text).unwrap();
//! assert_eq!(back, p);
//! ```

#![deny(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization error (unused by writers today, kept for API symmetry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Accumulates the token stream for a value being serialized.
#[derive(Debug, Default)]
pub struct Serializer {
    out: String,
}

impl Serializer {
    /// Appends one raw (already escaped) token.
    pub fn token(&mut self, t: impl std::fmt::Display) {
        if !self.out.is_empty() {
            self.out.push(' ');
        }
        self.out.push_str(&t.to_string());
    }

    /// Appends a string token, quoted and escaped.
    pub fn string_token(&mut self, s: &str) {
        let mut quoted = String::with_capacity(s.len() + 2);
        quoted.push('"');
        for c in s.chars() {
            match c {
                '"' => quoted.push_str("\\\""),
                '\\' => quoted.push_str("\\\\"),
                '\n' => quoted.push_str("\\n"),
                _ => quoted.push(c),
            }
        }
        quoted.push('"');
        self.token(quoted);
    }

    /// Consumes the serializer, returning the serialized text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Streams tokens back out of serialized text.
#[derive(Debug)]
pub struct Deserializer<'de> {
    rest: &'de str,
}

impl<'de> Deserializer<'de> {
    /// Starts deserializing `input`.
    pub fn new(input: &'de str) -> Self {
        Deserializer { rest: input }
    }

    /// Returns the next raw token.
    ///
    /// # Errors
    ///
    /// Fails at end of input.
    pub fn token(&mut self) -> Result<&'de str, Error> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return Err(Error::msg("unexpected end of input"));
        }
        if self.rest.starts_with('"') {
            // Find the closing unescaped quote.
            let bytes = self.rest.as_bytes();
            let mut i = 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        let (tok, rest) = self.rest.split_at(i + 1);
                        self.rest = rest;
                        return Ok(tok);
                    }
                    _ => i += 1,
                }
            }
            return Err(Error::msg("unterminated string"));
        }
        let end = self
            .rest
            .find(char::is_whitespace)
            .unwrap_or(self.rest.len());
        let (tok, rest) = self.rest.split_at(end);
        self.rest = rest;
        Ok(tok)
    }

    /// Returns the next token decoded as a string.
    ///
    /// # Errors
    ///
    /// Fails if the next token is not a quoted string.
    pub fn string(&mut self) -> Result<String, Error> {
        let tok = self.token()?;
        let inner = tok
            .strip_prefix('"')
            .and_then(|t| t.strip_suffix('"'))
            .ok_or_else(|| Error::msg(format!("expected string, got `{tok}`")))?;
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some(other) => out.push(other),
                    None => return Err(Error::msg("dangling escape")),
                }
            } else {
                out.push(c);
            }
        }
        Ok(out)
    }

    /// Asserts all input was consumed.
    ///
    /// # Errors
    ///
    /// Fails if tokens remain.
    pub fn end(&mut self) -> Result<(), Error> {
        if self.rest.trim_start().is_empty() {
            Ok(())
        } else {
            Err(Error::msg(format!(
                "trailing input: `{}`",
                self.rest.trim()
            )))
        }
    }
}

/// Types that can write themselves into a [`Serializer`].
pub trait Serialize {
    /// Appends this value's tokens to `s`.
    fn serialize(&self, s: &mut Serializer);
}

/// Types that can be rebuilt from a [`Deserializer`].
pub trait Deserialize: Sized {
    /// Reads one value's tokens from `d`.
    ///
    /// # Errors
    ///
    /// Fails on malformed or truncated input.
    fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error>;
}

/// Serializes `value` to text.
pub fn to_string<T: Serialize>(value: &T) -> String {
    let mut s = Serializer::default();
    value.serialize(&mut s);
    s.finish()
}

/// Deserializes a `T` from text produced by [`to_string`].
///
/// # Errors
///
/// Fails on malformed input or trailing tokens.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut d = Deserializer::new(input);
    let v = T::deserialize(&mut d)?;
    d.end()?;
    Ok(v)
}

macro_rules! impl_display_prims {
    ($($t:ty => $parse_name:literal),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.token(self);
            }
        }

        impl Deserialize for $t {
            fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
                let tok = d.token()?;
                tok.parse::<$t>()
                    .map_err(|_| Error::msg(format!(concat!("bad ", $parse_name, ": `{}`"), tok)))
            }
        }
    )*};
}

impl_display_prims!(
    u8 => "u8", u16 => "u16", u32 => "u32", u64 => "u64", u128 => "u128", usize => "usize",
    i8 => "i8", i16 => "i16", i32 => "i32", i64 => "i64", i128 => "i128", isize => "isize",
    bool => "bool",
);

macro_rules! impl_floats {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                // `{:?}` prints enough digits to round-trip exactly.
                s.token(format_args!("{:?}", self));
            }
        }

        impl Deserialize for $t {
            fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
                let tok = d.token()?;
                tok.parse::<$t>()
                    .map_err(|_| Error::msg(format!("bad float: `{tok}`")))
            }
        }
    )*};
}

impl_floats!(f32, f64);

impl Serialize for String {
    fn serialize(&self, s: &mut Serializer) {
        s.string_token(self);
    }
}

impl Deserialize for String {
    fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
        d.string()
    }
}

impl Serialize for &str {
    fn serialize(&self, s: &mut Serializer) {
        s.string_token(self);
    }
}

impl Deserialize for &'static str {
    fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
        // Deserialized static strings are tiny, rare (profile names), and
        // live for the program's remaining lifetime by definition of the
        // target type, so leaking is the honest implementation.
        Ok(Box::leak(d.string()?.into_boxed_str()))
    }
}

macro_rules! impl_tuples {
    ($(($($n:ident . $idx:tt),+))*) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {
            fn serialize(&self, s: &mut Serializer) {
                $(self.$idx.serialize(s);)+
            }
        }

        impl<$($n: Deserialize),+> Deserialize for ($($n,)+) {
            fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
                Ok(($($n::deserialize(d)?,)+))
            }
        }
    )*};
}

impl_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Serializer) {
        self.len().serialize(s);
        for item in self {
            item.serialize(s);
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
        let len = usize::deserialize(d)?;
        (0..len).map(|_| T::deserialize(d)).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Serializer) {
        match self {
            Some(v) => {
                s.token("some");
                v.serialize(s);
            }
            None => s.token("none"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
        match d.token()? {
            "some" => Ok(Some(T::deserialize(d)?)),
            "none" => Ok(None),
            other => Err(Error::msg(format!("bad option tag `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v = (42u64, -7i32, 0.1f64, true, "a b\"c\\d\n".to_string());
        let text = to_string(&v);
        let back: (u64, i32, f64, bool, String) = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [f32::MIN_POSITIVE, 1.0 / 3.0, -0.0, 3.402_823e38] {
            let back: f32 = from_str(&to_string(&x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn trailing_tokens_are_an_error() {
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<u32>("").is_err());
    }

    #[test]
    fn vec_and_option_round_trip() {
        let v = vec![Some(1u8), None, Some(3)];
        let back: Vec<Option<u8>> = from_str(&to_string(&v)).unwrap();
        assert_eq!(back, v);
    }
}
