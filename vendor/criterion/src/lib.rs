//! Vendored, dependency-free stand-in for the slice of the `criterion` 0.5
//! API this workspace's `benches/` use: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — warm up, then time `sample_size`
//! samples whose per-sample iteration count is sized to a fixed wall-clock
//! budget, and report min/mean ns per iteration on stdout. There is no
//! statistical analysis, HTML report, or baseline comparison; the point is
//! that `cargo bench` builds, runs, and prints comparable numbers offline.
//!
//! Like upstream criterion, full measurement only happens under
//! `cargo bench` (which passes `--bench` to harness-less targets); in any
//! other invocation — notably `cargo test`, which builds and runs the
//! bench targets since they set `test = true` — each benchmark body runs
//! exactly once as a smoke test.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark (all samples together).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream semantics: `cargo bench` passes `--bench`; anything else
        // (notably `cargo test`) runs benchmarks once, as smoke tests.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 20,
            test_mode: !measure,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _parent: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = name.into();
        run_benchmark(&id, self.sample_size, self.test_mode, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, self.sample_size, self.test_mode, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group (upstream flushes reports here; a no-op shim).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group (`name/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` (the measured region).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(id: &str, sample_size: usize, test_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }

    // Calibrate: one untimed call, then estimate a per-sample iteration
    // count that fits the budget across `sample_size` samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = MEASURE_BUDGET.as_nanos() / sample_size.max(1) as u128;
    let iters = (per_sample / once.as_nanos()).clamp(1, 1 << 20) as u64;

    let mut best = f64::INFINITY;
    let mut total = 0.0f64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / iters as f64;
        best = best.min(ns);
        total += ns;
    }
    let mean = total / sample_size as f64;
    println!("bench {id:<48} min {best:>12.1} ns/iter   mean {mean:>12.1} ns/iter   ({sample_size} samples x {iters} iters)");
}

/// Declares a group of benchmark functions, with optional configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Criterion benchmark group entry point.
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        let mut hits = 0u32;
        c.bench_function("probe", |b| {
            b.iter(|| hits += 1);
        });
        assert!(hits >= 1);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("512xDxD", 64);
        assert_eq!(id.0, "512xDxD/64");
    }
}
