//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports exactly the shapes this workspace derives on: non-generic
//! structs with named fields, and enums whose variants are all unit
//! variants. Anything else is a compile error naming the limitation.
//!
//! Implemented directly over `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline): the input item is scanned for its kind,
//! name, and field/variant names, and the generated impls are assembled as
//! source text and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the annotated item.
struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Unit variants, in declaration order.
    Enum(Vec<String>),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => fields
            .iter()
            .map(|f| format!("::serde::Serialize::serialize(&self.{f}, s);"))
            .collect::<String>(),
        ItemKind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect::<String>();
            format!("s.token(match self {{ {arms} }});")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, s: &mut ::serde::Serializer) {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::deserialize(d)?,"))
                .collect::<String>();
            format!("Ok({name} {{ {inits} }})")
        }
        ItemKind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect::<String>();
            format!(
                "match ::serde::Deserializer::token(d)? {{ {arms} other => \
                 Err(::serde::Error::msg(format!(\"unknown {name} variant `{{other}}`\"))) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(d: &mut ::serde::Deserializer<'_>) -> Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal parses")
}

/// Extracts kind, name, and field/variant names from a derive input.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind_kw = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        ));
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde shim derive: tuple struct `{name}` is not supported"
                ));
            }
            Some(_) => continue,
            None => return Err(format!("`{name}` has no braced body (unit struct?)")),
        }
    };
    let kind = match kind_kw.as_str() {
        "struct" => ItemKind::Struct(parse_struct_fields(body.stream())?),
        "enum" => ItemKind::Enum(parse_enum_variants(&name, body.stream())?),
        other => return Err(format!("expected struct/enum, got `{other}`")),
    };
    Ok(Item { name, kind })
}

/// Skips leading `#[attr]` groups (doc comments included) and visibility.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [..] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                iter.next();
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next(); // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Collects field names from `name: Type, ...` (types skipped wholesale —
/// commas inside generic types would need depth tracking, but the shim's
/// supported field types contain none at depth 0).
fn parse_struct_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        let mut angle_depth = 0u32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Collects unit-variant names; any variant with a payload is an error.
fn parse_enum_variants(enum_name: &str, body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        match iter.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim derive: variant `{enum_name}::{name}` carries data; \
                     only unit variants are supported"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Discriminant: skip the expression up to the next comma.
                for tok in iter.by_ref() {
                    if matches!(&tok, TokenTree::Punct(q) if q.as_char() == ',') {
                        break;
                    }
                }
                variants.push(name);
            }
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
    }
    Ok(variants)
}
