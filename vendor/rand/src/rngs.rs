//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256**,
/// seeded through SplitMix64 (the seeding scheme the xoshiro authors
/// recommend).
///
/// API-compatible with `rand::rngs::StdRng` for the calls this workspace
/// makes; the stream itself is this shim's own (stable) stream, not
/// upstream's ChaCha12 stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
