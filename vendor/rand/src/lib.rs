//! Vendored, dependency-free stand-in for the slice of the `rand` 0.9 API
//! this workspace uses.
//!
//! The build must work fully offline (no registry access), so instead of the
//! real `rand` crate this shim provides API-compatible implementations of:
//!
//! - [`Rng`] with `random`, `random_range`, `random_bool`, `random_ratio`
//!   (the rand 0.9 method names — rand 0.8's `gen`/`gen_range` were renamed),
//! - [`SeedableRng::seed_from_u64`],
//! - [`rngs::StdRng`], a deterministic xoshiro256** generator.
//!
//! Determinism is the load-bearing property: every experiment, loader, and
//! sampler in the workspace seeds a [`rngs::StdRng`] explicitly, and tests
//! assert byte-identical streams for equal seeds. The exact stream differs
//! from upstream `rand` (which is fine — no test encodes upstream values),
//! but it is stable across runs, platforms, and rebuilds.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! let xs: Vec<u32> = (0..4).map(|_| a.random_range(0..100)).collect();
//! let ys: Vec<u32> = (0..4).map(|_| b.random_range(0..100)).collect();
//! assert_eq!(xs, ys);
//! ```

#![deny(missing_docs)]

pub mod rngs;

/// A source of random `u32`/`u64` values — the object-safe core trait.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng` in rand 0.9).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (floats: uniform in `[0, 1)`; integers: full range; bool: fair coin).
    fn random<T: distr::StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: distr::SampleUniform,
        R: distr::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        <f64 as distr::StandardUniform>::sample_standard(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator == 0` or `numerator > denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above 1");
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Distribution plumbing backing [`Rng::random`] and [`Rng::random_range`].
pub mod distr {
    use super::RngCore;

    /// Types with a canonical "standard" distribution.
    pub trait StandardUniform: Sized {
        /// Samples one value from the standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardUniform for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardUniform for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 24 mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl StandardUniform for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl StandardUniform for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl StandardUniform for u128 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: PartialOrd + Copy {
        /// Samples from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
        fn sample_between<R: RngCore + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi: Self,
            inclusive: bool,
        ) -> Self;
    }

    macro_rules! impl_uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (hi as u128) - (lo as u128) + u128::from(inclusive);
                    assert!(span > 0, "cannot sample from an empty range");
                    lo + (u128::from(rng.next_u64()) % span) as $t
                }
            }
        )*};
    }
    impl_uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (hi as i128) - (lo as i128) + i128::from(inclusive);
                    assert!(span > 0, "cannot sample from an empty range");
                    (lo as i128 + (i128::from(rng.next_u64() >> 1) % span)) as $t
                }
            }
        )*};
    }
    impl_uniform_int!(i8, i16, i32, i64, isize);

    macro_rules! impl_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    _inclusive: bool,
                ) -> Self {
                    assert!(lo < hi || (_inclusive && lo <= hi), "empty float range");
                    let unit = <$t>::sample_standard(rng);
                    let v = lo + (hi - lo) * unit;
                    // Guard against rounding up to the open bound.
                    if v >= hi && !_inclusive { lo } else { v }
                }
            }
        )*};
    }
    impl_uniform_float!(f32, f64);

    /// Range shapes accepted by [`super::Rng::random_range`].
    pub trait SampleRange<T> {
        /// Samples a single value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_between(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_between(rng, *self.start(), *self.end(), true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = r.random_range(0..17);
            assert!(v < 17);
            let w: u64 = r.random_range(5..=9);
            assert!((5..=9).contains(&w));
            let f: f32 = r.random_range(f32::MIN_POSITIVE..1.0);
            assert!((f32::MIN_POSITIVE..1.0).contains(&f));
            let g: f64 = r.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
