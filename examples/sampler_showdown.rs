//! Sampler showdown: the four graph samplers vs the PP-GNN pipeline.
//!
//! Measures — with real sampling on a synthetic products-like graph — the
//! input-expansion factor of each sampler (the neighbor-explosion problem,
//! Appendix I), trains GraphSAGE briefly with each, and contrasts against
//! SIGN trained on pre-propagated features.
//!
//! Run with: `cargo run --release --example sampler_showdown`

use ppgnn_core::preprocess::Preprocessor;
use ppgnn_core::trainer::{self, LoaderKind, TrainConfig, Trainer};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;
use ppgnn_models::{GraphSage, Sign};
use ppgnn_sampler::{
    LaborSampler, LadiesSampler, NeighborSampler, SaintNodeSampler, SampleStats, Sampler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::products_sim().scaled(0.15);
    let data = SynthDataset::generate(profile, 3)?;
    let config = TrainConfig {
        epochs: 8,
        batch_size: 256,
        lr: 5e-3,
        ..TrainConfig::default()
    };

    println!(
        "graph: {} nodes, {} edges | per-batch seed count {}",
        data.graph.num_nodes(),
        data.graph.num_edges(),
        config.batch_size
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>10}",
        "sampler", "input-nodes", "expansion", "test-acc", "epoch-s"
    );

    let mut samplers: Vec<Box<dyn Sampler>> = vec![
        Box::new(NeighborSampler::new(vec![15, 10, 5], 1)),
        Box::new(LaborSampler::new(vec![15, 10, 5], 1)),
        Box::new(LadiesSampler::new(3, 512, 1)),
        Box::new(SaintNodeSampler::new(3, 512, 1)),
    ];

    for sampler in samplers.iter_mut() {
        // measure expansion on a probe batch
        let seeds: Vec<usize> = (0..config.batch_size).collect();
        let probe = sampler.sample(&data.graph, &seeds);
        let stats: SampleStats = probe.stats;

        let mut rng = StdRng::seed_from_u64(5);
        let mut model = GraphSage::new(3, profile.feature_dim, 64, profile.num_classes, &mut rng);
        let t = std::time::Instant::now();
        let report = trainer::fit_mp(
            &mut model,
            sampler.as_mut(),
            &data.graph,
            &data.features,
            &data.labels,
            &data.split.train,
            &data.split.val,
            &data.split.test,
            &config,
        )?;
        let epoch_s = t.elapsed().as_secs_f64() / config.epochs as f64;
        println!(
            "{:<12} {:>12} {:>11.1}x {:>9.1}% {:>10.3}",
            sampler.name(),
            stats.input_nodes,
            stats.expansion_factor(),
            100.0 * report.test_acc,
            epoch_s
        );
    }

    // PP-GNN comparison: expansion factor is exactly 1 by construction.
    let prep = Preprocessor::new(vec![Operator::SymNorm], 3).run(&data);
    let mut rng = StdRng::seed_from_u64(5);
    let mut sign = Sign::new(
        3,
        profile.feature_dim,
        64,
        profile.num_classes,
        0.1,
        &mut rng,
    );
    let t = std::time::Instant::now();
    let mut pp_trainer = Trainer::new(TrainConfig {
        loader: LoaderKind::Chunk { chunk_size: 256 },
        ..config
    });
    let report = pp_trainer.fit(&mut sign, &prep)?;
    let epoch_s = t.elapsed().as_secs_f64() / config.epochs as f64;
    println!(
        "{:<12} {:>12} {:>11.1}x {:>9.1}% {:>10.3}  (+ one-time preprocess {:.2}s)",
        "sign (pp)",
        config.batch_size,
        1.0,
        100.0 * report.test_acc,
        epoch_s,
        prep.preprocess_seconds
    );
    Ok(())
}
