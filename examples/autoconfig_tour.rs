//! Tour of the automated training-configuration system (Section 5).
//!
//! Walks all six benchmark profiles at **paper scale** against the paper's
//! A6000 server, printing the plan each would get, then demonstrates the
//! storage path end-to-end at laptop scale: preprocess → write the
//! file-per-hop store → train from disk with chunk reshuffling.
//!
//! Run with: `cargo run --release --example autoconfig_tour`

use ppgnn_core::autoconf::{probe_model_peak_bytes, AutoConfig};
use ppgnn_core::bridge::{expanded_input_bytes, WorkloadScale};
use ppgnn_core::loader::{Loader, StorageChunkLoader};
use ppgnn_core::preprocess::Preprocessor;
use ppgnn_dataio::{AccessPath, FeatureStore};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;
use ppgnn_memsim::HardwareSpec;
use ppgnn_models::{PpModel, Sign};
use ppgnn_nn::{CrossEntropyLoss, Mode, Optimizer, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = HardwareSpec::a6000_server();
    let cfg = AutoConfig::default();
    let hops = 3;
    let probe = probe_model_peak_bytes(3_000_000, 8000, 4096);

    println!("automated configuration at paper scale (4x A6000, 380 GB host):");
    println!(
        "{:<18} {:>14} {:>10} {:>8}  reason",
        "dataset", "input", "placement", "method"
    );
    for profile in DatasetProfile::all_profiles() {
        let bytes = expanded_input_bytes(&profile, hops, 1, WorkloadScale::Paper);
        let plan = cfg.plan(&server, bytes, probe);
        println!(
            "{:<18} {:>11.1} GB {:>10} {:>8}  {}",
            profile.name,
            bytes as f64 / 1e9,
            plan.placement.name(),
            plan.method.name(),
            &plan.reason[..plan.reason.len().min(60)],
        );
    }

    // --- storage path demo, end to end, for real ---
    println!("\nstorage-path demo (igb-large analog at laptop scale):");
    let profile = DatasetProfile::igb_large_sim().scaled(0.02);
    let data = SynthDataset::generate(profile, 9)?;
    let prep = Preprocessor::new(vec![Operator::SymNorm], hops).run(&data);
    let dir = std::env::temp_dir().join(format!("ppgnn-tour-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    prep.write_store(&dir, profile.name, 128)?;
    println!(
        "  wrote {} hop files ({:.1} MB) to {}",
        hops + 1,
        prep.expansion.expanded_bytes as f64 / 1e6,
        dir.display()
    );

    let store = FeatureStore::open(&dir)?;
    let mut loader =
        StorageChunkLoader::new(store, prep.train.labels.clone(), 256, AccessPath::Direct, 4);
    let mut rng = StdRng::seed_from_u64(1);
    let mut model = Sign::new(
        hops,
        profile.feature_dim,
        32,
        profile.num_classes,
        0.1,
        &mut rng,
    );
    let mut opt = Sgd::with_options(0.01, 0.9, 0.0);
    for epoch in 0..3 {
        loader.start_epoch();
        let mut loss_sum = 0.0f64;
        let mut batches = 0;
        while let Some(batch) = loader.next_batch() {
            let logits = model.forward(&batch.hops, Mode::Train);
            let (loss, grad) = CrossEntropyLoss.loss_and_grad(&logits, &batch.labels);
            model.zero_grad();
            model.backward(&grad);
            opt.step(&mut model.params());
            loss_sum += loss as f64;
            batches += 1;
        }
        // A drained epoch is only complete if no storage error ended it.
        if let Some(err) = loader.take_error() {
            return Err(format!("storage loader failed mid-epoch: {err}").into());
        }
        let io = loader.io_counters();
        println!(
            "  epoch {epoch}: loss {:.3} | {} sequential reads, {} random reads, {:.1} MB from disk",
            loss_sum / batches as f64,
            io.seq_requests,
            io.rand_requests,
            io.total_bytes() as f64 / 1e6,
        );
    }
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
