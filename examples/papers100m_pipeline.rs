//! The papers100M scenario (Section 6.4 / Table 3): only 1.4 % of nodes are
//! labeled, so pre-propagation shrinks the training input ~70× — small
//! enough to preload into GPU memory while MP-GNNs still need the full
//! 77 GB graph.
//!
//! Functional plane: trains SIGN and HOGA on the scaled analog and reports
//! real accuracy and convergence. Performance plane: replays the paper-scale
//! workload through the hardware simulator for 1/2/4 GPUs.
//!
//! Run with: `cargo run --release --example papers100m_pipeline`

use ppgnn_core::bridge::{pp_workload, WorkloadScale};
use ppgnn_core::preprocess::Preprocessor;
use ppgnn_core::trainer::{LoaderKind, TrainConfig, Trainer};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;
use ppgnn_memsim::{multigpu, HardwareSpec, LoaderGen, Placement};
use ppgnn_models::{Hoga, PpModel, Sign};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::papers100m_sim().scaled(0.5);
    let data = SynthDataset::generate(profile, 1)?;
    println!(
        "papers100m-sim: {} nodes, {} labeled ({:.1}%)",
        data.graph.num_nodes(),
        data.split.num_labeled(),
        100.0 * data.split.num_labeled() as f64 / data.graph.num_nodes() as f64,
    );

    let hops = 3;
    let prep = Preprocessor::new(vec![Operator::SymNorm], hops).run(&data);
    let full_raw = (data.graph.num_nodes() * profile.feature_dim * 4) as f64;
    println!(
        "retention: full-graph features {:.1} MB -> expanded training input {:.1} MB",
        full_raw / 1e6,
        prep.expansion.expanded_bytes as f64 / 1e6,
    );

    // --- functional plane: real training ---
    let c = profile.num_classes;
    let f = profile.feature_dim;
    let mut rng = StdRng::seed_from_u64(2);
    let mut models: Vec<(&str, Box<dyn PpModel>)> = vec![
        ("SIGN", Box::new(Sign::new(hops, f, 64, c, 0.1, &mut rng))),
        (
            "HOGA",
            Box::new(Hoga::new(hops, f, 64, 4, c, 0.1, &mut rng)),
        ),
    ];
    for (name, model) in models.iter_mut() {
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 128,
            loader: LoaderKind::DoubleBuffer,
            lr: 3e-3,
            ..TrainConfig::default()
        });
        let report = trainer.fit(model.as_mut(), &prep)?;
        println!(
            "{name}: test acc {:.1}% | convergence epoch {:?} | mean epoch {:.3}s",
            100.0 * report.test_acc,
            report.convergence_point,
            report.mean_epoch_seconds(),
        );
    }

    // --- performance plane: paper-scale throughput, Table 3 shape ---
    let spec = HardwareSpec::a6000_server();
    println!("\nsimulated paper-scale throughput (epochs/sec), SIGN {hops} hops:");
    println!("{:<8} {:>10} {:>10} {:>10}", "gpus", "1", "2", "4");
    let mut rng = StdRng::seed_from_u64(3);
    let sign = Sign::new(hops, profile.feature_dim, 512, c, 0.0, &mut rng);
    let w = pp_workload(&profile, &sign, 1, 8000, 8000, WorkloadScale::Paper);
    let curve = multigpu::scaling_curve(
        &spec,
        &w,
        LoaderGen::DoubleBuffer,
        Placement::Gpu,
        &[1, 2, 4],
    );
    print!("{:<8}", "SIGN");
    for (_, tput) in &curve {
        print!(" {:>10.2}", tput);
    }
    println!();
    println!(
        "(paper reports 2.94 / 3.23 / 6.62 epoch/sec for SIGN at 2 hops — the\n\
         shape to compare is near-linear scaling from GPU-resident data)"
    );
    Ok(())
}
