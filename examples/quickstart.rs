//! Quickstart: the full PP-GNN pipeline on a small synthetic benchmark.
//!
//! Generates a scaled-down `ogbn-products` analog, pre-propagates features
//! (Eq. 2 of the paper), trains SIGN with the optimized double-buffered
//! loader, and prints accuracy plus the training-time breakdown.
//!
//! Run with: `cargo run --release --example quickstart`

use ppgnn_core::preprocess::Preprocessor;
use ppgnn_core::trainer::{LoaderKind, TrainConfig, Trainer};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::{stats, Operator};
use ppgnn_models::Sign;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a products-like graph (scaled for a quick demo).
    let profile = DatasetProfile::products_sim().scaled(0.25);
    let data = SynthDataset::generate(profile, 42)?;
    println!(
        "dataset: {} — {} nodes, {} edges, {} classes, homophily {:.2}",
        profile.name,
        data.graph.num_nodes(),
        data.graph.num_edges(),
        profile.num_classes,
        stats::edge_homophily(&data.graph, &data.labels),
    );

    // 2. One-time pre-propagation: S = {X, ÂX, Â²X, Â³X}.
    let hops = 3;
    let prep = Preprocessor::new(vec![Operator::SymNorm], hops).run(&data);
    println!(
        "preprocessing: {:.2}s, input expanded {}x ({} -> {} bytes)",
        prep.preprocess_seconds,
        prep.expansion.factor(),
        prep.expansion.raw_bytes,
        prep.expansion.expanded_bytes,
    );

    // 3. Train SIGN with the optimized loader (double-buffer prefetching).
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = Sign::new(
        hops,
        profile.feature_dim,
        64,
        profile.num_classes,
        0.2,
        &mut rng,
    );
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 20,
        batch_size: 256,
        loader: LoaderKind::DoubleBuffer,
        lr: 3e-3,
        ..TrainConfig::default()
    });
    let report = trainer.fit(&mut model, &prep)?;

    // 4. Report.
    println!(
        "test accuracy: {:.1}% (majority baseline {:.1}%)",
        100.0 * report.test_acc,
        100.0 * data.majority_baseline(),
    );
    println!(
        "convergence point (99% of peak val acc): epoch {:?}",
        report.convergence_point
    );
    let last = report.history.last().expect("at least one epoch");
    println!(
        "epoch breakdown: loading {:.1}% | forward {:.1}% | backward {:.1}% | optim {:.1}%",
        100.0 * last.loading_s / (last.loading_s + last.forward_s + last.backward_s + last.optim_s),
        100.0 * last.forward_s / (last.loading_s + last.forward_s + last.backward_s + last.optim_s),
        100.0 * last.backward_s
            / (last.loading_s + last.forward_s + last.backward_s + last.optim_s),
        100.0 * last.optim_s / (last.loading_s + last.forward_s + last.backward_s + last.optim_s),
    );
    Ok(())
}
