//! Comparison harness: seed-style pre-propagation (full hop-chain clones +
//! `hstack` concatenation + gather, the pre-PR-2 data path) vs the
//! streaming `Preprocessor::run`, on the pokec K=2/R=3 configuration.
//!
//! ```sh
//! cargo run --release --example seed_vs_stream          # SCALE=0.25
//! SCALE=0.5 PPGNN_NUM_THREADS=8 cargo run --release --example seed_vs_stream
//! ```
//!
//! Both paths use today's kernels, so the printed speedup isolates the
//! data-movement win (no chain clones, no concatenation pass, buffer
//! reuse); the pool + nnz-balancing win on top of it shows up when
//! comparing across thread counts on skewed graphs.

use std::time::Instant;

use ppgnn_core::preprocess::Preprocessor;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;
use ppgnn_tensor::Matrix;

/// Replica of the pre-streaming `Preprocessor::run` data path.
fn seed_style_run(data: &SynthDataset, operators: &[Operator], hops: usize) -> Vec<Matrix> {
    let mut per_hop: Vec<Vec<Matrix>> = vec![Vec::new(); hops + 1];
    for op in operators {
        let base = op.base(&data.graph);
        let mut current = data.features.clone();
        per_hop[0].push(current.clone());
        for r in 1..=hops {
            current = op.apply_with_base(&base, &current);
            per_hop[r].push(current.clone());
        }
    }
    let full_hops: Vec<Matrix> = per_hop
        .into_iter()
        .map(|mats| {
            if mats.len() == 1 {
                mats.into_iter().next().expect("len checked")
            } else {
                let refs: Vec<&Matrix> = mats.iter().collect();
                Matrix::hstack(&refs)
            }
        })
        .collect();
    let mut out = Vec::new();
    for ids in [&data.split.train, &data.split.val, &data.split.test] {
        for h in &full_hops {
            out.push(h.gather_rows(ids));
        }
    }
    out
}

fn main() {
    let scale: f64 = std::env::var("SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(scale), 0).unwrap();
    let ops = vec![Operator::SymNorm, Operator::RowNorm];
    let prep = Preprocessor::new(ops.clone(), 3);

    // Warm both paths once.
    let _ = seed_style_run(&data, &ops, 3);
    let _ = prep.run(&data);

    let mut seed_best = f64::MAX;
    let mut stream_best = f64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        let s = seed_style_run(&data, &ops, 3);
        seed_best = seed_best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(s);

        let t = Instant::now();
        let o = prep.run(&data);
        stream_best = stream_best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(o);
    }
    println!(
        "n={} threads={} seed={seed_best:.4}s stream={stream_best:.4}s speedup={:.2}x",
        data.graph.num_nodes(),
        ppgnn_tensor::pool().num_threads(),
        seed_best / stream_best
    );
}
