//! Partition-parallel pre-propagation with per-hop ghost-row exchange.
//!
//! The shard-scheduled engine in `ppgnn-core` parallelizes diffusion over
//! node ranges that all read one shared full-graph buffer — a single
//! memory domain. This crate implements the next regime: the graph is cut
//! into `P` **disjoint node partitions** ([`ppgnn_graph::PartitionPlan`]),
//! each partition holds only its own rows plus a compact **ghost region**
//! (the out-of-partition rows its edges reach), and every hop starts with
//! a ghost exchange — each partition copies the current values of its
//! ghost nodes from their owners' buffers — before a partition-local SpMM.
//! That is exactly the communication pattern of multi-machine
//! preprocessing (the exchange is the network step), executed here across
//! the shared worker pool.
//!
//! **Bit-identity.** Partitioning may change *where* a row is computed,
//! never *what* it holds: extraction preserves each row's entry order (see
//! [`ppgnn_graph::PartitionPlan::extract`]), the ghost exchange delivers
//! exactly the same input values a whole-graph SpMM would read, and the
//! diffusion-series schedules (`Ppr`/`Heat`) replay the reference
//! element-wise operation sequence (`copy → scale → spmm/axpy per term`).
//! `tests/partition_equivalence.rs` pins partitioned outputs bit-for-bit
//! against the whole-graph path at several `P`.

#![deny(missing_docs)]

use ppgnn_graph::{nnz_balanced_blocks, CsrGraph, Operator, PartitionCsr, PartitionPlan};
use ppgnn_tensor::{Matrix, WorkerPool};

/// Per-partition accounting surfaced through `ExpansionReport` so the
/// `exp_*` binaries can print the partition balance table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStat {
    /// Partition id.
    pub partition: usize,
    /// Nodes (rows) owned by the partition.
    pub rows: usize,
    /// Non-zeros of the partition-local operator (one representative
    /// operator; all bases share the graph's sparsity).
    pub nnz: usize,
    /// Ghost rows the partition fetches every hop.
    pub ghost_rows: usize,
    /// Training rows owned by the partition. The engine leaves this at
    /// `0` ([`PartitionedDiffusion::partition_stats`] has no notion of a
    /// split); the partitioned preprocessor in `ppgnn-core` fills it for
    /// every run, with or without a store.
    pub train_rows: usize,
    /// Payload bytes of the partition's feature store — the only
    /// store-dependent field: filled by the store-writing caller, `0`
    /// for in-memory runs without a store.
    pub store_bytes: u64,
}

/// Read-only view of one finished hop: every operator's current values for
/// every partition's own rows, addressable by **global** node id.
#[derive(Debug)]
pub struct HopView<'a> {
    plan: &'a PartitionPlan,
    f: usize,
    /// `[op][partition]`: rows `0..n_p` hold the partition's own values.
    locals: &'a [Vec<Matrix>],
}

impl HopView<'_> {
    /// Feature dimension `F` of each operator's values.
    pub fn feature_dim(&self) -> usize {
        self.f
    }

    /// The plan the view is laid out over.
    pub fn plan(&self) -> &PartitionPlan {
        self.plan
    }

    /// Gathers operator `op`'s rows for global node `ids` into columns
    /// `[col_offset, col_offset + F)` of `out` — the partitioned analog of
    /// `Matrix::gather_rows_into_offset`, resolving each id through the
    /// plan's `(partition, local row)` mapping.
    ///
    /// # Panics
    ///
    /// Panics if `out` has fewer than `ids.len()` rows or the column range
    /// exceeds `out.cols()`.
    pub fn gather_rows_into_offset(
        &self,
        op: usize,
        ids: &[usize],
        out: &mut Matrix,
        col_offset: usize,
    ) {
        let f = self.f;
        for (i, &v) in ids.iter().enumerate() {
            let p = self.plan.owner(v);
            let r = self.plan.local(v);
            let src = &self.locals[op][p].as_slice()[r * f..(r + 1) * f];
            out.row_mut(i)[col_offset..col_offset + f].copy_from_slice(src);
        }
    }
}

/// The partition-parallel diffusion engine.
///
/// Construction extracts one partition-local CSR per (operator, partition)
/// and precomputes the ghost fetch lists; [`PartitionedDiffusion::run`]
/// then streams hops, invoking a callback with a [`HopView`] as each hop
/// completes (hop `0` is the raw features).
#[derive(Debug)]
pub struct PartitionedDiffusion {
    plan: PartitionPlan,
    operators: Vec<Operator>,
    hops: usize,
    /// `[op][partition]` extracted local operators.
    parts: Vec<Vec<PartitionCsr>>,
    /// `[op][partition]` ghost fetches as `(src_partition, src_row, dst_row)`.
    fetches: Vec<Vec<Vec<(u32, u32, u32)>>>,
}

impl PartitionedDiffusion {
    /// Extracts partition-local operators for `operators` over `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `operators` is empty, `plan` covers no nodes, or the
    /// plan's node count disagrees with the graph's.
    pub fn new(
        graph: &CsrGraph,
        operators: Vec<Operator>,
        hops: usize,
        plan: PartitionPlan,
    ) -> Self {
        assert!(!operators.is_empty(), "at least one operator required");
        assert!(
            plan.num_partitions() > 0,
            "plan must cover at least one node"
        );
        assert_eq!(
            plan.num_nodes(),
            graph.num_nodes(),
            "plan/graph node count mismatch"
        );
        let mut parts = Vec::with_capacity(operators.len());
        let mut fetches = Vec::with_capacity(operators.len());
        for op in &operators {
            let base = op.base(graph);
            let op_parts: Vec<PartitionCsr> = (0..plan.num_partitions())
                .map(|p| plan.extract(&base, p))
                .collect();
            let op_fetches: Vec<Vec<(u32, u32, u32)>> = op_parts
                .iter()
                .enumerate()
                .map(|(p, part)| {
                    let n_p = plan.members(p).len();
                    part.ghosts
                        .iter()
                        .enumerate()
                        .map(|(i, &g)| {
                            (plan.owner(g) as u32, plan.local(g) as u32, (n_p + i) as u32)
                        })
                        .collect()
                })
                .collect();
            parts.push(op_parts);
            fetches.push(op_fetches);
        }
        PartitionedDiffusion {
            plan,
            operators,
            hops,
            parts,
            fetches,
        }
    }

    /// The partition plan the engine runs over.
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// Per-partition rows / nnz / ghost-row accounting (`train_rows` and
    /// `store_bytes` are left at `0` for the caller to fill when a store
    /// is written).
    pub fn partition_stats(&self) -> Vec<PartitionStat> {
        (0..self.plan.num_partitions())
            .map(|p| PartitionStat {
                partition: p,
                rows: self.plan.members(p).len(),
                nnz: self.parts[0][p].csr.nnz(),
                ghost_rows: self.parts[0][p].ghosts.len(),
                train_rows: 0,
                store_bytes: 0,
            })
            .collect()
    }

    /// Total ghost rows exchanged per hop across all partitions (one
    /// representative operator) — the "network traffic" of the partition
    /// schedule, in rows.
    pub fn ghost_rows_per_hop(&self) -> usize {
        self.parts[0].iter().map(|p| p.ghosts.len()).sum()
    }

    /// Runs partitioned diffusion over `features`, calling
    /// `on_hop(r, view)` for every hop `r` in `0..=hops` as it completes.
    /// An `Err` from the callback aborts the run and is returned.
    ///
    /// `task_shards` bounds how many SpMM tasks each partition is cut into
    /// per hop (nnz-balanced over the partition-local rows), so the worker
    /// pool stays full even when `P` is smaller than the pool width; the
    /// cut never affects results.
    ///
    /// # Errors
    ///
    /// Propagates the first callback error.
    ///
    /// # Panics
    ///
    /// Panics if `features.rows()` disagrees with the plan's node count.
    pub fn run<E>(
        &self,
        features: &Matrix,
        pool: &WorkerPool,
        task_shards: usize,
        mut on_hop: impl FnMut(usize, &HopView<'_>) -> Result<(), E>,
    ) -> Result<(), E> {
        assert_eq!(
            features.rows(),
            self.plan.num_nodes(),
            "feature rows must match the partitioned node count"
        );
        let f = features.cols();
        let num_parts = self.plan.num_partitions();
        let k_ops = self.operators.len();
        let task_shards = task_shards.max(1);

        // Per (op, partition) local buffers: [own rows ‖ ghost rows] × F,
        // own region initialized from the raw features (hop 0).
        let mut locals: Vec<Vec<Matrix>> = (0..k_ops)
            .map(|k| {
                (0..num_parts)
                    .map(|p| {
                        let members = self.plan.members(p);
                        let g_p = self.parts[k][p].ghosts.len();
                        let mut m = Matrix::zeros(members.len() + g_p, f);
                        for (i, &v) in members.iter().enumerate() {
                            m.row_mut(i).copy_from_slice(features.row(v));
                        }
                        m
                    })
                    .collect()
            })
            .collect();
        // Per (op, partition) SpMM scratch over own rows.
        let mut nexts: Vec<Vec<Matrix>> = (0..k_ops)
            .map(|_| {
                (0..num_parts)
                    .map(|p| Matrix::zeros(self.plan.members(p).len(), f))
                    .collect()
            })
            .collect();
        // nnz-balanced task ranges per (op, partition).
        let blocks: Vec<Vec<Vec<std::ops::Range<usize>>>> = self
            .parts
            .iter()
            .map(|op_parts| {
                op_parts
                    .iter()
                    .map(|part| nnz_balanced_blocks(part.csr.indptr(), task_shards))
                    .collect()
            })
            .collect();

        on_hop(
            0,
            &HopView {
                plan: &self.plan,
                f,
                locals: &locals,
            },
        )?;

        // Series scratch (out accumulator + term buffer per partition),
        // allocated on first use and reused across hops and operators.
        let mut series_out: Vec<Matrix> = Vec::new();
        let mut series_term: Vec<Matrix> = Vec::new();

        for r in 1..=self.hops {
            // Simple operators: exchange every ghost region, then submit
            // ONE task batch across all (op, partition, block) triples so
            // operator passes overlap on the pool.
            {
                let _xch_span = ppgnn_telemetry::span_with("ghost_exchange", &[("r", r as u64)]);
                for k in 0..k_ops {
                    if !self.operators[k].is_diffusion_series() {
                        exchange(&mut locals[k], &self.fetches[k]);
                    }
                }
            }
            {
                let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
                for (((k, op), nexts_k), locals_k) in self
                    .operators
                    .iter()
                    .enumerate()
                    .zip(nexts.iter_mut())
                    .zip(locals.iter())
                {
                    if op.is_diffusion_series() {
                        continue;
                    }
                    for (p, next) in nexts_k.iter_mut().enumerate() {
                        let csr = &self.parts[k][p].csr;
                        let x = &locals_k[p];
                        let mut rest = next.as_mut_slice();
                        for range in &blocks[k][p] {
                            let (slab, tail) = rest.split_at_mut(range.len() * f);
                            rest = tail;
                            let range = range.clone();
                            tasks.push(Box::new(move || csr.spmm_rows_into(range, x, slab)));
                        }
                        debug_assert!(rest.is_empty(), "blocks must tile the partition rows");
                    }
                }
                if !tasks.is_empty() {
                    pool.run(tasks);
                }
            }
            for (k, op) in self.operators.iter().enumerate() {
                if !op.is_diffusion_series() {
                    for p in 0..num_parts {
                        let n_p = self.plan.members(p).len();
                        locals[k][p].as_mut_slice()[..n_p * f]
                            .copy_from_slice(nexts[k][p].as_slice());
                    }
                }
            }

            // Diffusion-series operators: internally sequential truncated
            // series; partitions (and their nnz blocks) parallel within
            // each term, with a per-term ghost exchange on the term buffer.
            for k in 0..k_ops {
                let op = self.operators[k];
                if !op.is_diffusion_series() {
                    continue;
                }
                if series_out.is_empty() {
                    series_out = (0..num_parts)
                        .map(|p| Matrix::zeros(self.plan.members(p).len(), f))
                        .collect();
                }
                if series_term.len() != num_parts
                    || (0..num_parts).any(|p| series_term[p].rows() != locals[k][p].rows())
                {
                    series_term = (0..num_parts)
                        .map(|p| Matrix::zeros(locals[k][p].rows(), f))
                        .collect();
                }
                let (alpha, heat_t) = match op {
                    Operator::Ppr { alpha } => {
                        assert!((0.0..1.0).contains(&alpha), "ppr alpha must be in (0,1)");
                        (alpha, None)
                    }
                    Operator::Heat { t } => {
                        assert!(t > 0.0, "heat diffusion time must be positive");
                        (1.0, Some(t))
                    }
                    _ => unreachable!("non-series operator in series branch"),
                };
                for p in 0..num_parts {
                    let n_p = self.plan.members(p).len();
                    let own = &locals[k][p].as_slice()[..n_p * f];
                    series_out[p].as_mut_slice().copy_from_slice(own);
                    if heat_t.is_none() {
                        series_out[p].scale(alpha);
                    }
                    series_term[p].as_mut_slice()[..n_p * f].copy_from_slice(own);
                }
                let mut coeff = alpha;
                for term_i in 1..=op.series_terms() {
                    {
                        let _xch_span = ppgnn_telemetry::span_with(
                            "ghost_exchange",
                            &[("r", r as u64), ("term", term_i as u64)],
                        );
                        exchange(&mut series_term, &self.fetches[k]);
                    }
                    {
                        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
                        for (p, next) in nexts[k].iter_mut().enumerate() {
                            let csr = &self.parts[k][p].csr;
                            let x = &series_term[p];
                            let mut rest = next.as_mut_slice();
                            for range in &blocks[k][p] {
                                let (slab, tail) = rest.split_at_mut(range.len() * f);
                                rest = tail;
                                let range = range.clone();
                                tasks.push(Box::new(move || csr.spmm_rows_into(range, x, slab)));
                            }
                        }
                        pool.run(tasks);
                    }
                    coeff *= match heat_t {
                        None => 1.0 - alpha,
                        Some(t) => t / term_i as f32,
                    };
                    for p in 0..num_parts {
                        let n_p = self.plan.members(p).len();
                        series_term[p].as_mut_slice()[..n_p * f]
                            .copy_from_slice(nexts[k][p].as_slice());
                        series_out[p].axpy(coeff, &nexts[k][p]);
                    }
                }
                for p in 0..num_parts {
                    if let Some(t) = heat_t {
                        series_out[p].scale((-t).exp());
                    }
                    let n_p = self.plan.members(p).len();
                    locals[k][p].as_mut_slice()[..n_p * f]
                        .copy_from_slice(series_out[p].as_slice());
                }
            }

            on_hop(
                r,
                &HopView {
                    plan: &self.plan,
                    f,
                    locals: &locals,
                },
            )?;
        }
        Ok(())
    }
}

/// Copies every partition's ghost rows from their owners' own regions.
///
/// `fetches[p]` lists `(src_partition, src_row, dst_row)`; sources are
/// always own rows (`src_row < n_src`), destinations ghost rows
/// (`dst_row >= n_p`), and a node never ghosts into its own partition, so
/// reads and writes never alias.
fn exchange(mats: &mut [Matrix], fetches: &[Vec<(u32, u32, u32)>]) {
    for p in 0..mats.len() {
        for &(sp, sr, dr) in &fetches[p] {
            let (sp, sr, dr) = (sp as usize, sr as usize, dr as usize);
            debug_assert_ne!(sp, p, "a node never ghosts into its own partition");
            let (lo, hi) = mats.split_at_mut(p.max(sp));
            let (dst, src) = if p < sp {
                (&mut lo[p], &hi[0] as &Matrix)
            } else {
                (&mut hi[0], &lo[sp] as &Matrix)
            };
            dst.row_mut(dr).copy_from_slice(src.row(sr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_graph::{BfsGrowPartitioner, CsrGraph, Partitioner, RangeCutPartitioner};

    fn ring_with_hub(n: usize) -> CsrGraph {
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.extend((2..n).step_by(3).map(|v| (0, v)));
        CsrGraph::from_edges(n, &edges, true).unwrap()
    }

    fn whole_graph_hops(
        g: &CsrGraph,
        ops: &[Operator],
        x: &Matrix,
        hops: usize,
    ) -> Vec<Vec<Matrix>> {
        // [hop][op] full-graph reference, computed with the same primitive
        // ops the streaming preprocessor uses.
        let mut result = vec![vec![x.clone(); ops.len()]];
        let bases: Vec<_> = ops.iter().map(|op| op.base(g)).collect();
        let mut currents: Vec<Matrix> = (0..ops.len()).map(|_| x.clone()).collect();
        for _ in 1..=hops {
            let mut level = Vec::new();
            for (k, op) in ops.iter().enumerate() {
                let mut next = Matrix::zeros(x.rows(), x.cols());
                op.apply_with_base_into(&bases[k], &currents[k], &mut next);
                currents[k] = next.clone();
                level.push(next);
            }
            result.push(level);
        }
        result
    }

    #[test]
    fn partitioned_hops_are_bit_identical_to_whole_graph() {
        let g = ring_with_hub(60);
        let x = Matrix::from_fn(60, 4, |r, c| ((r * 31 + c * 17) % 23) as f32 - 11.0);
        let ops = vec![
            Operator::SymNorm,
            Operator::Ppr { alpha: 0.2 },
            Operator::RowNorm,
        ];
        let reference = whole_graph_hops(&g, &ops, &x, 3);
        let pool = WorkerPool::new(3);
        for parts in [1usize, 2, 5] {
            let plan = RangeCutPartitioner.partition(&g, parts);
            let engine = PartitionedDiffusion::new(&g, ops.clone(), 3, plan);
            let ids: Vec<usize> = (0..60).collect();
            engine
                .run::<()>(&x, &pool, 4, |r, view| {
                    for k in 0..ops.len() {
                        let mut got = Matrix::zeros(60, 4);
                        view.gather_rows_into_offset(k, &ids, &mut got, 0);
                        let same = got
                            .as_slice()
                            .iter()
                            .zip(reference[r][k].as_slice())
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                        assert!(same, "P={parts} hop {r} op {k} diverged");
                    }
                    Ok(())
                })
                .unwrap();
        }
    }

    #[test]
    fn bfs_grow_plan_is_also_bit_identical() {
        let g = ring_with_hub(48);
        let x = Matrix::from_fn(48, 3, |r, c| ((r * 7 + c) % 11) as f32 - 5.0);
        let reference = whole_graph_hops(&g, &[Operator::SymNorm], &x, 2);
        let pool = WorkerPool::new(2);
        let plan = BfsGrowPartitioner.partition(&g, 3);
        let engine = PartitionedDiffusion::new(&g, vec![Operator::SymNorm], 2, plan);
        let ids: Vec<usize> = (0..48).collect();
        engine
            .run::<()>(&x, &pool, 2, |r, view| {
                let mut got = Matrix::zeros(48, 3);
                view.gather_rows_into_offset(0, &ids, &mut got, 0);
                let same = got
                    .as_slice()
                    .iter()
                    .zip(reference[r][0].as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "bfs-grow hop {r} diverged");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn callback_errors_abort_the_run() {
        let g = ring_with_hub(12);
        let x = Matrix::zeros(12, 2);
        let plan = RangeCutPartitioner.partition(&g, 2);
        let engine = PartitionedDiffusion::new(&g, vec![Operator::SymNorm], 5, plan);
        let pool = WorkerPool::new(1);
        let mut calls = 0;
        let err = engine.run(&x, &pool, 1, |r, _| {
            calls += 1;
            if r == 1 {
                Err("stop")
            } else {
                Ok(())
            }
        });
        assert_eq!(err, Err("stop"));
        assert_eq!(calls, 2, "run must abort at the first callback error");
    }

    #[test]
    fn stats_cover_all_rows_and_count_ghosts() {
        let g = ring_with_hub(30);
        let plan = RangeCutPartitioner.partition(&g, 3);
        let engine = PartitionedDiffusion::new(&g, vec![Operator::SymNorm], 1, plan);
        let stats = engine.partition_stats();
        assert_eq!(stats.iter().map(|s| s.rows).sum::<usize>(), 30);
        assert!(stats.iter().all(|s| s.nnz > 0));
        let ghosts: usize = stats.iter().map(|s| s.ghost_rows).sum();
        assert_eq!(ghosts, engine.ghost_rows_per_hop());
        assert!(ghosts > 0, "a ring cut into 3 must ghost across cuts");
    }
}
