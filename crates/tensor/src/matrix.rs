use crate::TensorError;

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the single tensor type used throughout the workspace. It is
/// deliberately plain: contiguous storage, no strides, no views — batches of
/// node features are always materialized as `[batch, feature]` matrices, and
/// the `[batch, tokens, feature]` input of the HOGA attention layer is stored
/// flattened as `[batch * tokens, feature]`.
///
/// # Example
///
/// ```
/// use ppgnn_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
/// assert_eq!(m.get(1, 0), 2.0);
/// assert_eq!(m.row(1), &[2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all share the same length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the backing buffer in bytes (used for placement accounting).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The full row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the full row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Reinterprets the buffer with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadReshape`] if `rows * cols != self.len()`.
    pub fn reshape(self, rows: usize, cols: usize) -> Result<Self, TensorError> {
        if rows * cols != self.data.len() {
            return Err(TensorError::BadReshape {
                from: self.data.len(),
                to: rows * cols,
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: self.data,
        })
    }

    /// Reshapes `self` to `rows × cols` in place, reusing the existing
    /// allocation whenever its capacity suffices (element values are
    /// unspecified afterwards — callers overwrite them).
    ///
    /// This is the slot primitive behind the `forward_into` plumbing:
    /// output matrices handed down a model stack are resized instead of
    /// reallocated, so steady-state train/eval steps at a fixed batch
    /// shape perform no allocation, and a trailing odd-sized batch only
    /// shrinks the buffers (capacity is retained for the next epoch).
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Copies rows `start..end` into a pre-allocated matrix — the
    /// allocation-free form of [`Matrix::slice_rows`] that batch loops
    /// (the trainer's evaluation pass) reuse a scratch matrix through.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`, `end > rows`, or `out` is not
    /// `(end - start) x cols`.
    pub fn slice_rows_into(&self, start: usize, end: usize, out: &mut Matrix) {
        assert!(
            start <= end && end <= self.rows,
            "bad row range {start}..{end}"
        );
        assert_eq!(
            out.shape(),
            (end - start, self.cols),
            "slice_rows_into output shape mismatch"
        );
        out.data
            .copy_from_slice(&self.data[start * self.cols..end * self.cols]);
    }

    /// Returns a sub-matrix containing rows `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "bad row range {start}..{end}"
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_shapes() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert_eq!(z.len(), 12);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let f = Matrix::full(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&x| x == 7.5));

        let e = Matrix::eye(3);
        assert_eq!(e.get(0, 0), 1.0);
        assert_eq!(e.get(1, 0), 0.0);
        assert_eq!(e.get(2, 2), 1.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { len: 3, .. }));
    }

    #[test]
    fn from_fn_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn row_accessors_round_trip() {
        let mut m = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        assert_eq!(m.row(2), &[2.0, 3.0]);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m.get(0, 1), 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let r = m.clone().reshape(3, 2).unwrap();
        assert_eq!(r.as_slice(), m.as_slice());
        assert!(m.reshape(4, 2).is_err());
    }

    #[test]
    fn slice_rows_copies_range() {
        let m = Matrix::from_fn(4, 2, |r, _| r as f32);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[1.0, 1.0]);
        assert_eq!(s.row(1), &[2.0, 2.0]);
    }

    #[test]
    fn slice_rows_into_matches_slice_rows_and_overwrites() {
        let m = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let mut out = Matrix::full(2, 3, -1.0);
        m.slice_rows_into(2, 4, &mut out);
        assert_eq!(out, m.slice_rows(2, 4));
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn slice_rows_into_rejects_wrong_shape() {
        let m = Matrix::zeros(4, 2);
        let mut out = Matrix::zeros(3, 2);
        m.slice_rows_into(0, 2, &mut out);
    }

    #[test]
    fn resize_to_reuses_capacity_and_tracks_shape() {
        let mut m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let cap = m.data.capacity();
        m.resize_to(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert_eq!(m.data.capacity(), cap, "shrinking must keep the buffer");
        m.resize_to(4, 4);
        assert_eq!(m.shape(), (4, 4));
        assert_eq!(m.data.capacity(), cap, "regrowing within capacity is free");
    }

    #[test]
    fn empty_matrix_is_well_behaved() {
        let m = Matrix::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.iter_rows().count(), 0);
        let m2 = Matrix::from_rows(&[]);
        assert_eq!(m2.shape(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(2, 2).get(2, 0);
    }
}
