//! The shared worker pool behind every threaded kernel in the workspace.
//!
//! Before this module existed, each GEMM/SpMM call spawned and joined fresh
//! OS threads via `crossbeam::scope` — ~100 µs of setup per call, paid once
//! per hop per operator during pre-propagation. The pool spawns its workers
//! once (lazily, on first use) and keeps them parked on a condvar; a kernel
//! call costs one boxed closure per row block plus a completion wait.
//!
//! Sizing: the global [`pool`] defaults to
//! `std::thread::available_parallelism` and is overridable with the
//! `PPGNN_NUM_THREADS` environment variable (read once, when the global
//! pool is first touched). Tests and benchmarks that need a *specific*
//! width construct their own [`WorkerPool`].
//!
//! The pool also owns the single parallelism threshold shared by all
//! kernels ([`parallel_threshold`] / [`set_parallel_threshold`]), replacing
//! the per-kernel magic numbers (2 M in SpMM, 4 M in GEMM) that used to
//! disagree with each other.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use ppgnn_telemetry::Counter;

/// Pool-wide telemetry totals, mirrored from the per-worker accumulators
/// as jobs complete. Recording happens only while telemetry is enabled
/// (the worker loop skips its clock reads entirely otherwise).
static POOL_TASKS: Counter = Counter::new("pool.tasks");
static POOL_BUSY_NS: Counter = Counter::new("pool.busy_ns");
static POOL_IDLE_NS: Counter = Counter::new("pool.idle_ns");

/// Telemetry accumulators for one spawned worker thread: nanoseconds
/// spent executing jobs, nanoseconds parked waiting for work, and jobs
/// executed. Populated only while `ppgnn_telemetry::enabled()`.
#[derive(Debug, Default)]
pub struct WorkerStat {
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    tasks: AtomicU64,
}

impl WorkerStat {
    /// `(busy_ns, idle_ns, tasks)` snapshot.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.busy_ns.load(Ordering::Relaxed),
            self.idle_ns.load(Ordering::Relaxed),
            self.tasks.load(Ordering::Relaxed),
        )
    }
}

/// A task as it travels through the pool's queue.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Work units (multiply-adds) above which kernels fan out to the pool.
///
/// One shared default for every kernel; see [`set_parallel_threshold`].
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 2_000_000;

static PARALLEL_THRESHOLD: AtomicUsize = AtomicUsize::new(DEFAULT_PARALLEL_THRESHOLD);

/// The work-unit threshold above which kernels use the worker pool.
pub fn parallel_threshold() -> usize {
    PARALLEL_THRESHOLD.load(Ordering::Relaxed)
}

/// Overrides the shared work threshold above which kernels fan out.
///
/// Primarily for tests and benchmarks; `0` forces the pooled path,
/// `usize::MAX` forces single-threaded execution. The unit is the kernel's
/// multiply-add estimate (`m·n·k` for GEMM, `nnz·f` for SpMM).
pub fn set_parallel_threshold(work: usize) {
    PARALLEL_THRESHOLD.store(work, Ordering::Relaxed);
}

/// Number of tasks a kernel with `work` multiply-adds should split into on
/// the global pool: `1` below the shared threshold, the pool width above.
pub fn threads_for(work: usize) -> usize {
    pool().threads_for(work)
}

/// The process-wide pool, created on first use.
///
/// Width is `PPGNN_NUM_THREADS` when set (clamped to `1..=256`), otherwise
/// `std::thread::available_parallelism()`.
pub fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = crate::knobs::usize_value(crate::knobs::NUM_THREADS).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        WorkerPool::new(threads)
    })
}

/// The job queue workers park on. The mutex is held only while pushing or
/// popping — never while a job runs or a worker sleeps (condvar waits
/// release it) — so a caller helping to drain the queue can always make
/// progress.
#[derive(Default)]
struct SharedQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl SharedQueue {
    fn push(&self, job: Job) {
        let mut jobs = self.jobs.lock().expect("pool queue lock poisoned");
        jobs.push_back(job);
        drop(jobs);
        self.available.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.jobs
            .lock()
            .expect("pool queue lock poisoned")
            .pop_front()
    }

    /// Blocks until a job is available (returning it) or shutdown.
    fn pop_or_shutdown(&self) -> Option<Job> {
        let mut jobs = self.jobs.lock().expect("pool queue lock poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            jobs = self.available.wait(jobs).expect("pool queue lock poisoned");
        }
    }
}

/// Completion barrier for one `run` call.
struct Batch {
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload captured from a queued task, re-raised on the
    /// caller once the whole batch has completed.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    fn new(remaining: usize) -> Self {
        Batch {
            remaining: Mutex::new(remaining),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn complete_one(&self) {
        let mut remaining = self.remaining.lock().expect("pool batch lock poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().expect("pool batch lock poisoned") == 0
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("pool batch lock poisoned");
        slot.get_or_insert(payload);
    }
}

/// A persistent pool of worker threads executing borrowed closures.
///
/// [`WorkerPool::run`] is a scoped-execution primitive: it returns only
/// after every submitted task has finished, so tasks may borrow from the
/// caller's stack. The calling thread always executes one task itself and
/// helps drain the queue while waiting, which keeps a width-1 pool (and
/// nested calls) deadlock-free.
#[derive(Debug)]
pub struct WorkerPool {
    queue: Arc<SharedQueue>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// One accumulator per spawned worker (`threads - 1` entries; the
    /// participating caller is not a pool-owned thread).
    stats: Arc<Vec<WorkerStat>>,
}

impl std::fmt::Debug for SharedQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedQueue").finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool that runs tasks on `threads` threads **including the
    /// caller**, i.e. it spawns `threads - 1` workers. `threads` is clamped
    /// to at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(SharedQueue::default());
        let stats: Arc<Vec<WorkerStat>> = Arc::new(
            (1..threads)
                .map(|_| WorkerStat::default())
                .collect::<Vec<_>>(),
        );
        let workers = (1..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("ppgnn-worker-{i}"))
                    .spawn(move || {
                        let stat = &stats[i - 1];
                        loop {
                            // Clock reads are skipped entirely when
                            // telemetry is off; the switch may flip
                            // mid-run, so re-check per job.
                            let idle_from = if ppgnn_telemetry::enabled() {
                                Some(Instant::now())
                            } else {
                                None
                            };
                            let Some(job) = queue.pop_or_shutdown() else {
                                break;
                            };
                            if let Some(t) = idle_from {
                                let ns = t.elapsed().as_nanos() as u64;
                                stat.idle_ns.fetch_add(ns, Ordering::Relaxed);
                                POOL_IDLE_NS.add(ns);
                            }
                            if ppgnn_telemetry::enabled() {
                                let t = Instant::now();
                                job();
                                let ns = t.elapsed().as_nanos() as u64;
                                stat.busy_ns.fetch_add(ns, Ordering::Relaxed);
                                stat.tasks.fetch_add(1, Ordering::Relaxed);
                                POOL_BUSY_NS.add(ns);
                                POOL_TASKS.add(1);
                            } else {
                                job();
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            queue,
            workers,
            threads,
            stats,
        }
    }

    /// Pool width: worker threads plus the participating caller.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Per-worker telemetry accumulators (`threads - 1` entries), live —
    /// they keep counting while telemetry is enabled.
    pub fn worker_stats(&self) -> &[WorkerStat] {
        &self.stats
    }

    /// Number of tasks a kernel with `work` multiply-adds should split
    /// into on **this** pool: `1` below the shared threshold
    /// ([`parallel_threshold`]), the pool width above.
    ///
    /// Explicit-pool callers (the width sweeps in the SpMM regression
    /// suite, the shard scheduler in `ppgnn-core`) share the same gating
    /// as the global-pool kernels instead of re-deriving it; nested
    /// submissions reuse the handle they were given rather than touching
    /// the global pool.
    pub fn threads_for(&self, work: usize) -> usize {
        if work <= parallel_threshold() {
            1
        } else {
            self.threads
        }
    }

    /// Runs every task to completion, borrowing from the caller's scope.
    ///
    /// The final task runs on the calling thread; the rest are queued for
    /// the workers. While its own batch is outstanding the caller pops and
    /// executes queued jobs (its own or a concurrent caller's), then blocks
    /// on the batch condvar.
    ///
    /// # Panics
    ///
    /// If any task panics, `run` waits for the **whole batch** to finish
    /// (panicked tasks included — their unwind is caught inside the queued
    /// job, so workers survive and the completion count still advances)
    /// and then re-raises the first panic on the calling thread, matching
    /// the join-then-propagate behaviour of the scoped-thread code it
    /// replaced.
    pub fn run<'env>(&self, mut tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let Some(local) = tasks.pop() else { return };
        if tasks.is_empty() || self.threads <= 1 {
            // Nothing to fan out (or nobody to fan out to): run inline.
            // A panic here unwinds directly; the unexecuted boxed tasks
            // are merely dropped, which borrows nothing.
            local();
            for task in tasks {
                task();
            }
            return;
        }
        let batch = Arc::new(Batch::new(tasks.len()));
        for task in tasks {
            let batch = Arc::clone(&batch);
            let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                // Catch unwinds so a panicking kernel body can neither kill
                // the worker's pop loop nor skip the completion count that
                // `run`'s soundness depends on.
                if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
                    batch.record_panic(payload);
                }
                batch.complete_one();
            });
            // SAFETY: `run` does not return — normally or by unwinding —
            // until `batch.remaining` reaches zero: the local task runs
            // under `catch_unwind`, the wait loop below is unconditional,
            // and every queued job decrements the counter via
            // `complete_one` even when its task panics (the unwind is
            // caught above). The borrows captured at lifetime `'env`
            // therefore strictly outlive every execution of the job,
            // making the lifetime erasure sound. The transmute itself only
            // erases the lifetime parameter of an otherwise identical fat
            // pointer type.
            unsafe {
                self.queue
                    .push(std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(
                        job,
                    ));
            }
        }
        let local_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(local));
        // Help drain the queue until our batch completes; jobs from
        // concurrent batches may run here too, which is harmless (their
        // owners are blocked in their own `run`, and queued jobs never
        // unwind — they catch internally).
        loop {
            if batch.is_done() {
                break;
            }
            match self.queue.try_pop() {
                Some(job) => job(),
                None => {
                    // Everything left of our batch is in flight on workers:
                    // wait for the last decrement. Re-checking under the
                    // batch lock avoids the lost-wakeup race.
                    let mut remaining = batch.remaining.lock().expect("pool batch lock poisoned");
                    while *remaining > 0 {
                        remaining = batch
                            .done
                            .wait(remaining)
                            .expect("pool batch lock poisoned");
                    }
                    break;
                }
            }
        }
        // Batch fully complete: nothing references the caller's frame any
        // more, so propagating a panic is safe now.
        if let Err(payload) = local_result {
            std::panic::resume_unwind(payload);
        }
        let queued_panic = batch.panic.lock().expect("pool batch lock poisoned").take();
        if let Some(payload) = queued_panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Splits `data` into `sizes.len()` contiguous pieces, piece `i` being
    /// `sizes[i] * width` elements long, and runs `body(i, piece)` for each
    /// on the pool. Shared splitting logic for row-blocked kernels.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` (scaled by `width`) does not tile `data` exactly.
    pub fn run_row_blocks<F>(&self, data: &mut [f32], width: usize, sizes: &[usize], body: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let mut pieces: Vec<(usize, &mut [f32])> = Vec::with_capacity(sizes.len());
        let mut rest = data;
        for (i, &rows) in sizes.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(rows * width);
            pieces.push((i, head));
            rest = tail;
        }
        assert!(rest.is_empty(), "row blocks must tile the output exactly");
        let body = &body;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = pieces
            .into_iter()
            .map(|(i, piece)| Box::new(move || body(i, piece)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        self.run(tasks);
    }
}

/// Which of the two per-thread packing buffers a kernel is asking for.
///
/// GEMM packs both operands: the shared-`B` panel buffer is filled by the
/// calling thread and borrowed immutably by every row-block task, while
/// each task packs its own `A` panels. Keeping the two in separate slots
/// lets the caller hold the `B` buffer across a `WorkerPool::run` while
/// tasks executing on the *same* thread (the caller helps drain the queue)
/// take the `A` slot without conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackBuf {
    /// Per-task `A`-panel buffer (`MR`-row panels).
    OperandA,
    /// Per-call `B`-panel buffer (`NR`-column panels), shared read-only
    /// across all row-block tasks of one GEMM call.
    OperandB,
}

/// Thread-local packing workspace for the blocked GEMM kernels.
///
/// Packing copies operand panels into contiguous buffers once per call;
/// without a reusable workspace every GEMM would allocate (and fault in)
/// fresh panel buffers. The workspace grows monotonically per thread — a
/// buffer is only replaced when a larger one is handed back — so in steady
/// state (the training loop, the preprocessing hop loop) packing performs
/// zero allocations.
///
/// Buffers are *taken out* of the thread-local slot
/// ([`PackWorkspace::take`]) and *given back* ([`PackWorkspace::give`])
/// rather than borrowed in place, so a re-entrant kernel on the same
/// thread (a pool caller helping to drain another caller's GEMM tasks)
/// degrades to a fresh allocation instead of a `RefCell` panic.
#[derive(Debug, Default)]
pub struct PackWorkspace {
    slots: [Vec<f32>; 2],
}

thread_local! {
    static PACK_WORKSPACE: RefCell<PackWorkspace> = RefCell::new(PackWorkspace::default());
}

impl PackWorkspace {
    fn index(which: PackBuf) -> usize {
        match which {
            PackBuf::OperandA => 0,
            PackBuf::OperandB => 1,
        }
    }

    /// Takes this thread's buffer for `which`, resized to exactly `len`
    /// elements (contents unspecified — packing overwrites every element,
    /// zero-padding panel tails). Only newly grown capacity is
    /// initialized; the retained region keeps its stale contents, so a
    /// steady-state take is free of memory traffic.
    pub fn take(which: PackBuf, len: usize) -> Vec<f32> {
        let mut buf = PACK_WORKSPACE
            .with(|ws| std::mem::take(&mut ws.borrow_mut().slots[Self::index(which)]));
        if buf.len() < len {
            buf.resize(len, 0.0);
        } else {
            buf.truncate(len);
        }
        buf
    }

    /// Returns a buffer taken with [`PackWorkspace::take`]. The slot keeps
    /// whichever buffer has the larger capacity (monotonic growth).
    pub fn give(which: PackBuf, buf: Vec<f32>) {
        PACK_WORKSPACE.with(|ws| {
            let slot = &mut ws.borrow_mut().slots[Self::index(which)];
            if buf.capacity() > slot.capacity() {
                *slot = buf;
            }
        });
    }

    /// Current capacities (in `f32` elements) of this thread's
    /// `(OperandA, OperandB)` buffers — observability for tests and the
    /// bench harness.
    pub fn thread_capacity() -> (usize, usize) {
        PACK_WORKSPACE.with(|ws| {
            let ws = ws.borrow();
            (ws.slots[0].capacity(), ws.slots[1].capacity())
        })
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.queue.shutdown.store(true, Ordering::Release);
        self.queue.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Serializes tests (across this crate's modules) that mutate the global
/// parallel threshold, so concurrent test threads don't observe each
/// other's overrides.
#[cfg(test)]
pub(crate) static TEST_THRESHOLD_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = AtomicU32::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn tasks_borrow_disjoint_stack_data() {
        let pool = WorkerPool::new(3);
        let mut data = [0u32; 30];
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
            .chunks_mut(10)
            .enumerate()
            .map(|(i, chunk)| {
                Box::new(move || {
                    for v in chunk {
                        *v = i as u32 + 1;
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(tasks);
        assert!(data[..10].iter().all(|&v| v == 1));
        assert!(data[10..20].iter().all(|&v| v == 2));
        assert!(data[20..].iter().all(|&v| v == 3));
    }

    #[test]
    fn width_one_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.num_threads(), 1);
        let mut hits = 0;
        pool.run(vec![Box::new(|| hits += 1) as Box<dyn FnOnce() + Send + '_>]);
        assert_eq!(hits, 1);
    }

    #[test]
    fn empty_task_list_is_a_noop() {
        WorkerPool::new(2).run(Vec::new());
    }

    #[test]
    fn repeated_runs_reuse_the_same_workers() {
        let pool = WorkerPool::new(4);
        for round in 0..200 {
            let counter = AtomicU32::new(0);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(tasks);
            assert_eq!(counter.load(Ordering::Relaxed), 4, "round {round}");
        }
    }

    #[test]
    fn concurrent_callers_share_one_pool() {
        let pool = Arc::new(WorkerPool::new(4));
        let total = Arc::new(AtomicU32::new(0));
        let callers: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
                            .map(|_| {
                                let total = Arc::clone(&total);
                                Box::new(move || {
                                    total.fetch_add(1, Ordering::Relaxed);
                                }) as Box<dyn FnOnce() + Send + '_>
                            })
                            .collect();
                        pool.run(tasks);
                    }
                })
            })
            .collect();
        for c in callers {
            c.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 3);
    }

    #[test]
    fn dropping_a_pool_terminates_workers() {
        let pool = WorkerPool::new(4);
        let counter = AtomicU32::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(tasks);
        drop(pool); // must join cleanly, not hang
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn panicking_task_propagates_after_batch_completes_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let completed = AtomicU32::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|i| {
                let completed = &completed;
                Box::new(move || {
                    if i == 3 {
                        panic!("kernel body failed");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(tasks)));
        assert!(result.is_err(), "panic must propagate to the caller");
        // Every non-panicking task still ran — run() waited for the whole
        // batch before unwinding (the soundness requirement).
        assert_eq!(completed.load(Ordering::Relaxed), 7);
        // Workers survived the panic: the pool still executes new batches.
        let after = AtomicU32::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    after.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(after.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn run_row_blocks_tiles_exactly() {
        let pool = WorkerPool::new(2);
        let mut data = vec![0.0f32; 12];
        pool.run_row_blocks(&mut data, 2, &[1, 3, 2], |i, piece| {
            for v in piece {
                *v = i as f32 + 1.0;
            }
        });
        assert_eq!(&data[..2], &[1.0, 1.0]);
        assert_eq!(&data[2..8], &[2.0; 6]);
        assert_eq!(&data[8..], &[3.0; 4]);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let p1 = pool();
        let p2 = pool();
        assert!(std::ptr::eq(p1, p2));
        assert!(p1.num_threads() >= 1);
    }

    #[test]
    fn per_pool_threads_for_uses_that_pools_width() {
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        let prev = parallel_threshold();
        set_parallel_threshold(10);
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads_for(10), 1);
        assert_eq!(pool.threads_for(11), 3);
        set_parallel_threshold(prev);
    }

    #[test]
    fn pack_workspace_grows_monotonically_and_is_reused() {
        let buf = PackWorkspace::take(PackBuf::OperandA, 128);
        assert_eq!(buf.len(), 128);
        PackWorkspace::give(PackBuf::OperandA, buf);
        let (a_cap, _) = PackWorkspace::thread_capacity();
        assert!(a_cap >= 128);
        // A smaller request reuses the grown buffer without shrinking it.
        let buf = PackWorkspace::take(PackBuf::OperandA, 16);
        assert_eq!(buf.len(), 16);
        assert!(buf.capacity() >= 128);
        PackWorkspace::give(PackBuf::OperandA, buf);
        // Giving back a smaller buffer does not shrink the slot.
        PackWorkspace::give(PackBuf::OperandA, Vec::with_capacity(8));
        let (a_cap_after, _) = PackWorkspace::thread_capacity();
        assert!(a_cap_after >= a_cap);
    }

    #[test]
    fn pack_workspace_slots_are_independent() {
        let a = PackWorkspace::take(PackBuf::OperandA, 32);
        // Taking B while A is out must not conflict (the GEMM caller holds
        // B across pool.run while tasks on the same thread take A).
        let b = PackWorkspace::take(PackBuf::OperandB, 64);
        assert_eq!(a.len(), 32);
        assert_eq!(b.len(), 64);
        // Re-entrant take of an already-taken slot degrades to a fresh
        // buffer rather than panicking.
        let a2 = PackWorkspace::take(PackBuf::OperandA, 8);
        assert_eq!(a2.len(), 8);
        PackWorkspace::give(PackBuf::OperandA, a);
        PackWorkspace::give(PackBuf::OperandA, a2);
        PackWorkspace::give(PackBuf::OperandB, b);
    }

    #[test]
    fn threshold_gates_threads_for() {
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        let prev = parallel_threshold();
        set_parallel_threshold(100);
        assert_eq!(threads_for(100), 1);
        assert_eq!(threads_for(101), pool().num_threads());
        set_parallel_threshold(prev);
    }
}
