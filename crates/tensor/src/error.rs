use std::error::Error;
use std::fmt;

/// Errors produced by fallible tensor operations.
///
/// Hot-path kernels (GEMM, gathers) use documented panics instead so the
/// inner loops stay branch-free; `TensorError` covers construction and I/O,
/// where inputs come from outside the crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// A constructor was given a buffer whose length does not match the
    /// requested shape.
    ShapeMismatch {
        /// Rows requested by the caller.
        rows: usize,
        /// Columns requested by the caller.
        cols: usize,
        /// Length of the buffer actually supplied.
        len: usize,
    },
    /// A reshape was requested that changes the total number of elements.
    BadReshape {
        /// Element count of the source matrix.
        from: usize,
        /// Element count implied by the requested shape.
        to: usize,
    },
    /// A serialized matrix had a corrupt or unsupported header.
    BadHeader(String),
    /// An underlying I/O operation failed (message of the source error).
    Io(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { rows, cols, len } => write!(
                f,
                "buffer of length {len} cannot form a {rows}x{cols} matrix ({} elements)",
                rows * cols
            ),
            TensorError::BadReshape { from, to } => {
                write!(f, "cannot reshape {from} elements into {to} elements")
            }
            TensorError::BadHeader(msg) => write!(f, "corrupt matrix header: {msg}"),
            TensorError::Io(msg) => write!(f, "i/o failure: {msg}"),
        }
    }
}

impl Error for TensorError {}

impl From<std::io::Error> for TensorError {
    fn from(err: std::io::Error) -> Self {
        TensorError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            rows: 2,
            cols: 3,
            len: 5,
        };
        let msg = err.to_string();
        assert!(msg.contains('5') && msg.contains("2x3"), "got: {msg}");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let err: TensorError = io.into();
        assert!(matches!(err, TensorError::Io(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
