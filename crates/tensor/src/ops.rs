//! Element-wise, row-wise, and batch-assembly operations on [`Matrix`].
//!
//! The gather/scatter family here is the computational heart of the paper's
//! data-loading study: `gather_rows` (one fused index operation) versus a
//! per-row copy loop is exactly the "efficient batch assembly" optimization
//! of Section 4.1, and `ppgnn-bench` measures both variants.

use crate::Matrix;

impl Matrix {
    /// Adds `other` element-wise into `self`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
    }

    /// Subtracts `other` element-wise from `self`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a -= b;
        }
    }

    /// Multiplies `other` element-wise into `self` (Hadamard product).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul_assign_elem(&mut self, other: &Matrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "mul_assign_elem shape mismatch"
        );
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a *= b;
        }
    }

    /// `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in self.as_mut_slice() {
            *a *= alpha;
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        for a in out.as_mut_slice() {
            *a = f(*a);
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in self.as_mut_slice() {
            *a = f(*a);
        }
    }

    /// Fills the matrix with zeros without reallocating.
    pub fn fill_zero(&mut self) {
        self.as_mut_slice().fill(0.0);
    }

    /// Overwrites `self` with the contents of `other` without reallocating.
    ///
    /// The streaming preprocessor uses this to reset its ping-pong
    /// propagation buffer to the raw features between operator passes.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn copy_from(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "copy_from shape mismatch");
        self.as_mut_slice().copy_from_slice(other.as_slice());
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let (r, c) = self.shape();
        let mut out = Matrix::zeros(c, r);
        for i in 0..r {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.as_mut_slice()[j * r + i] = v;
            }
        }
        out
    }

    /// Horizontally concatenates matrices with equal row counts.
    ///
    /// Used by SIGN to merge per-hop branches: `concat([X_0 W_0, …, X_R W_R])`.
    ///
    /// # Panics
    ///
    /// Panics if `mats` is empty or row counts differ.
    pub fn hstack(mats: &[&Matrix]) -> Matrix {
        let mut out = Matrix::default();
        Self::hstack_into(mats, &mut out);
        out
    }

    /// Horizontally concatenates into a reusable output slot — the
    /// allocation-free form of [`Matrix::hstack`] the `forward_into`
    /// model stacks route SIGN's branch merge through. Resizes `out` to
    /// `rows × Σ cols` (reusing its buffer when capacity suffices).
    ///
    /// # Panics
    ///
    /// Panics if `mats` is empty or row counts differ.
    pub fn hstack_into(mats: &[&Matrix], out: &mut Matrix) {
        assert!(!mats.is_empty(), "hstack of zero matrices");
        let rows = mats[0].rows();
        let cols: usize = mats.iter().map(|m| m.cols()).sum();
        for m in mats {
            assert_eq!(m.rows(), rows, "hstack row-count mismatch");
        }
        out.resize_to(rows, cols);
        for r in 0..rows {
            let dst = out.row_mut(r);
            let mut off = 0;
            for m in mats {
                dst[off..off + m.cols()].copy_from_slice(m.row(r));
                off += m.cols();
            }
        }
    }

    /// Vertically concatenates matrices with equal column counts.
    ///
    /// # Panics
    ///
    /// Panics if `mats` is empty or column counts differ.
    pub fn vstack(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "vstack of zero matrices");
        let cols = mats[0].cols();
        let rows: usize = mats.iter().map(|m| m.rows()).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols(), cols, "vstack column-count mismatch");
            data.extend_from_slice(m.as_slice());
        }
        Matrix::from_vec(rows, cols, data).expect("vstack shape is consistent by construction")
    }

    /// Splits the matrix horizontally into equal-width pieces.
    ///
    /// Inverse of [`Matrix::hstack`] for equal widths; used to route gradients
    /// back to SIGN's per-hop branches.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is not divisible by `parts`.
    pub fn hsplit(&self, parts: usize) -> Vec<Matrix> {
        assert!(
            parts > 0 && self.cols().is_multiple_of(parts),
            "cannot hsplit {} cols into {parts}",
            self.cols()
        );
        let w = self.cols() / parts;
        let mut out = vec![Matrix::zeros(self.rows(), w); parts];
        for r in 0..self.rows() {
            let src = self.row(r);
            for (p, piece) in out.iter_mut().enumerate() {
                piece.row_mut(r).copy_from_slice(&src[p * w..(p + 1) * w]);
            }
        }
        out
    }

    /// Gathers `indices` rows into a new matrix with **one fused pass**
    /// (the efficient batch-assembly primitive of Section 4.1).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols());
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// Gathers `indices` rows into a pre-allocated buffer (the pinned staging
    /// tensor of the optimized loader), avoiding per-batch allocation.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `indices.len() x self.cols()` or an index is out
    /// of bounds.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (indices.len(), self.cols()),
            "gather output buffer has wrong shape"
        );
        let cols = self.cols();
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for (k, &i) in indices.iter().enumerate() {
            assert!(
                i < self.rows(),
                "gather index {i} out of bounds ({} rows)",
                self.rows()
            );
            dst[k * cols..(k + 1) * cols].copy_from_slice(&src[i * cols..(i + 1) * cols]);
        }
    }

    /// Gathers `indices` rows into a **column block** of `out` starting at
    /// `col_offset` (`out[k, col_offset..col_offset + self.cols()] =
    /// self[indices[k], :]`).
    ///
    /// This is the fused gather-and-concatenate primitive of the streaming
    /// preprocessor: with `K` operators, operator `k`'s hop rows land at
    /// column offset `k·F` of the output, so the SIGN-style feature-wise
    /// concatenation never materializes intermediate per-operator matrices.
    ///
    /// # Panics
    ///
    /// Panics if `out` has fewer than `indices.len()` rows, the column block
    /// does not fit, or an index is out of bounds.
    pub fn gather_rows_into_offset(&self, indices: &[usize], out: &mut Matrix, col_offset: usize) {
        assert_eq!(
            out.rows(),
            indices.len(),
            "gather output row count disagrees with index count"
        );
        let cols = self.cols();
        assert!(
            col_offset + cols <= out.cols(),
            "column block {col_offset}..{} exceeds output width {}",
            col_offset + cols,
            out.cols()
        );
        let out_cols = out.cols();
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for (k, &i) in indices.iter().enumerate() {
            assert!(
                i < self.rows(),
                "gather index {i} out of bounds ({} rows)",
                self.rows()
            );
            dst[k * out_cols + col_offset..k * out_cols + col_offset + cols]
                .copy_from_slice(&src[i * cols..(i + 1) * cols]);
        }
    }

    /// Adds each row of `src` into row `indices[k]` of `self`
    /// (`self[indices[k], :] += src[k, :]`).
    ///
    /// This is the backward pass of a gather, used by embedding-style updates
    /// and by the block aggregation in `ppgnn-sampler`.
    ///
    /// # Panics
    ///
    /// Panics on column mismatch or out-of-bounds indices.
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Matrix) {
        assert_eq!(self.cols(), src.cols(), "scatter_add column mismatch");
        assert_eq!(
            indices.len(),
            src.rows(),
            "scatter_add index-count mismatch"
        );
        let cols = self.cols();
        for (k, &i) in indices.iter().enumerate() {
            assert!(i < self.rows(), "scatter index {i} out of bounds");
            let row = src.row(k);
            let dst = &mut self.as_mut_slice()[i * cols..(i + 1) * cols];
            for (d, s) in dst.iter_mut().zip(row) {
                *d += s;
            }
        }
    }

    /// Row-wise softmax (stable: shifts by the row max).
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        out
    }

    /// Index of the maximum element in each row (ties resolve to the first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.iter_rows()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Sum over all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean over all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column-wise sum, producing a `1 x cols` matrix (bias gradients).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        for row in self.iter_rows() {
            for (o, v) in out.as_mut_slice().iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute element-wise difference against `other`
    /// (`assert!(a.max_abs_diff(&b) < tol)` in tests).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// L2-normalizes every row in place (rows with zero norm are left as-is).
    pub fn l2_normalize_rows(&mut self) {
        let cols = self.cols();
        for r in 0..self.rows() {
            let row = &mut self.as_mut_slice()[r * cols..(r + 1) * cols];
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 0.0 {
                let inv = 1.0 / norm;
                for v in row {
                    *v *= inv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> Matrix {
        Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32)
    }

    #[test]
    fn elementwise_ops() {
        let mut a = m23();
        let b = m23();
        a.add_assign(&b);
        assert_eq!(a.get(1, 2), 10.0);
        a.sub_assign(&b);
        assert_eq!(a, m23());
        a.axpy(2.0, &b);
        assert_eq!(a.get(0, 1), 3.0);
        a.scale(0.5);
        assert_eq!(a.get(0, 1), 1.5);
        let mut c = m23();
        c.mul_assign_elem(&b);
        assert_eq!(c.get(1, 1), 16.0);
    }

    #[test]
    fn transpose_involution() {
        let a = m23();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), a.get(1, 2));
    }

    #[test]
    fn hstack_hsplit_round_trip() {
        let a = m23();
        let b = a.map(|v| v + 100.0);
        let cat = Matrix::hstack(&[&a, &b]);
        assert_eq!(cat.shape(), (2, 6));
        let parts = cat.hsplit(2);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn vstack_stacks_rows() {
        let a = m23();
        let s = Matrix::vstack(&[&a, &a]);
        assert_eq!(s.shape(), (4, 3));
        assert_eq!(s.row(2), a.row(0));
    }

    #[test]
    fn gather_then_scatter_is_identity_on_distinct_rows() {
        let a = Matrix::from_fn(5, 2, |r, _| r as f32);
        let idx = [4usize, 0, 2];
        let g = a.gather_rows(&idx);
        assert_eq!(g.row(0), &[4.0, 4.0]);
        let mut z = Matrix::zeros(5, 2);
        z.scatter_add_rows(&idx, &g);
        for &i in &idx {
            assert_eq!(z.row(i), a.row(i));
        }
        assert_eq!(z.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let src = m23();
        let mut dst = Matrix::full(2, 3, -1.0);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn gather_rows_into_offset_fills_column_blocks() {
        let a = Matrix::from_fn(4, 2, |r, c| (r * 10 + c) as f32);
        let b = a.map(|v| v + 100.0);
        let mut out = Matrix::zeros(3, 4);
        let idx = [3usize, 0, 2];
        a.gather_rows_into_offset(&idx, &mut out, 0);
        b.gather_rows_into_offset(&idx, &mut out, 2);
        // Equivalent to hstack(gather(a), gather(b)).
        let expected = Matrix::hstack(&[&a.gather_rows(&idx), &b.gather_rows(&idx)]);
        assert_eq!(out, expected);
    }

    #[test]
    #[should_panic(expected = "column block")]
    fn gather_rows_into_offset_rejects_overflowing_block() {
        let a = Matrix::zeros(2, 3);
        let mut out = Matrix::zeros(1, 4);
        a.gather_rows_into_offset(&[0], &mut out, 2);
    }

    #[test]
    fn gather_into_reuses_buffer() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        let mut buf = Matrix::zeros(2, 3);
        a.gather_rows_into(&[3, 1], &mut buf);
        assert_eq!(buf.row(0), a.row(3));
        assert_eq!(buf.row(1), a.row(1));
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let src = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let mut dst = Matrix::zeros(3, 2);
        dst.scatter_add_rows(&[1, 1], &src);
        assert_eq!(dst.row(1), &[3.0, 3.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1001.0, 999.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // numerically stable on large logits
        assert!(s.row(1)[1] > s.row(1)[0] && s.row(1)[0] > s.row(1)[2]);
    }

    #[test]
    fn argmax_rows_first_tie_wins() {
        let a = Matrix::from_rows(&[&[0.0, 5.0, 5.0], &[3.0, 1.0, 2.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reductions() {
        let a = m23(); // 0..=5
        assert_eq!(a.sum(), 15.0);
        assert!((a.mean() - 2.5).abs() < 1e-6);
        let cs = a.sum_rows();
        assert_eq!(cs.as_slice(), &[3.0, 5.0, 7.0]);
        assert!((Matrix::eye(2).frobenius_norm() - 2.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_handles_zero_rows() {
        let mut a = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        a.l2_normalize_rows();
        assert!((a.row(0)[0] - 0.6).abs() < 1e-6);
        assert_eq!(a.row(1), &[0.0, 0.0]);
    }
}
