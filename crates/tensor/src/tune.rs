//! One-shot `{kernel, KC, NC}` autotuner for the packed GEMM backends.
//!
//! Tuning is **opt-in**: it activates only when `PPGNN_TUNE_CACHE` names
//! a cache file. On the first GEMM of the process [`cached_profile`]
//! loads that file — or, when it is missing or stale, runs a short
//! measured sweep over every supported [`KernelKind`] × a few KC × NC
//! candidates ([`run_sweep`]) and writes the winner back. The profile
//! then feeds [`crate::block::kc`]/[`crate::block::nc`]/
//! [`crate::block::kernel`] *below* the explicit overrides, giving the
//! precedence chain:
//!
//! `set_*` > `PPGNN_GEMM_BLOCK`/`PPGNN_GEMM_NC`/`PPGNN_FORCE_KERNEL` >
//! tuned profile > compiled defaults.
//!
//! Without `PPGNN_TUNE_CACHE` the module costs one atomic load per
//! config read and nothing else — tests and short-lived tools never pay
//! for a sweep. The sweep itself drives the packed kernels through the
//! public entry points with every knob pinned, so it can never recurse
//! into profile resolution, and it restores the knobs to "unset" before
//! returning.
//!
//! The cache file is a single-line JSON object, e.g.
//! `{"kernel":"avx512","kc":256,"nc":512,"gflops":21.40}` — stable
//! enough that CI uploads it as a build artifact and
//! `BENCH_gemm.json` embeds the same fields under `"tuned"`.

use std::sync::OnceLock;
use std::time::Instant;

use crate::gemm::{block, compiled_kernels, matmul_into, KernelKind};
use crate::Matrix;

/// A tuned tiling profile: the winning backend and blocking pair, plus
/// the throughput it measured (context for humans and the bench
/// artifact; not consulted by dispatch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Winning micro-kernel backend.
    pub kernel: KernelKind,
    /// Winning K-panel depth.
    pub kc: usize,
    /// Winning NC column block.
    pub nc: usize,
    /// Best measured throughput of the sweep shape, in GFLOP/s.
    pub gflops: f64,
}

static PROFILE: OnceLock<Option<Profile>> = OnceLock::new();

/// The process-wide tuned profile, or `None` when tuning is inactive
/// (`PPGNN_TUNE_CACHE` unset).
///
/// First call with the env var set loads the cache file, or sweeps and
/// writes it; later calls are a single `OnceLock` read. A cache entry
/// naming a kernel this CPU cannot run (a file copied from another
/// machine) is discarded and re-tuned.
pub fn cached_profile() -> Option<&'static Profile> {
    PROFILE
        .get_or_init(|| {
            let path = crate::knobs::string_value(crate::knobs::TUNE_CACHE)?;
            if let Some(p) = std::fs::read_to_string(&path)
                .ok()
                .and_then(|s| parse_profile(&s))
            {
                if p.kernel.is_supported() {
                    return Some(p);
                }
            }
            let p = run_sweep();
            // Best-effort: an unwritable cache path degrades to
            // tune-per-process, not an error.
            let _ = std::fs::write(&path, format_profile(&p));
            Some(p)
        })
        .as_ref()
}

/// The candidate grid: every supported backend × KC ∈ {128, 256, 512} ×
/// NC ∈ {256, 512, 2048}.
pub fn candidates() -> Vec<(KernelKind, usize, usize)> {
    let mut out = Vec::new();
    for &kind in compiled_kernels() {
        if !kind.is_supported() {
            continue;
        }
        for kc in [128usize, 256, 512] {
            for nc in [256usize, 512, 2048] {
                out.push((kind, kc, nc));
            }
        }
    }
    out
}

/// Measures every candidate on a mid-sized training-shaped GEMM
/// (`384×256·256×384`, serial) and returns the fastest. Takes roughly
/// half a second; runs once per process (and once per machine when the
/// cache file persists).
///
/// Pins all three knobs per candidate and restores them to "unset"
/// before returning, so it is safe to call from benches that sweep
/// configurations themselves.
pub fn run_sweep() -> Profile {
    let (m, k, n) = (384usize, 256, 384);
    let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17) % 61) as f32 * 0.021 - 0.6);
    let b = Matrix::from_fn(k, n, |r, c| ((r * 13 + c * 29) % 53) as f32 * 0.017 - 0.4);
    let mut c = Matrix::zeros(m, n);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let mut best: Option<Profile> = None;
    for (kernel, kc, nc) in candidates() {
        block::set_kernel(Some(kernel));
        block::set_kc(kc);
        block::set_nc(nc);
        matmul_into(&a, &b, &mut c); // warm the packing workspace + icache
        let mut best_s = f64::INFINITY;
        for _ in 0..2 {
            let t0 = Instant::now();
            matmul_into(&a, &b, &mut c);
            best_s = best_s.min(t0.elapsed().as_secs_f64());
        }
        let gflops = flops / best_s / 1e9;
        if best.is_none_or(|p| gflops > p.gflops) {
            best = Some(Profile {
                kernel,
                kc,
                nc,
                gflops,
            });
        }
    }
    block::set_kernel(None);
    block::set_kc(0);
    block::set_nc(0);
    best.expect("the portable kernel is always a candidate")
}

/// Serializes a profile as the single-line JSON the cache file and
/// `BENCH_gemm.json` use.
pub fn format_profile(p: &Profile) -> String {
    format!(
        "{{\"kernel\":\"{}\",\"kc\":{},\"nc\":{},\"gflops\":{:.2}}}\n",
        p.kernel.name(),
        p.kc,
        p.nc,
        p.gflops
    )
}

/// Parses [`format_profile`] output (tolerant of whitespace and field
/// order; returns `None` on any missing or malformed field).
pub fn parse_profile(s: &str) -> Option<Profile> {
    let kernel = KernelKind::parse(&extract_str(s, "kernel")?)?;
    let kc = extract_num(s, "kc")? as usize;
    let nc = extract_num(s, "nc")? as usize;
    let gflops = extract_num(s, "gflops")?;
    if kc == 0 || nc == 0 {
        return None;
    }
    Some(Profile {
        kernel,
        kc,
        nc,
        gflops,
    })
}

/// Pulls the string value of `"key":"value"` out of a flat JSON object.
fn extract_str(s: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let rest = &s[s.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Pulls the numeric value of `"key":123.4` out of a flat JSON object.
fn extract_num(s: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let rest = &s[s.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_round_trips_through_the_cache_format() {
        let p = Profile {
            kernel: KernelKind::Portable,
            kc: 192,
            nc: 768,
            gflops: 12.5,
        };
        let s = format_profile(&p);
        let q = parse_profile(&s).expect("own output parses");
        assert_eq!(q.kernel, p.kernel);
        assert_eq!((q.kc, q.nc), (p.kc, p.nc));
        assert!((q.gflops - p.gflops).abs() < 1e-9);
    }

    #[test]
    fn malformed_profiles_are_rejected() {
        assert!(parse_profile("").is_none());
        assert!(parse_profile("{\"kernel\":\"neon\",\"kc\":1,\"nc\":1}").is_none());
        assert!(parse_profile("{\"kernel\":\"avx2\",\"kc\":0,\"nc\":4}").is_none());
        assert!(parse_profile("{\"kc\":256,\"nc\":512}").is_none());
    }

    #[test]
    fn candidate_grid_always_contains_the_portable_kernel() {
        assert!(candidates()
            .iter()
            .any(|&(k, _, _)| k == KernelKind::Portable));
    }
}
