//! Seeded random initializers for weights and features.
//!
//! Every generator takes an explicit [`rand::Rng`] so experiments are
//! reproducible end to end from a single seed.
//!
//! ```
//! use ppgnn_tensor::init;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let w = init::xavier_uniform(4, 8, &mut rng);
//! assert_eq!(w.shape(), (4, 8));
//! ```

use rand::Rng;

use crate::Matrix;

/// Uniform values in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
}

/// Standard-normal values via the Box–Muller transform (avoids a dependency
/// on `rand_distr`).
pub fn standard_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| sample_normal(rng))
}

/// Normal values with the given `mean` and `std`.
pub fn normal(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| mean + std * sample_normal(rng))
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Standard for `tanh`/linear layers.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, -a, a, rng)
}

/// Kaiming/He normal initialization: `N(0, sqrt(2 / fan_in))`. Standard for
/// ReLU networks (the SIGN/HOGA MLP heads).
pub fn he_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    normal(fan_in, fan_out, 0.0, std, rng)
}

fn sample_normal(rng: &mut impl Rng) -> f32 {
    // Box–Muller; clamp u1 away from 0 so ln() stays finite.
    let u1: f32 = rng.random_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.random();
    (-2.0f32 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seeded_init_is_reproducible() {
        let a = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(42));
        let b = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(43));
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = xavier_uniform(10, 20, &mut rng);
        let a = (6.0_f32 / 30.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= a));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = normal(200, 200, 3.0, 0.5, &mut rng);
        let mean = w.mean();
        assert!((mean - 3.0).abs() < 0.02, "mean was {mean}");
        let var =
            w.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / (w.len() as f32 - 1.0);
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std was {}", var.sqrt());
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(9);
        let w = standard_normal(100, 10, &mut rng);
        assert!(w.as_slice().iter().all(|v| v.is_finite()));
    }
}
