//! Dense `f32` matrix kernels for the `preprop-gnn` stack.
//!
//! This crate is the lowest layer of the workspace: a small, dependency-light
//! dense linear-algebra library providing exactly the operations the
//! pre-propagation GNN training stack needs:
//!
//! * a row-major [`Matrix`] type with shape-checked constructors,
//! * a persistent [`pool`] of worker threads shared by every threaded
//!   kernel in the workspace (sized by `available_parallelism`, overridable
//!   via `PPGNN_NUM_THREADS`), which also hosts the thread-local
//!   [`pool::PackWorkspace`] packing scratch,
//! * packed, cache-blocked [`matmul`]/[`matmul_tn`]/[`matmul_nt`] kernels
//!   (plus `_into` variants writing pre-allocated outputs) built on one
//!   `MR×NR` register-tile micro-kernel with `PPGNN_GEMM_BLOCK`-tunable
//!   K panels ([`block`]); the `tn`/`nt` variants back the hand-written
//!   backward passes in `ppgnn-nn`, and the pre-blocking naive kernels
//!   survive in [`reference`] as the correctness oracle and bench
//!   baseline,
//! * batch-assembly primitives ([`Matrix::gather_rows`],
//!   [`Matrix::gather_rows_into`], [`Matrix::scatter_add_rows`]) that the data
//!   loaders in `ppgnn-core` are built from,
//! * row-wise reductions and transforms (softmax, argmax, normalization),
//! * seeded random initializers ([`init`]) and a binary (de)serialization
//!   format ([`io`]) used by the on-disk feature store.
//!
//! # Example
//!
//! ```
//! use ppgnn_tensor::Matrix;
//!
//! let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Matrix::eye(3);
//! let c = ppgnn_tensor::matmul(&a, &b);
//! assert_eq!(c, a);
//! # Ok::<(), ppgnn_tensor::TensorError>(())
//! ```

#![deny(missing_docs)]

mod error;
mod gemm;
mod matrix;
mod ops;

pub mod cast;
pub mod init;
pub mod io;
pub mod knobs;
pub mod pool;
pub mod tune;

pub use cast::StoreDtype;
pub use error::TensorError;
pub use gemm::{
    block, compiled_kernels, matmul, matmul_batched, matmul_batched_into, matmul_into, matmul_nt,
    matmul_nt_into, matmul_tn, matmul_tn_into, reference, widest_supported_kernel, Avx2Kernel,
    Avx512Kernel, KernelKind, MicroKernel, PortableKernel,
};
pub use matrix::Matrix;
pub use pool::{pool, set_parallel_threshold, WorkerPool};
