//! Binary (de)serialization of matrices.
//!
//! Format (little-endian):
//!
//! ```text
//! magic   4 bytes  b"PPGT"
//! version u32      currently 1
//! rows    u64
//! cols    u64
//! data    rows*cols f32
//! ```
//!
//! This is the on-disk record used by `ppgnn-dataio`'s feature store; the
//! row-major payload means a contiguous row range of the file *is* a chunk of
//! node features, which is what makes chunked sequential reads (Section 4.3)
//! possible.
//!
//! ```
//! use ppgnn_tensor::{io, Matrix};
//!
//! let m = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
//! let mut buf = Vec::new();
//! io::write_matrix(&mut buf, &m)?;
//! let back = io::read_matrix(&mut buf.as_slice())?;
//! assert_eq!(m, back);
//! # Ok::<(), ppgnn_tensor::TensorError>(())
//! ```

use std::io::{Read, Write};

use crate::{Matrix, TensorError};

const MAGIC: &[u8; 4] = b"PPGT";
const VERSION: u32 = 1;

/// Size in bytes of the fixed header preceding the payload.
pub const HEADER_BYTES: usize = 4 + 4 + 8 + 8;

/// Writes `m` to `w` in the `PPGT` binary format.
///
/// A `&mut` reference to any writer can be passed.
///
/// # Errors
///
/// Propagates I/O failures as [`TensorError::Io`].
pub fn write_matrix<W: Write>(mut w: W, m: &Matrix) -> Result<(), TensorError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(m.len() * 4);
    for v in m.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a matrix previously written by [`write_matrix`].
///
/// A `&mut` reference to any reader can be passed.
///
/// # Errors
///
/// Returns [`TensorError::BadHeader`] on a magic/version mismatch or an
/// implausible shape, and [`TensorError::Io`] on short reads.
pub fn read_matrix<R: Read>(mut r: R) -> Result<Matrix, TensorError> {
    let (rows, cols) = read_header(&mut r)?;
    let mut bytes = vec![0u8; rows * cols * 4];
    r.read_exact(&mut bytes)?;
    let data = bytes
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Reads and validates only the header, returning `(rows, cols)`.
///
/// The feature store uses this to learn a file's shape without loading the
/// payload, then seeks directly to row ranges.
///
/// # Errors
///
/// Same failure modes as [`read_matrix`].
pub fn read_header<R: Read>(mut r: R) -> Result<(usize, usize), TensorError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TensorError::BadHeader(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let mut v = [0u8; 4];
    r.read_exact(&mut v)?;
    let version = u32::from_le_bytes(v);
    if version != VERSION {
        return Err(TensorError::BadHeader(format!(
            "unsupported version {version}"
        )));
    }
    let mut dim = [0u8; 8];
    r.read_exact(&mut dim)?;
    let rows = u64::from_le_bytes(dim) as usize;
    r.read_exact(&mut dim)?;
    let cols = u64::from_le_bytes(dim) as usize;
    // Guard against garbage shapes that would trigger enormous allocations.
    const MAX_ELEMS: usize = 1 << 40;
    if rows.saturating_mul(cols) > MAX_ELEMS {
        return Err(TensorError::BadHeader(format!(
            "implausible shape {rows}x{cols}"
        )));
    }
    Ok((rows, cols))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_bits() {
        let m = Matrix::from_fn(4, 3, |r, c| (r as f32).powf(c as f32 + 0.5) - 1.25);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        assert_eq!(buf.len(), HEADER_BYTES + m.len() * 4);
        let back = read_matrix(&mut buf.as_slice()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn empty_matrix_round_trips() {
        let m = Matrix::zeros(0, 7);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        let back = read_matrix(&mut buf.as_slice()).unwrap();
        assert_eq!(back.shape(), (0, 7));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_matrix(&mut buf, &Matrix::eye(2)).unwrap();
        buf[0] = b'X';
        let err = read_matrix(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, TensorError::BadHeader(_)));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        write_matrix(&mut buf, &Matrix::eye(2)).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_matrix(&mut buf.as_slice()),
            Err(TensorError::BadHeader(_))
        ));
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let mut buf = Vec::new();
        write_matrix(&mut buf, &Matrix::eye(4)).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(
            read_matrix(&mut buf.as_slice()),
            Err(TensorError::Io(_))
        ));
    }

    #[test]
    fn header_only_read_reports_shape() {
        let mut buf = Vec::new();
        write_matrix(&mut buf, &Matrix::zeros(5, 9)).unwrap();
        let (r, c) = read_header(&mut buf.as_slice()).unwrap();
        assert_eq!((r, c), (5, 9));
    }
}
