//! Blocked, multi-threaded matrix-multiplication kernels.
//!
//! Three variants cover everything the training stack needs:
//!
//! * [`matmul`] — `C = A · B` (forward passes),
//! * [`matmul_tn`] — `C = Aᵀ · B` (weight gradients: `∂W = Xᵀ · ∂Y`),
//! * [`matmul_nt`] — `C = A · Bᵀ` (input gradients: `∂X = ∂Y · Wᵀ`).
//!
//! All three parallelize over output rows on the shared [`crate::pool`]
//! worker pool once the FLOP count crosses the workspace-wide threshold
//! (tunable via [`crate::pool::set_parallel_threshold`], mostly so tests
//! can force both paths). Dense work is uniform per row, so equal-rows
//! blocking is load-balanced here — unlike SpMM, which needs nnz-balanced
//! blocks.

use crate::pool::{pool, threads_for};
use crate::Matrix;

/// Splits `rows` into at most `parts` near-equal contiguous block sizes.
fn equal_row_blocks(rows: usize, parts: usize) -> Vec<usize> {
    let parts = parts.clamp(1, rows);
    let per = rows.div_ceil(parts);
    let mut sizes = Vec::with_capacity(parts);
    let mut start = 0;
    while start < rows {
        let take = per.min(rows - start);
        sizes.push(take);
        start += take;
    }
    sizes
}

/// Runs `body(first_row, out_chunk)` over disjoint row blocks of `out` on
/// the shared pool when `nthreads > 1`.
fn parallel_over_rows<F>(out: &mut Matrix, nthreads: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let rows = out.rows();
    let cols = out.cols();
    if rows == 0 || cols == 0 {
        return;
    }
    if nthreads <= 1 || rows == 1 {
        body(0, out.as_mut_slice());
        return;
    }
    let sizes = equal_row_blocks(rows, nthreads);
    let mut starts = Vec::with_capacity(sizes.len());
    let mut acc = 0;
    for &s in &sizes {
        starts.push(acc);
        acc += s;
    }
    pool().run_row_blocks(out.as_mut_slice(), cols, &sizes, |block, chunk| {
        body(starts[block], chunk);
    });
}

/// `C = A · B`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut c);
    c
}

/// `C = A · B` into a pre-allocated output (overwrites `c`).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `c` is not `a.rows() x b.cols()`.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul inner-dimension mismatch: {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "matmul output shape mismatch");
    c.fill_zero();
    let flops = m * n * k;
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    parallel_over_rows(c, threads_for(flops), |first_row, chunk| {
        // i-k-j loop: the inner j loop is a contiguous axpy over B's row k,
        // which the compiler auto-vectorizes.
        for (local_i, c_row) in chunk.chunks_exact_mut(n).enumerate() {
            let i = first_row + local_i;
            let a_row = &a_data[i * k..(i + 1) * k];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
    });
}

/// `C = Aᵀ · B` where `A` is `k x m` and `B` is `k x n`.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_tn shared-dimension mismatch: {k} vs {k2}");
    let mut c = Matrix::zeros(m, n);
    let flops = m * n * k;
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    parallel_over_rows(&mut c, threads_for(flops), |first_row, chunk| {
        // For each output row i (a column of A): C[i,:] = Σ_k A[k,i] * B[k,:].
        for (local_i, c_row) in chunk.chunks_exact_mut(n).enumerate() {
            let i = first_row + local_i;
            for kk in 0..k {
                let aki = a_data[kk * m + i];
                if aki == 0.0 {
                    continue;
                }
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aki * bv;
                }
            }
        }
    });
    c
}

/// `C = A · Bᵀ` where `A` is `m x k` and `B` is `n x k`.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "matmul_nt inner-dimension mismatch: {k} vs {k2}");
    let mut c = Matrix::zeros(m, n);
    let flops = m * n * k;
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    parallel_over_rows(&mut c, threads_for(flops), |first_row, chunk| {
        // C[i,j] = dot(A[i,:], B[j,:]) — both operands are contiguous rows.
        for (local_i, c_row) in chunk.chunks_exact_mut(n).enumerate() {
            let i = first_row + local_i;
            let a_row = &a_data[i * k..(i + 1) * k];
            for (j, cv) in c_row.iter_mut().enumerate() {
                let b_row = &b_data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (av, bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                *cv = acc;
            }
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{set_parallel_threshold, DEFAULT_PARALLEL_THRESHOLD, TEST_THRESHOLD_LOCK};

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // tiny deterministic LCG so this module has no test-only deps
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    #[test]
    fn matmul_matches_naive() {
        let a = rand_mat(7, 5, 1);
        let b = rand_mat(5, 9, 2);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_identity() {
        let a = rand_mat(4, 4, 3);
        assert!(matmul(&a, &Matrix::eye(4)).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&Matrix::eye(4), &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let a = rand_mat(6, 4, 4);
        let b = rand_mat(6, 5, 5);
        assert!(matmul_tn(&a, &b).max_abs_diff(&matmul(&a.transpose(), &b)) < 1e-4);
        let c = rand_mat(3, 6, 6);
        assert!(matmul_nt(&c, &b.transpose()).max_abs_diff(&matmul(&c, &b)) < 1e-4);
    }

    #[test]
    fn threaded_path_matches_serial() {
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        let a = rand_mat(33, 17, 7);
        let b = rand_mat(17, 29, 8);
        set_parallel_threshold(usize::MAX);
        let serial = matmul(&a, &b);
        set_parallel_threshold(0);
        let threaded = matmul(&a, &b);
        set_parallel_threshold(DEFAULT_PARALLEL_THRESHOLD);
        assert!(serial.max_abs_diff(&threaded) < 1e-5);
    }

    #[test]
    fn all_three_kernels_agree_on_the_pooled_path() {
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        let a = rand_mat(40, 12, 11);
        let b = rand_mat(12, 23, 12);
        let bt = b.transpose();
        set_parallel_threshold(0);
        let c = matmul(&a, &b);
        let c_tn = matmul_tn(&a.transpose(), &b);
        let c_nt = matmul_nt(&a, &bt);
        set_parallel_threshold(DEFAULT_PARALLEL_THRESHOLD);
        assert!(c.max_abs_diff(&c_tn) < 1e-4);
        assert!(c.max_abs_diff(&c_nt) < 1e-4);
    }

    #[test]
    fn empty_dimensions_are_fine() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        assert_eq!(matmul(&a, &b).shape(), (0, 4));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 4));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner-dimension mismatch")]
    fn mismatched_shapes_panic() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }
}
