//! Packed, cache-blocked matrix-multiplication kernels behind a pluggable
//! micro-kernel backend.
//!
//! Three layout variants cover everything the training stack needs:
//!
//! * [`matmul`] / [`matmul_into`] — `C = A · B` (forward passes),
//! * [`matmul_tn`] / [`matmul_tn_into`] — `C = Aᵀ · B` (weight gradients:
//!   `∂W = Xᵀ · ∂Y`),
//! * [`matmul_nt`] / [`matmul_nt_into`] — `C = A · Bᵀ` (input gradients:
//!   `∂X = ∂Y · Wᵀ`),
//!
//! plus [`matmul_batched`] / [`matmul_batched_into`], which pack many
//! small same-shape products (HOGA's per-head attention multiplies) into
//! a **single** pool submission instead of one under-threshold call per
//! head.
//!
//! # Kernel backends
//!
//! The register-tile inner loop is a [`MicroKernel`] implementation —
//! `MR×NR` accumulator tiles walked down a packed K panel. Three
//! instantiations are compiled in on x86-64:
//!
//! * [`PortableKernel`] — baseline-ISA 8×8 tile, plain multiply-add (two
//!   roundings per step; `mul_add` here would lower to a libm call on
//!   machines without hardware FMA),
//! * [`Avx2Kernel`] — the 8×8 AVX2+FMA tile (one accumulator row = one
//!   `ymm`, `vfmadd231ps` chains),
//! * [`Avx512Kernel`] — an 8×16 AVX-512 tile (one accumulator row = one
//!   `zmm`), twice the B-panel width per A broadcast.
//!
//! Dispatch is resolved **once per process** ([`block::kernel`]): an
//! explicit [`block::set_kernel`] override, else `PPGNN_FORCE_KERNEL`
//! (`portable`/`avx2`/`avx512`), else the [`crate::tune`] profile when
//! `PPGNN_TUNE_CACHE` is active, else the widest kernel the CPU supports.
//! Every entry point snapshots the whole tiling configuration
//! ([`block::tile_config`] → [`block::TileConfig`]) exactly once per
//! call, so a concurrent `set_*` can never desynchronize the packed
//! layout from its consumer.
//!
//! Per-element accumulation order is strictly `k`-sequential regardless
//! of tile shape, row split, or NC column block, so the two hardware-FMA
//! backends produce **bit-identical** results at a fixed KC/NC; the
//! portable kernel differs only in last-bit rounding (two roundings per
//! multiply-add instead of one).
//!
//! # Blocking
//!
//! The K dimension is cut into panels of depth [`block::kc`]
//! (`PPGNN_GEMM_BLOCK` / [`block::set_kc`]); packed panels stay
//! L1-resident under the micro-kernel. The N dimension is additionally
//! cut into [`block::nc`]-column blocks (`PPGNN_GEMM_NC` /
//! [`block::set_nc`]): within one K panel each task sweeps an
//! `NC`-column slice of packed `B` across all of its row tiles before
//! moving right, so wide hidden layers reuse a `KC×NC` B block out of L2
//! instead of streaming the whole packed row of panels per `MR` rows.
//!
//! Per call, the `B` operand is packed **once** into contiguous
//! `NR`-column panels — in transposed layout for the `nt` variant — and
//! shared read-only by every row-block task scheduled on the worker
//! pool; each task packs its own `MR`-row `A` panels (transposed for
//! `tn`). Both packing buffers come from the thread-local
//! [`crate::pool::PackWorkspace`], which grows monotonically — in steady
//! state a GEMM call allocates nothing beyond its output. Panel tails
//! are zero-padded during packing so the micro-kernel never sees a
//! partial tile (the store-back writes only the valid sub-tile).
//!
//! Calls parallelize over `MR`-aligned output row blocks on the shared
//! [`crate::pool`] once the FLOP count crosses the workspace-wide
//! threshold ([`crate::pool::set_parallel_threshold`]). Row splitting
//! never changes per-element accumulation order, so serial and pooled
//! results are bit-identical.
//!
//! The pre-blocking naive kernels are retained verbatim in [`reference`]
//! as the correctness oracle (proptests pin every packed backend to them
//! within tight float tolerance) and as the baseline the
//! `BENCH_gemm.json` artifact measures speedups against.

use crate::pool::{pool, threads_for, PackBuf, PackWorkspace};
use crate::Matrix;
use ppgnn_telemetry::Counter;

/// Telemetry counters bumped at the shared dispatch point of every packed
/// GEMM call (and the batched entry). Recording is a relaxed atomic add
/// gated on `ppgnn_telemetry::enabled()`, so the disabled cost on this
/// hot path is one atomic load — spans are deliberately absent here (and
/// statically forbidden by the `telemetry_span` lint): per-call guards at
/// micro-kernel granularity would dominate small products.
static GEMM_CALLS: Counter = Counter::new("gemm.calls");
static GEMM_MADDS: Counter = Counter::new("gemm.madds");
static GEMM_BATCHED_CALLS: Counter = Counter::new("gemm.batched_calls");
static GEMM_BATCHED_MADDS: Counter = Counter::new("gemm.batched_madds");
static GEMM_DISPATCH_PORTABLE: Counter = Counter::new("gemm.dispatch.portable");
static GEMM_DISPATCH_AVX2: Counter = Counter::new("gemm.dispatch.avx2");
static GEMM_DISPATCH_AVX512: Counter = Counter::new("gemm.dispatch.avx512");

/// The dispatch-choice counter for `kind`.
fn kernel_dispatch_counter(kind: KernelKind) -> &'static Counter {
    match kind {
        KernelKind::Portable => &GEMM_DISPATCH_PORTABLE,
        KernelKind::Avx2 => &GEMM_DISPATCH_AVX2,
        KernelKind::Avx512 => &GEMM_DISPATCH_AVX512,
    }
}

/// Identifies one compiled-in [`MicroKernel`] instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Baseline-ISA 8×8 tile ([`PortableKernel`]); always supported.
    Portable,
    /// AVX2+FMA 8×8 tile ([`Avx2Kernel`]).
    Avx2,
    /// AVX-512 8×16 tile ([`Avx512Kernel`]).
    Avx512,
}

impl KernelKind {
    /// Stable lowercase name, as accepted by `PPGNN_FORCE_KERNEL` and
    /// recorded in the tune cache and `BENCH_gemm.json`.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Portable => "portable",
            KernelKind::Avx2 => "avx2",
            KernelKind::Avx512 => "avx512",
        }
    }

    /// Parses a [`KernelKind::name`] (case-insensitive).
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.to_ascii_lowercase().as_str() {
            "portable" => Some(KernelKind::Portable),
            "avx2" => Some(KernelKind::Avx2),
            "avx512" => Some(KernelKind::Avx512),
            _ => None,
        }
    }

    /// Register-tile rows of this backend.
    pub fn mr(self) -> usize {
        block::MR
    }

    /// Register-tile columns of this backend.
    pub fn nr(self) -> usize {
        match self {
            KernelKind::Portable | KernelKind::Avx2 => block::NR,
            KernelKind::Avx512 => 2 * block::NR,
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn is_supported(self) -> bool {
        match self {
            KernelKind::Portable => true,
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Whether this backend accumulates with single-rounding hardware
    /// FMA. All FMA backends are mutually bit-identical at a fixed
    /// KC/NC; the non-FMA portable kernel rounds twice per step.
    pub fn uses_fma(self) -> bool {
        !matches!(self, KernelKind::Portable)
    }
}

/// Every backend compiled into this build, narrowest first.
pub fn compiled_kernels() -> &'static [KernelKind] {
    #[cfg(target_arch = "x86_64")]
    {
        &[KernelKind::Portable, KernelKind::Avx2, KernelKind::Avx512]
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        &[KernelKind::Portable]
    }
}

/// The widest compiled-in backend the running CPU supports.
pub fn widest_supported_kernel() -> KernelKind {
    *compiled_kernels()
        .iter()
        .rev()
        .find(|k| k.is_supported())
        .expect("the portable kernel is always supported")
}

/// Tiling configuration knobs (K panel depth, NC column block, kernel
/// backend) shared by the dense GEMM driver and the column-tiled SpMM in
/// `ppgnn-graph`.
pub mod block {
    use super::KernelKind;
    use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
    use std::sync::OnceLock;

    /// Rows of one register tile (`A`-panel width), shared by every
    /// backend — row blocks and `A` panels are `MR`-aligned regardless
    /// of the dispatched kernel.
    pub const MR: usize = 8;

    /// Columns of one 8-wide register tile (`B`-panel width of the
    /// portable and AVX2 backends; the AVX-512 backend packs `2·NR`).
    pub const NR: usize = 8;

    /// Default K-panel depth: `KC · NR · 4 B` of packed `B` panel (8 KiB)
    /// plus `KC · MR · 4 B` of packed `A` panel (8 KiB) stay L1-resident
    /// under the micro-kernel.
    pub const DEFAULT_KC: usize = 256;

    /// Default NC column block: a `KC × NC` slice of packed `B`
    /// (512 KiB at the defaults) stays L2-resident while a task sweeps
    /// it across its row tiles. Layers at or below 512 columns see no
    /// blocking at all.
    pub const DEFAULT_NC: usize = 512;

    /// Column-strip width of the tiled SpMM kernel (`8 · NR`): wide
    /// enough that re-walking a row's CSR entries per strip is amortized,
    /// narrow enough that the gathered `X` rows stay hot in L1.
    pub const SPMM_COL_BLOCK: usize = 8 * NR;

    /// Test/bench override for the K-panel depth; `0` = unset.
    static KC_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

    /// `PPGNN_GEMM_BLOCK`, read once on first use.
    static KC_FROM_ENV: OnceLock<Option<usize>> = OnceLock::new();

    /// Test/bench override for the NC column block; `0` = unset.
    static NC_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

    /// `PPGNN_GEMM_NC`, read once on first use.
    static NC_FROM_ENV: OnceLock<Option<usize>> = OnceLock::new();

    /// Test/bench kernel override; `0` = unset, else `KernelKind` + 1.
    static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);

    /// `PPGNN_FORCE_KERNEL`, read once on first use.
    static KERNEL_FROM_ENV: OnceLock<Option<KernelKind>> = OnceLock::new();

    /// The full tiling configuration of one GEMM call, snapshotted
    /// **once** per call ([`tile_config`]) and threaded through packing
    /// and the blocked driver, so concurrent knob writes can never
    /// desynchronize a packed layout from its consumer.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct TileConfig {
        /// The dispatched micro-kernel backend.
        pub kernel: KernelKind,
        /// K-panel depth.
        pub kc: usize,
        /// NC column-block width (rounded up to the kernel's `NR` by the
        /// driver).
        pub nc: usize,
    }

    /// Snapshots the active `{kernel, KC, NC}` once. Every `matmul*`
    /// entry point (and the batched driver, once per batch) goes through
    /// this.
    pub fn tile_config() -> TileConfig {
        TileConfig {
            kernel: kernel(),
            kc: kc(),
            nc: nc(),
        }
    }

    /// The active K-panel depth: the [`set_kc`] override when set, else
    /// `PPGNN_GEMM_BLOCK` (clamped to `1..=65536`, read once), else the
    /// [`crate::tune`] profile when one is active, else [`DEFAULT_KC`].
    pub fn kc() -> usize {
        let v = KC_OVERRIDE.load(Ordering::Relaxed);
        if v != 0 {
            return v;
        }
        KC_FROM_ENV
            .get_or_init(|| crate::knobs::usize_value(crate::knobs::GEMM_BLOCK))
            .or_else(|| crate::tune::cached_profile().map(|p| p.kc))
            .unwrap_or(DEFAULT_KC)
    }

    /// Overrides the K-panel depth (primarily for tests and block-size
    /// sweeps); `0` resets to the environment/tuned/default value. Any
    /// positive depth is correct — the knob trades packing granularity
    /// against cache residency.
    pub fn set_kc(kc: usize) {
        KC_OVERRIDE.store(kc, Ordering::Relaxed);
    }

    /// The active NC column block: the [`set_nc`] override when set,
    /// else `PPGNN_GEMM_NC` (clamped to `1..=1048576`, read once), else
    /// the [`crate::tune`] profile when one is active, else
    /// [`DEFAULT_NC`].
    pub fn nc() -> usize {
        let v = NC_OVERRIDE.load(Ordering::Relaxed);
        if v != 0 {
            return v;
        }
        NC_FROM_ENV
            .get_or_init(|| crate::knobs::usize_value(crate::knobs::GEMM_NC))
            .or_else(|| crate::tune::cached_profile().map(|p| p.nc))
            .unwrap_or(DEFAULT_NC)
    }

    /// Overrides the NC column block; `0` resets to the
    /// environment/tuned/default value. Any positive width is correct.
    pub fn set_nc(nc: usize) {
        NC_OVERRIDE.store(nc, Ordering::Relaxed);
    }

    /// The dispatched micro-kernel backend: the [`set_kernel`] override
    /// when set, else `PPGNN_FORCE_KERNEL` (read once), else the
    /// [`crate::tune`] profile when one is active and still supported,
    /// else the widest backend the CPU supports.
    ///
    /// # Panics
    ///
    /// Panics if `PPGNN_FORCE_KERNEL` names an unknown backend or one
    /// the running CPU cannot execute — a forced kernel is an explicit
    /// contract, so misconfiguration fails loudly instead of silently
    /// falling back.
    pub fn kernel() -> KernelKind {
        let v = KERNEL_OVERRIDE.load(Ordering::Relaxed);
        if v != 0 {
            return match v - 1 {
                0 => KernelKind::Portable,
                1 => KernelKind::Avx2,
                _ => KernelKind::Avx512,
            };
        }
        KERNEL_FROM_ENV
            .get_or_init(|| {
                let raw = crate::knobs::string_value(crate::knobs::FORCE_KERNEL)?;
                let kind = KernelKind::parse(&raw).unwrap_or_else(|| {
                    panic!("PPGNN_FORCE_KERNEL={raw:?}: unknown kernel (portable|avx2|avx512)")
                });
                assert!(
                    kind.is_supported(),
                    "PPGNN_FORCE_KERNEL={} requests a kernel this CPU does not support",
                    kind.name()
                );
                Some(kind)
            })
            .or_else(|| {
                crate::tune::cached_profile()
                    .map(|p| p.kernel)
                    .filter(|k| k.is_supported())
            })
            .unwrap_or_else(super::widest_supported_kernel)
    }

    /// Overrides the dispatched backend (tests, benches, the tuner's
    /// equivalence suites); `None` resets to the environment/tuned/
    /// detected value.
    ///
    /// # Panics
    ///
    /// Panics if the requested backend is not supported on this CPU.
    pub fn set_kernel(kind: Option<KernelKind>) {
        let v = match kind {
            None => 0,
            Some(k) => {
                assert!(
                    k.is_supported(),
                    "cannot force the {} kernel on this CPU",
                    k.name()
                );
                1 + k as u8
            }
        };
        KERNEL_OVERRIDE.store(v, Ordering::Relaxed);
    }
}

/// One register-tile instantiation of the packed inner loop.
///
/// Implementations walk `kcl` steps of an `MR`-wide packed `A` panel
/// against an `NR`-wide packed `B` panel, accumulate an `MR×NR` tile in
/// local arrays (kept in vector registers), and store the valid sub-tile
/// back to `C`. Accumulation is strictly `k`-sequential per element, so
/// every backend with the same rounding behaviour produces bit-identical
/// results under any blocking.
pub trait MicroKernel {
    /// Register-tile rows; `A` panels are packed `MR` rows wide.
    const MR: usize;
    /// Register-tile columns; `B` panels are packed `NR` columns wide.
    const NR: usize;
    /// The dispatch tag selecting this instantiation.
    const KIND: KernelKind;

    /// Accumulates one `MR×NR` tile over a packed K panel into `c`.
    ///
    /// `ap` is `kcl` steps of `MR` packed `A` values, `bp` is `kcl`
    /// steps of `NR` packed `B` values; the first `ivalid` rows ×
    /// `jvalid` columns of the tile are added to `c` (row stride `ldc`).
    ///
    /// # Safety
    ///
    /// The caller must ensure the running CPU supports `Self::KIND`
    /// ([`KernelKind::is_supported`]).
    unsafe fn tile(ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, ivalid: usize, jvalid: usize);
}

/// The shared tile loop every backend instantiates: branch-free
/// contiguous multiply-add chains over the packed panels, then an
/// accumulate-store of the valid sub-tile. `FMA` selects `mul_add`
/// (single rounding; lowers to hardware FMA only under the right target
/// features — see [`PortableKernel`] for why the baseline build must not
/// use it).
#[inline(always)]
fn tile_body<const MR: usize, const NR: usize, const FMA: bool>(
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    ivalid: usize,
    jvalid: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (ar, br) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let a: &[f32; MR] = ar.try_into().expect("A panel step is MR long");
        let b: &[f32; NR] = br.try_into().expect("B panel step is NR long");
        for i in 0..MR {
            for j in 0..NR {
                acc[i][j] = if FMA {
                    a[i].mul_add(b[j], acc[i][j])
                } else {
                    acc[i][j] + a[i] * b[j]
                };
            }
        }
    }
    for (arow, crow) in acc.iter().take(ivalid).zip(c.chunks_mut(ldc)) {
        for (cv, av) in crow[..jvalid].iter_mut().zip(&arow[..jvalid]) {
            *cv += *av;
        }
    }
}

/// Baseline-ISA 8×8 backend (SSE2 on x86-64; whatever the build target
/// guarantees elsewhere). Deliberately spelled `mul + add`: rustc never
/// contracts the pair into an FMA (float semantics stay deterministic),
/// and an explicit `mul_add` without hardware FMA would lower to a libm
/// call per element.
pub struct PortableKernel;

impl MicroKernel for PortableKernel {
    const MR: usize = block::MR;
    const NR: usize = block::NR;
    const KIND: KernelKind = KernelKind::Portable;

    // SAFETY: `unsafe` only by trait signature — `Portable` is supported
    // on every CPU and the body is safe scalar code.
    unsafe fn tile(ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, iv: usize, jv: usize) {
        tile_body::<{ block::MR }, { block::NR }, false>(ap, bp, c, ldc, iv, jv);
    }
}

/// The 8×8 tile compiled with AVX2+FMA enabled: one accumulator row is
/// exactly one `ymm` register and the `mul_add` chain lowers to
/// `vfmadd231ps` at 8-wide FMA throughput.
///
/// # Safety
///
/// The running CPU must support AVX2 and FMA (`target_feature` makes
/// calling this on a lesser CPU undefined behaviour); the body itself
/// is safe code.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tile_avx2(ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, iv: usize, jv: usize) {
    tile_body::<{ block::MR }, { block::NR }, true>(ap, bp, c, ldc, iv, jv);
}

/// AVX2+FMA 8×8 backend — the previously hand-dispatched kernel behind
/// the [`MicroKernel`] trait. FMA rounds once per multiply-add where the
/// portable kernel rounds twice, so results differ from
/// [`PortableKernel`] in the last bits — but dispatch is uniform per
/// process, so every caller on a given machine agrees bitwise.
/// (Implemented — and dispatchable — on x86-64 only.)
pub struct Avx2Kernel;

#[cfg(target_arch = "x86_64")]
impl MicroKernel for Avx2Kernel {
    const MR: usize = block::MR;
    const NR: usize = block::NR;
    const KIND: KernelKind = KernelKind::Avx2;

    // SAFETY: callers uphold the trait contract — this backend is only
    // dispatched when `KernelKind::Avx2.is_supported()` held.
    unsafe fn tile(ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, iv: usize, jv: usize) {
        // SAFETY: forwarded from the dispatcher, which only selects this
        // backend when `KernelKind::Avx2.is_supported()` held.
        unsafe { tile_avx2(ap, bp, c, ldc, iv, jv) }
    }
}

/// The 8×16 tile in explicit AVX-512F intrinsics: one accumulator row is
/// exactly one `zmm` register, each broadcast `A` element feeds a 16-wide
/// FMA, and the partial-tile store-back is a masked load/add/store.
///
/// Hand-written rather than autovectorized like [`tile_avx2`]: at
/// `NR = 16` LLVM vectorizes the generic [`tile_body`] across the *row*
/// dimension, spilling the accumulator block to memory and walking it
/// with `vgatherqps`/`vscatterqps` every k step — several times slower
/// than the portable kernel. The accumulation order (k-sequential
/// `fma(a[i], b[j], acc)` per element, then one add into `C`) matches
/// `tile_body::<_, _, true>` exactly, keeping this backend bit-identical
/// to [`Avx2Kernel`] at a fixed KC/NC.
///
/// # Safety
///
/// The running CPU must support AVX-512F, `ap`/`bp` must be packed as
/// `depth` steps of `MR`/`NR` elements, and `c` must span the addressed
/// `iv × jv` sub-tile at row stride `ldc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn tile_avx512(ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, iv: usize, jv: usize) {
    use core::arch::x86_64::*;
    const MR: usize = block::MR;
    const NR: usize = 2 * block::NR;
    let depth = ap.len() / MR;
    debug_assert_eq!(bp.len() / NR, depth);
    // SAFETY: the packer sizes `ap`/`bp` as `depth` steps of MR/NR
    // elements; `c` spans at least `(iv - 1) * ldc + jv` elements and the
    // masked store touches only the first `jv` lanes of each row.
    unsafe {
        let mut acc = [_mm512_setzero_ps(); MR];
        for p in 0..depth {
            let b = _mm512_loadu_ps(bp.as_ptr().add(p * NR));
            let arow = ap.as_ptr().add(p * MR);
            for (i, accum) in acc.iter_mut().enumerate() {
                let a = _mm512_set1_ps(*arow.add(i));
                *accum = _mm512_fmadd_ps(a, b, *accum);
            }
        }
        let mask: __mmask16 = if jv >= NR {
            !0
        } else {
            (1u16 << jv).wrapping_sub(1)
        };
        for (i, accum) in acc.iter().enumerate().take(iv) {
            let crow = c.as_mut_ptr().add(i * ldc);
            let prev = _mm512_maskz_loadu_ps(mask, crow);
            _mm512_mask_storeu_ps(crow, mask, _mm512_add_ps(prev, *accum));
        }
    }
}

/// AVX-512 8×16 backend: same `MR`, double-width `B` panels. Hardware
/// FMA accumulation in the same per-element order as [`Avx2Kernel`], so
/// the two are bit-identical at a fixed KC/NC. (Implemented — and
/// dispatchable — on x86-64 only.)
pub struct Avx512Kernel;

#[cfg(target_arch = "x86_64")]
impl MicroKernel for Avx512Kernel {
    const MR: usize = block::MR;
    const NR: usize = 2 * block::NR;
    const KIND: KernelKind = KernelKind::Avx512;

    // SAFETY: callers uphold the trait contract — this backend is only
    // dispatched when `KernelKind::Avx512.is_supported()` held.
    unsafe fn tile(ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, iv: usize, jv: usize) {
        // SAFETY: forwarded from the dispatcher, which only selects this
        // backend when `KernelKind::Avx512.is_supported()` held.
        unsafe { tile_avx512(ap, bp, c, ldc, iv, jv) }
    }
}

/// Monomorphizes `$body` over the [`MicroKernel`] implementation named
/// by a [`KernelKind`], binding it to the type alias `$K`.
macro_rules! with_kernel {
    ($kind:expr, $K:ident, $body:expr) => {
        match $kind {
            KernelKind::Portable => {
                type $K = PortableKernel;
                $body
            }
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2 => {
                type $K = Avx2Kernel;
                $body
            }
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx512 => {
                type $K = Avx512Kernel;
                $body
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => unreachable!("SIMD backends are never dispatched off x86-64"),
        }
    };
}

/// Splits `rows` into at most `parts` near-equal contiguous blocks whose
/// sizes are multiples of `mr` (except possibly the last), so row-block
/// boundaries always fall on packing-panel boundaries.
fn mr_row_blocks(rows: usize, parts: usize, mr: usize) -> Vec<usize> {
    let panels = rows.div_ceil(mr);
    let parts = parts.clamp(1, panels.max(1));
    let per = panels.div_ceil(parts);
    let mut sizes = Vec::with_capacity(parts);
    let mut start_panel = 0;
    while start_panel < panels {
        let take = per.min(panels - start_panel);
        let row_end = ((start_panel + take) * mr).min(rows);
        sizes.push(row_end - start_panel * mr);
        start_panel += take;
    }
    sizes
}

/// Packs rows `row0..row0+rows`, K slice `kk0..kk0+kcl` of row-major
/// `a` (`lda = k`) into `mr`-row panels: panel `ip`, element `(kk, ir)`
/// at `ip·kcl·mr + kk·mr + ir`. Panel tails are zero-padded.
#[allow(clippy::too_many_arguments)]
fn pack_a_rows(
    a: &[f32],
    k: usize,
    row0: usize,
    rows: usize,
    kk0: usize,
    kcl: usize,
    mr: usize,
    dst: &mut [f32],
) {
    let mp = rows.div_ceil(mr);
    debug_assert_eq!(dst.len(), mp * kcl * mr);
    for ip in 0..mp {
        let panel = &mut dst[ip * kcl * mr..(ip + 1) * kcl * mr];
        let ivalid = mr.min(rows - ip * mr);
        if ivalid < mr {
            panel.fill(0.0);
        }
        for ir in 0..ivalid {
            let src = &a[(row0 + ip * mr + ir) * k + kk0..][..kcl];
            for (kk, &v) in src.iter().enumerate() {
                panel[kk * mr + ir] = v;
            }
        }
    }
}

/// Packs *columns* `row0..row0+rows` of the `k×m` row-major `a` (i.e.
/// rows of `Aᵀ`), K slice `kk0..kk0+kcl`, into the same `mr`-row panel
/// layout as [`pack_a_rows`]. Each `kk` step copies `mr` **contiguous**
/// values of one `A` row — this is the `matmul_tn` column-stride fix: the
/// kernel reads `A` along its rows during packing instead of striding
/// `k·m` elements apart in the inner loop.
#[allow(clippy::too_many_arguments)]
fn pack_a_cols(
    a: &[f32],
    m: usize,
    row0: usize,
    rows: usize,
    kk0: usize,
    kcl: usize,
    mr: usize,
    dst: &mut [f32],
) {
    let mp = rows.div_ceil(mr);
    debug_assert_eq!(dst.len(), mp * kcl * mr);
    for ip in 0..mp {
        let panel = &mut dst[ip * kcl * mr..(ip + 1) * kcl * mr];
        let ivalid = mr.min(rows - ip * mr);
        if ivalid < mr {
            panel.fill(0.0);
        }
        for kk in 0..kcl {
            let src = &a[(kk0 + kk) * m + row0 + ip * mr..][..ivalid];
            panel[kk * mr..][..ivalid].copy_from_slice(src);
        }
    }
}

/// Packs K slice `kk0..kk0+kcl` of the row-major `k×n` matrix `b` into
/// `nr`-column panels: panel `jp`, element `(kk, jr)` at
/// `jp·kcl·nr + kk·nr + jr`. Panel tails are zero-padded.
fn pack_b_rows(b: &[f32], n: usize, kk0: usize, kcl: usize, nr: usize, dst: &mut [f32]) {
    let np = n.div_ceil(nr);
    debug_assert_eq!(dst.len(), np * kcl * nr);
    for jp in 0..np {
        let panel = &mut dst[jp * kcl * nr..(jp + 1) * kcl * nr];
        let jvalid = nr.min(n - jp * nr);
        if jvalid < nr {
            panel.fill(0.0);
        }
        for kk in 0..kcl {
            let src = &b[(kk0 + kk) * n + jp * nr..][..jvalid];
            panel[kk * nr..][..jvalid].copy_from_slice(src);
        }
    }
}

/// Packs K slice `kk0..kk0+kcl` of `Bᵀ` where `b` is stored row-major
/// `n×k` (the `matmul_nt` operand) into the same `nr`-column panel layout
/// as [`pack_b_rows`]. Reads run contiguously along `b`'s rows.
fn pack_b_cols(b: &[f32], k: usize, n: usize, kk0: usize, kcl: usize, nr: usize, dst: &mut [f32]) {
    let np = n.div_ceil(nr);
    debug_assert_eq!(dst.len(), np * kcl * nr);
    for jp in 0..np {
        let panel = &mut dst[jp * kcl * nr..(jp + 1) * kcl * nr];
        let jvalid = nr.min(n - jp * nr);
        if jvalid < nr {
            panel.fill(0.0);
        }
        for jr in 0..jvalid {
            let src = &b[(jp * nr + jr) * k + kk0..][..kcl];
            for (kk, &v) in src.iter().enumerate() {
                panel[kk * nr + jr] = v;
            }
        }
    }
}

/// Which layout the `A` operand arrives in.
#[derive(Debug, Clone, Copy)]
enum APack {
    /// `a` is row-major `m×k` — pack rows ([`pack_a_rows`]).
    Rows,
    /// `a` is row-major `k×m` (the `tn` operand) — pack columns
    /// ([`pack_a_cols`]).
    Cols,
}

/// Which layout the `B` operand arrives in.
#[derive(Debug, Clone, Copy)]
enum BPack {
    /// `b` is row-major `k×n` — pack rows ([`pack_b_rows`]).
    Rows,
    /// `b` is row-major `n×k` (the `nt` operand) — pack its transpose
    /// ([`pack_b_cols`]).
    Cols,
}

/// The blocked driver shared by every variant and backend.
///
/// `b_packed` holds every K panel of `B` (packed once by the caller at
/// the snapshot's `kc`/`K::NR`); `pack_a(row0, rows, kk0, kcl, dst)`
/// packs one K panel of the task's `A` rows. Output rows are split into
/// `MR`-aligned blocks, one task per block on the shared pool; each task
/// zero-fills its `C` chunk and accumulates tile products K panel by K
/// panel, sweeping `nc`-column slices of packed `B` across all its row
/// tiles before moving right (the L2 block). Per-element accumulation
/// order is independent of both the row split and the column block.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked<K: MicroKernel, PA>(
    m: usize,
    n: usize,
    k: usize,
    kc: usize,
    nc: usize,
    nthreads: usize,
    pack_a: PA,
    b_packed: &[f32],
    c: &mut [f32],
) where
    PA: Fn(usize, usize, usize, usize, &mut [f32]) + Sync,
{
    let (mr, nr) = (K::MR, K::NR);
    let np = n.div_ceil(nr);
    // NC in units of whole B panels, at least one.
    let ncp = (nc.div_ceil(nr)).max(1);
    let body = |first_row: usize, chunk: &mut [f32]| {
        let rows = chunk.len() / n;
        chunk.fill(0.0);
        let mp = rows.div_ceil(mr);
        let mut abuf = PackWorkspace::take(PackBuf::OperandA, kc.min(k) * mp * mr);
        let mut kk0 = 0;
        while kk0 < k {
            let kcl = kc.min(k - kk0);
            let apack = &mut abuf[..kcl * mp * mr];
            pack_a(first_row, rows, kk0, kcl, apack);
            let bbase = kk0 * np * nr;
            let mut jj = 0;
            while jj < np {
                let jj_end = (jj + ncp).min(np);
                for ip in 0..mp {
                    let ap = &apack[ip * kcl * mr..][..kcl * mr];
                    let ivalid = mr.min(rows - ip * mr);
                    for jp in jj..jj_end {
                        let bp = &b_packed[bbase + jp * kcl * nr..][..kcl * nr];
                        let jvalid = nr.min(n - jp * nr);
                        let ct = &mut chunk[(ip * mr) * n + jp * nr..];
                        // SAFETY: the dispatcher only selects `K` after
                        // `K::KIND.is_supported()` held on this CPU.
                        unsafe { K::tile(ap, bp, ct, n, ivalid, jvalid) };
                    }
                }
                jj = jj_end;
            }
            kk0 += kcl;
        }
        PackWorkspace::give(PackBuf::OperandA, abuf);
    };
    if nthreads <= 1 || m <= mr {
        // Serial path: no row split, no per-call block bookkeeping — in
        // steady state the only allocation left in a whole GEMM call is
        // the caller's output matrix.
        body(0, c);
        return;
    }
    let sizes = mr_row_blocks(m, nthreads, mr);
    if sizes.len() <= 1 {
        body(0, c);
        return;
    }
    let mut starts = Vec::with_capacity(sizes.len());
    let mut acc = 0;
    for &s in &sizes {
        starts.push(acc);
        acc += s;
    }
    pool().run_row_blocks(c, n, &sizes, |blk, chunk| {
        body(starts[blk], chunk);
    });
}

/// Packs every K panel of a `k`-deep `B` operand into a workspace buffer
/// using `pack_block(kk0, kcl, dst)` at panel depth `kc` and panel width
/// `nr`, returning the buffer (give it back with [`PackWorkspace::give`]).
fn pack_b_full(
    k: usize,
    n: usize,
    kc: usize,
    nr: usize,
    pack_block: impl Fn(usize, usize, &mut [f32]),
) -> Vec<f32> {
    let np = n.div_ceil(nr);
    let mut bbuf = PackWorkspace::take(PackBuf::OperandB, k * np * nr);
    let mut kk0 = 0;
    while kk0 < k {
        let kcl = kc.min(k - kk0);
        pack_block(kk0, kcl, &mut bbuf[kk0 * np * nr..][..kcl * np * nr]);
        kk0 += kcl;
    }
    bbuf
}

/// Packs `B`, then runs the blocked driver, for one already-monomorphized
/// backend.
#[allow(clippy::too_many_arguments)]
fn gemm_run<K: MicroKernel>(
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    apack: APack,
    bpack: BPack,
    kc: usize,
    nc: usize,
    nthreads: usize,
    c: &mut [f32],
) {
    let bbuf = pack_b_full(k, n, kc, K::NR, |kk0, kcl, dst| match bpack {
        BPack::Rows => pack_b_rows(b, n, kk0, kcl, K::NR, dst),
        BPack::Cols => pack_b_cols(b, k, n, kk0, kcl, K::NR, dst),
    });
    gemm_blocked::<K, _>(
        m,
        n,
        k,
        kc,
        nc,
        nthreads,
        |row0, rows, kk0, kcl, dst| match apack {
            APack::Rows => pack_a_rows(a, k, row0, rows, kk0, kcl, K::MR, dst),
            APack::Cols => pack_a_cols(a, m, row0, rows, kk0, kcl, K::MR, dst),
        },
        &bbuf,
        c,
    );
    PackWorkspace::give(PackBuf::OperandB, bbuf);
}

/// The shared entry body: dispatches the snapshot's backend into the
/// monomorphized driver.
#[allow(clippy::too_many_arguments)]
fn gemm_dispatch(
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    apack: APack,
    bpack: BPack,
    cfg: block::TileConfig,
    nthreads: usize,
    c: &mut [f32],
) {
    GEMM_CALLS.add(1);
    GEMM_MADDS.add((m * n * k) as u64);
    kernel_dispatch_counter(cfg.kernel).add(1);
    with_kernel!(cfg.kernel, K, {
        gemm_run::<K>(a, b, m, n, k, apack, bpack, cfg.kc, cfg.nc, nthreads, c)
    });
}

/// `C = A · B`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut c);
    c
}

/// `C = A · B` into a pre-allocated output (overwrites `c`).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `c` is not `a.rows() x b.cols()`.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul inner-dimension mismatch: {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "matmul output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill_zero();
        return;
    }
    let cfg = block::tile_config();
    gemm_dispatch(
        a.as_slice(),
        b.as_slice(),
        m,
        n,
        k,
        APack::Rows,
        BPack::Rows,
        cfg,
        threads_for(m * n * k),
        c.as_mut_slice(),
    );
}

/// `C = Aᵀ · B` where `A` is `k x m` and `B` is `k x n`.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    matmul_tn_into(a, b, &mut c);
    c
}

/// `C = Aᵀ · B` into a pre-allocated output (overwrites `c`).
///
/// The backward passes in `ppgnn-nn` route their weight gradients through
/// this into reusable scratch matrices, so steady-state training batches
/// allocate nothing for the `∂W = Xᵀ · ∂Y` product.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()` or `c` is not `a.cols() x b.cols()`.
pub fn matmul_tn_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_tn shared-dimension mismatch: {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "matmul_tn output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill_zero();
        return;
    }
    let cfg = block::tile_config();
    gemm_dispatch(
        a.as_slice(),
        b.as_slice(),
        m,
        n,
        k,
        APack::Cols,
        BPack::Rows,
        cfg,
        threads_for(m * n * k),
        c.as_mut_slice(),
    );
}

/// `C = A · Bᵀ` where `A` is `m x k` and `B` is `n x k`.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    matmul_nt_into(a, b, &mut c);
    c
}

/// `C = A · Bᵀ` into a pre-allocated output (overwrites `c`).
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()` or `c` is not `a.rows() x b.rows()`.
pub fn matmul_nt_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "matmul_nt inner-dimension mismatch: {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "matmul_nt output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill_zero();
        return;
    }
    let cfg = block::tile_config();
    gemm_dispatch(
        a.as_slice(),
        b.as_slice(),
        m,
        n,
        k,
        APack::Rows,
        BPack::Cols,
        cfg,
        threads_for(m * n * k),
        c.as_mut_slice(),
    );
}

/// `C[i] = A[i] · B[i]` for a batch of same-shape products.
///
/// See [`matmul_batched_into`]; this variant allocates the outputs.
///
/// # Panics
///
/// Panics if the slices disagree in length or any pair's shapes disagree
/// with the first pair's.
pub fn matmul_batched(a: &[Matrix], b: &[Matrix]) -> Vec<Matrix> {
    let mut c: Vec<Matrix> = a
        .iter()
        .map(|ai| Matrix::zeros(ai.rows(), b.first().map_or(0, |bi| bi.cols())))
        .collect();
    matmul_batched_into(a, b, &mut c);
    c
}

/// `C[i] = A[i] · B[i]` for a batch of same-shape products, as **one**
/// pool submission (overwrites every `c[i]`).
///
/// The per-head multiplies of HOGA's attention are far below the
/// parallel threshold individually, so a loop of [`matmul`] calls runs
/// them serially (and allocates one output per head). This entry point
/// gates on the **batch's** total FLOPs, splits the heads into
/// contiguous groups — one pool task per group, each running the same
/// packed serial kernel per product — and reuses pre-allocated outputs.
/// The tiling snapshot is taken once for the whole batch.
///
/// # Panics
///
/// Panics if the slices disagree in length, any pair's shapes disagree
/// with the first pair's, or any `c[i]` has the wrong shape.
pub fn matmul_batched_into(a: &[Matrix], b: &[Matrix], c: &mut [Matrix]) {
    assert_eq!(a.len(), b.len(), "matmul_batched operand count mismatch");
    assert_eq!(a.len(), c.len(), "matmul_batched output count mismatch");
    let Some(first) = a.first() else { return };
    let (m, k) = first.shape();
    let (k2, n) = b[0].shape();
    assert_eq!(
        k, k2,
        "matmul_batched inner-dimension mismatch: {k} vs {k2}"
    );
    for i in 0..a.len() {
        assert_eq!(a[i].shape(), (m, k), "matmul_batched A[{i}] shape mismatch");
        assert_eq!(b[i].shape(), (k, n), "matmul_batched B[{i}] shape mismatch");
        assert_eq!(c[i].shape(), (m, n), "matmul_batched C[{i}] shape mismatch");
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for ci in c.iter_mut() {
            ci.fill_zero();
        }
        return;
    }
    let cfg = block::tile_config();
    let ntasks = threads_for(a.len() * m * n * k).min(a.len());
    GEMM_BATCHED_CALLS.add(1);
    GEMM_BATCHED_MADDS.add((a.len() * m * n * k) as u64);
    kernel_dispatch_counter(cfg.kernel).add(1);
    with_kernel!(cfg.kernel, K, {
        batched_run::<K>(a, b, c, cfg.kc, cfg.nc, ntasks)
    });
}

/// Runs one contiguous group of batched products per pool task; each
/// product is a serial packed GEMM using the task thread's own packing
/// workspace.
fn batched_run<K: MicroKernel>(
    a: &[Matrix],
    b: &[Matrix],
    c: &mut [Matrix],
    kc: usize,
    nc: usize,
    ntasks: usize,
) {
    let (m, k) = a[0].shape();
    let n = b[0].cols();
    let do_group = |i0: usize, group: &mut [Matrix]| {
        for (d, cm) in group.iter_mut().enumerate() {
            let i = i0 + d;
            gemm_run::<K>(
                a[i].as_slice(),
                b[i].as_slice(),
                m,
                n,
                k,
                APack::Rows,
                BPack::Rows,
                kc,
                nc,
                1,
                cm.as_mut_slice(),
            );
        }
    };
    if ntasks <= 1 {
        do_group(0, c);
        return;
    }
    let per = c.len().div_ceil(ntasks);
    let do_group = &do_group;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = c
        .chunks_mut(per)
        .enumerate()
        .map(|(t, group)| {
            Box::new(move || do_group(t * per, group)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool().run(tasks);
}

/// The pre-blocking naive kernels, retained verbatim as the correctness
/// oracle for the packed implementations and as the bench baseline.
///
/// These are the i-k-j loops the packed kernels replaced: no packing, no
/// register tiling, a per-element `aik == 0.0` branch, and (in
/// [`reference::matmul_tn`]) a `k·m`-stride walk down `A`'s columns. They
/// parallelize over equal output-row blocks on the same shared pool, so
/// baseline measurements see the same thread budget as the packed
/// kernels.
pub mod reference {
    use crate::pool::{pool, threads_for};
    use crate::Matrix;

    /// Splits `rows` into at most `parts` near-equal contiguous blocks.
    fn equal_row_blocks(rows: usize, parts: usize) -> Vec<usize> {
        let parts = parts.clamp(1, rows);
        let per = rows.div_ceil(parts);
        let mut sizes = Vec::with_capacity(parts);
        let mut start = 0;
        while start < rows {
            let take = per.min(rows - start);
            sizes.push(take);
            start += take;
        }
        sizes
    }

    /// Runs `body(first_row, out_chunk)` over disjoint row blocks of
    /// `out` on the shared pool when `nthreads > 1`.
    fn parallel_over_rows<F>(out: &mut Matrix, nthreads: usize, body: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let rows = out.rows();
        let cols = out.cols();
        if rows == 0 || cols == 0 {
            return;
        }
        if nthreads <= 1 || rows == 1 {
            body(0, out.as_mut_slice());
            return;
        }
        let sizes = equal_row_blocks(rows, nthreads);
        let mut starts = Vec::with_capacity(sizes.len());
        let mut acc = 0;
        for &s in &sizes {
            starts.push(acc);
            acc += s;
        }
        pool().run_row_blocks(out.as_mut_slice(), cols, &sizes, |block, chunk| {
            body(starts[block], chunk);
        });
    }

    /// Naive `C = A · B`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        matmul_into(a, b, &mut c);
        c
    }

    /// Naive `C = A · B` into a pre-allocated output (overwrites `c`).
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()` or `c` is not
    /// `a.rows() x b.cols()`.
    pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
        let (m, k) = a.shape();
        let (k2, n) = b.shape();
        assert_eq!(k, k2, "matmul inner-dimension mismatch: {k} vs {k2}");
        assert_eq!(c.shape(), (m, n), "matmul output shape mismatch");
        c.fill_zero();
        let flops = m * n * k;
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        parallel_over_rows(c, threads_for(flops), |first_row, chunk| {
            for (local_i, c_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = first_row + local_i;
                let a_row = &a_data[i * k..(i + 1) * k];
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        });
    }

    /// Naive `C = Aᵀ · B` — strides `m` elements between consecutive `A`
    /// reads (the column-stride pathology the packed kernel removes).
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() != b.rows()`.
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        let (k, m) = a.shape();
        let (k2, n) = b.shape();
        assert_eq!(k, k2, "matmul_tn shared-dimension mismatch: {k} vs {k2}");
        let mut c = Matrix::zeros(m, n);
        let flops = m * n * k;
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        parallel_over_rows(&mut c, threads_for(flops), |first_row, chunk| {
            for (local_i, c_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = first_row + local_i;
                for kk in 0..k {
                    let aki = a_data[kk * m + i];
                    if aki == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aki * bv;
                    }
                }
            }
        });
        c
    }

    /// Naive `C = A · Bᵀ` via per-element dot products.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.cols()`.
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let (n, k2) = b.shape();
        assert_eq!(k, k2, "matmul_nt inner-dimension mismatch: {k} vs {k2}");
        let mut c = Matrix::zeros(m, n);
        let flops = m * n * k;
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        parallel_over_rows(&mut c, threads_for(flops), |first_row, chunk| {
            for (local_i, c_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = first_row + local_i;
                let a_row = &a_data[i * k..(i + 1) * k];
                for (j, cv) in c_row.iter_mut().enumerate() {
                    let b_row = &b_data[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (av, bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    *cv = acc;
                }
            }
        });
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{set_parallel_threshold, DEFAULT_PARALLEL_THRESHOLD, TEST_THRESHOLD_LOCK};
    use block::{MR, NR};

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // tiny deterministic LCG so this module has no test-only deps
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    #[test]
    fn matmul_matches_naive() {
        let a = rand_mat(7, 5, 1);
        let b = rand_mat(5, 9, 2);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_identity() {
        let a = rand_mat(4, 4, 3);
        assert!(matmul(&a, &Matrix::eye(4)).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&Matrix::eye(4), &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let a = rand_mat(6, 4, 4);
        let b = rand_mat(6, 5, 5);
        assert!(matmul_tn(&a, &b).max_abs_diff(&matmul(&a.transpose(), &b)) < 1e-4);
        let c = rand_mat(3, 6, 6);
        assert!(matmul_nt(&c, &b.transpose()).max_abs_diff(&matmul(&c, &b)) < 1e-4);
    }

    #[test]
    #[cfg_attr(miri, ignore = "pool fan-out is minutes-slow interpreted")]
    fn threaded_path_matches_serial_bitwise() {
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        let a = rand_mat(33, 17, 7);
        let b = rand_mat(17, 29, 8);
        set_parallel_threshold(usize::MAX);
        let serial = matmul(&a, &b);
        set_parallel_threshold(0);
        let threaded = matmul(&a, &b);
        set_parallel_threshold(DEFAULT_PARALLEL_THRESHOLD);
        // MR-aligned row splitting never reorders per-element accumulation.
        assert_eq!(serial, threaded);
    }

    #[test]
    #[cfg_attr(miri, ignore = "pool fan-out is minutes-slow interpreted")]
    fn all_three_kernels_agree_on_the_pooled_path() {
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        let a = rand_mat(40, 12, 11);
        let b = rand_mat(12, 23, 12);
        let bt = b.transpose();
        set_parallel_threshold(0);
        let c = matmul(&a, &b);
        let c_tn = matmul_tn(&a.transpose(), &b);
        let c_nt = matmul_nt(&a, &bt);
        set_parallel_threshold(DEFAULT_PARALLEL_THRESHOLD);
        assert!(c.max_abs_diff(&c_tn) < 1e-4);
        assert!(c.max_abs_diff(&c_nt) < 1e-4);
    }

    #[test]
    #[cfg_attr(miri, ignore = "large shape sweep is minutes-slow interpreted")]
    fn packed_kernels_match_reference_at_block_edge_tails() {
        // Shapes straddling every blocking boundary: below/at/above MR, NR
        // (both 8-wide and the AVX-512 16-wide panel) and, with the
        // overrides below, KC and NC.
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        block::set_kc(5);
        block::set_nc(NR + 1);
        for (m, n, k, seed) in [
            (1, 1, 1, 1u64),
            (MR - 1, NR - 1, 4, 2),
            (MR, NR, 5, 3),
            (MR + 1, NR + 1, 6, 4),
            (2 * MR + 1, 2 * NR + 1, 11, 5),
            (9, 17, 2 * 5 + 1, 6), // k spans two full KC panels + tail
            (13, 3, 5, 7),
            (MR + 3, 4 * NR + 3, 9, 8), // several NC blocks of B panels
        ] {
            let a = rand_mat(m, k, seed);
            let b = rand_mat(k, n, seed + 100);
            let expect = reference::matmul(&a, &b);
            assert!(
                matmul(&a, &b).max_abs_diff(&expect) < 1e-4,
                "nn {m}x{k}x{n}"
            );
            assert!(
                matmul_tn(&a.transpose(), &b).max_abs_diff(&expect) < 1e-4,
                "tn {m}x{k}x{n}"
            );
            assert!(
                matmul_nt(&a, &b.transpose()).max_abs_diff(&expect) < 1e-4,
                "nt {m}x{k}x{n}"
            );
        }
        block::set_nc(0);
        block::set_kc(0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "Miri does not model x86 SIMD intrinsics")]
    fn every_supported_backend_matches_reference_and_fma_class_is_bit_identical() {
        // The cross-backend equivalence suite: at one fixed KC/NC every
        // supported backend must agree with the reference within float
        // tolerance, and the hardware-FMA backends (identical
        // k-sequential accumulation, single rounding per step) must
        // agree with each other **bitwise**.
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        block::set_kc(7);
        block::set_nc(2 * NR);
        let a = rand_mat(MR * 3 + 5, 29, 91);
        let b = rand_mat(29, 4 * NR + 3, 92);
        let at = a.transpose();
        let bt = b.transpose();
        let expect = reference::matmul(&a, &b);
        let mut fma_outputs: Vec<(KernelKind, Matrix)> = Vec::new();
        for &kind in compiled_kernels() {
            if !kind.is_supported() {
                continue;
            }
            block::set_kernel(Some(kind));
            let c = matmul(&a, &b);
            assert!(
                c.max_abs_diff(&expect) < 1e-4,
                "{} nn diverges from reference",
                kind.name()
            );
            assert!(
                matmul_tn(&at, &b).max_abs_diff(&expect) < 1e-4,
                "{} tn diverges from reference",
                kind.name()
            );
            assert!(
                matmul_nt(&a, &bt).max_abs_diff(&expect) < 1e-4,
                "{} nt diverges from reference",
                kind.name()
            );
            if kind.uses_fma() {
                fma_outputs.push((kind, c));
            }
        }
        block::set_kernel(None);
        block::set_nc(0);
        block::set_kc(0);
        for pair in fma_outputs.windows(2) {
            assert_eq!(
                pair[0].1,
                pair[1].1,
                "{} and {} must be bit-identical at fixed KC/NC",
                pair[0].0.name(),
                pair[1].0.name()
            );
        }
    }

    #[test]
    fn batched_matches_looped_per_head_bitwise() {
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        for heads in [1usize, 3, 17] {
            let aa: Vec<Matrix> = (0..heads).map(|h| rand_mat(9, 6, 200 + h as u64)).collect();
            let bb: Vec<Matrix> = (0..heads)
                .map(|h| rand_mat(6, 11, 300 + h as u64))
                .collect();
            // Force the pooled path so the group split is exercised even
            // for tiny shapes.
            set_parallel_threshold(0);
            let batched = matmul_batched(&aa, &bb);
            set_parallel_threshold(DEFAULT_PARALLEL_THRESHOLD);
            for h in 0..heads {
                // The batched driver runs the same packed serial kernel
                // per product, so results are bit-identical to a loop.
                assert_eq!(batched[h], matmul(&aa[h], &bb[h]), "head {h}/{heads}");
            }
        }
    }

    #[test]
    fn kc_and_nc_overrides_round_trip() {
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        let ambient_kc = block::kc();
        let ambient_nc = block::nc();
        block::set_kc(32);
        block::set_nc(96);
        let cfg = block::tile_config();
        assert_eq!(cfg.kc, 32);
        assert_eq!(cfg.nc, 96);
        block::set_kc(0);
        block::set_nc(0);
        assert_eq!(block::kc(), ambient_kc);
        assert_eq!(block::nc(), ambient_nc);
    }

    #[test]
    fn kernel_override_round_trips_and_names_parse() {
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        let ambient = block::kernel();
        block::set_kernel(Some(KernelKind::Portable));
        assert_eq!(block::kernel(), KernelKind::Portable);
        block::set_kernel(None);
        assert_eq!(block::kernel(), ambient);
        for &kind in compiled_kernels() {
            assert_eq!(KernelKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(KernelKind::parse("AVX2"), Some(KernelKind::Avx2));
        assert_eq!(KernelKind::parse("neon"), None);
    }

    #[test]
    fn into_variants_overwrite_dirty_outputs() {
        let a = rand_mat(9, 7, 21);
        let b = rand_mat(7, 5, 22);
        let mut dirty = Matrix::full(9, 5, 777.0);
        matmul_into(&a, &b, &mut dirty);
        assert_eq!(dirty, matmul(&a, &b));
        let at = a.transpose();
        let mut dirty = Matrix::full(9, 5, 777.0);
        matmul_tn_into(&at, &b, &mut dirty);
        assert_eq!(dirty, matmul_tn(&at, &b));
        let bt = b.transpose();
        let mut dirty = Matrix::full(9, 5, 777.0);
        matmul_nt_into(&a, &bt, &mut dirty);
        assert_eq!(dirty, matmul_nt(&a, &bt));
    }

    #[test]
    fn mr_row_blocks_tile_and_align() {
        for (rows, parts) in [(1, 4), (7, 2), (8, 3), (33, 4), (100, 7)] {
            let sizes = mr_row_blocks(rows, parts, MR);
            assert_eq!(sizes.iter().sum::<usize>(), rows, "{rows}/{parts}");
            for (i, &s) in sizes.iter().enumerate() {
                assert!(s > 0);
                if i + 1 < sizes.len() {
                    assert_eq!(s % MR, 0, "interior block not MR-aligned");
                }
            }
        }
    }

    #[test]
    fn empty_dimensions_are_fine() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        assert_eq!(matmul(&a, &b).shape(), (0, 4));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 4));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(
            matmul_tn(&Matrix::zeros(0, 2), &Matrix::zeros(0, 3)).shape(),
            (2, 3)
        );
        assert_eq!(
            matmul_nt(&Matrix::zeros(2, 0), &Matrix::zeros(3, 0)).shape(),
            (2, 3)
        );
        assert!(matmul_batched(&[], &[]).is_empty());
        let zk = matmul_batched(&[Matrix::zeros(2, 0)], &[Matrix::zeros(0, 3)]);
        assert_eq!(zk[0].shape(), (2, 3));
        assert!(zk[0].as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner-dimension mismatch")]
    fn mismatched_shapes_panic() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    #[should_panic(expected = "matmul_batched A[1] shape mismatch")]
    fn batched_rejects_mixed_shapes() {
        let aa = [Matrix::zeros(2, 3), Matrix::zeros(3, 3)];
        let bb = [Matrix::zeros(3, 2), Matrix::zeros(3, 2)];
        matmul_batched(&aa, &bb);
    }

    #[test]
    fn reference_kernels_match_local_naive() {
        let a = rand_mat(11, 6, 31);
        let b = rand_mat(6, 13, 32);
        let expect = naive(&a, &b);
        assert!(reference::matmul(&a, &b).max_abs_diff(&expect) < 1e-4);
        assert!(reference::matmul_tn(&a.transpose(), &b).max_abs_diff(&expect) < 1e-4);
        assert!(reference::matmul_nt(&a, &b.transpose()).max_abs_diff(&expect) < 1e-4);
    }
}
