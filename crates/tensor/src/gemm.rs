//! Packed, cache-blocked matrix-multiplication kernels.
//!
//! Three variants cover everything the training stack needs:
//!
//! * [`matmul`] / [`matmul_into`] — `C = A · B` (forward passes),
//! * [`matmul_tn`] / [`matmul_tn_into`] — `C = Aᵀ · B` (weight gradients:
//!   `∂W = Xᵀ · ∂Y`),
//! * [`matmul_nt`] / [`matmul_nt_into`] — `C = A · Bᵀ` (input gradients:
//!   `∂X = ∂Y · Wᵀ`).
//!
//! All three route through one BLAS-style micro-kernel
//! ([`block::MR`]`×`[`block::NR`] register tiles accumulated in local
//! arrays) with the K dimension cut into cache-sized panels of depth
//! [`block::kc`] (default [`block::DEFAULT_KC`], overridable via the
//! `PPGNN_GEMM_BLOCK` environment variable or [`block::set_kc`]).
//!
//! Per call, the `B` operand is packed **once** into contiguous
//! `NR`-column panels — in transposed layout for the `nt` variant — and
//! shared read-only by every row-block task scheduled on the worker pool;
//! each task packs its own `MR`-row `A` panels (transposed for `tn`, so
//! the gradient kernel never strides `k·m` between consecutive reads).
//! Both packing buffers come from the thread-local
//! [`crate::pool::PackWorkspace`], which grows monotonically — in steady
//! state a GEMM call allocates nothing beyond its output. The packed
//! inner loops are branch-free contiguous FMA chains the compiler
//! auto-vectorizes; panel tails are zero-padded during packing so the
//! micro-kernel never sees a partial tile (the store-back writes only the
//! valid sub-tile).
//!
//! Calls parallelize over `MR`-aligned output row blocks on the shared
//! [`crate::pool`] once the FLOP count crosses the workspace-wide
//! threshold ([`crate::pool::set_parallel_threshold`]). Row splitting
//! never changes per-element accumulation order, so serial and pooled
//! results are bit-identical.
//!
//! The pre-blocking naive kernels are retained verbatim in [`reference`]
//! as the correctness oracle (proptests pin the packed kernels to them
//! within tight float tolerance) and as the baseline the
//! `BENCH_gemm.json` artifact measures speedups against.

use crate::pool::{pool, threads_for, PackBuf, PackWorkspace};
use crate::Matrix;

use block::{MR, NR};

/// Block-size constants shared by the dense GEMM micro-kernel and the
/// column-tiled SpMM in `ppgnn-graph`.
pub mod block {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    /// Rows of one register tile (`A`-panel width).
    pub const MR: usize = 8;

    /// Columns of one register tile (`B`-panel width).
    pub const NR: usize = 8;

    /// Default K-panel depth: `KC · NR · 4 B` of packed `B` panel (8 KiB)
    /// plus `KC · MR · 4 B` of packed `A` panel (8 KiB) stay L1-resident
    /// under the micro-kernel.
    pub const DEFAULT_KC: usize = 256;

    /// Column-strip width of the tiled SpMM kernel (`8 · NR`): wide
    /// enough that re-walking a row's CSR entries per strip is amortized,
    /// narrow enough that the gathered `X` rows stay hot in L1.
    pub const SPMM_COL_BLOCK: usize = 8 * NR;

    /// Test/bench override for the K-panel depth; `0` = unset.
    static KC_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

    /// `PPGNN_GEMM_BLOCK`, read once on first use.
    static KC_FROM_ENV: OnceLock<usize> = OnceLock::new();

    /// The active K-panel depth: the [`set_kc`] override when set,
    /// otherwise `PPGNN_GEMM_BLOCK` (clamped to `1..=65536`, read once),
    /// otherwise [`DEFAULT_KC`].
    pub fn kc() -> usize {
        let v = KC_OVERRIDE.load(Ordering::Relaxed);
        if v != 0 {
            return v;
        }
        *KC_FROM_ENV.get_or_init(|| {
            std::env::var("PPGNN_GEMM_BLOCK")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .map(|v| v.clamp(1, 65536))
                .unwrap_or(DEFAULT_KC)
        })
    }

    /// Overrides the K-panel depth (primarily for tests and block-size
    /// sweeps); `0` resets to the environment/default value. Any positive
    /// depth is correct — the knob trades packing granularity against
    /// cache residency.
    pub fn set_kc(kc: usize) {
        KC_OVERRIDE.store(kc, Ordering::Relaxed);
    }
}

/// Splits `rows` into at most `parts` near-equal contiguous blocks whose
/// sizes are multiples of [`MR`] (except possibly the last), so row-block
/// boundaries always fall on packing-panel boundaries.
fn mr_row_blocks(rows: usize, parts: usize) -> Vec<usize> {
    let panels = rows.div_ceil(MR);
    let parts = parts.clamp(1, panels.max(1));
    let per = panels.div_ceil(parts);
    let mut sizes = Vec::with_capacity(parts);
    let mut start_panel = 0;
    while start_panel < panels {
        let take = per.min(panels - start_panel);
        let row_end = ((start_panel + take) * MR).min(rows);
        sizes.push(row_end - start_panel * MR);
        start_panel += take;
    }
    sizes
}

/// The register-tile inner kernel: `acc += Ap · Bp` over one K panel.
///
/// `ap` is `kcl` steps of `MR` packed `A` values, `bp` is `kcl` steps of
/// `NR` packed `B` values; `acc` is the `MR×NR` tile held in local arrays
/// the compiler keeps in vector registers. No branches, no strides — one
/// contiguous multiply-add chain.
#[inline(always)]
fn micro_kernel_generic(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ar, br) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let a: &[f32; MR] = ar.try_into().expect("A panel step is MR long");
        let b: &[f32; NR] = br.try_into().expect("B panel step is NR long");
        for i in 0..MR {
            for j in 0..NR {
                acc[i][j] += a[i] * b[j];
            }
        }
    }
}

/// Baseline-ISA instantiation of the micro-kernel (the build target's
/// default feature set, SSE2 on x86-64).
fn micro_kernel_portable(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    micro_kernel_generic(ap, bp, acc);
}

/// The same loop structure with an explicit fused multiply-add.
///
/// rustc does not contract separate `mul`+`add` into FMA on its own
/// (float semantics are kept deterministic), so the hardware-FMA path
/// must spell it `mul_add`. Only the feature-gated AVX2 instantiation
/// calls this — on targets without hardware FMA, `mul_add` would lower
/// to a libm call per element.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn micro_kernel_generic_fma(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ar, br) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let a: &[f32; MR] = ar.try_into().expect("A panel step is MR long");
        let b: &[f32; NR] = br.try_into().expect("B panel step is NR long");
        for i in 0..MR {
            for j in 0..NR {
                acc[i][j] = a[i].mul_add(b[j], acc[i][j]);
            }
        }
    }
}

/// AVX2+FMA instantiation: `NR = 8` makes one accumulator row exactly
/// one `ymm` register and the explicit `mul_add` chain lowers to
/// `vfmadd231ps`, so LLVM vectorizes the kernel at 8-wide FMA
/// throughput. FMA rounds once per multiply-add where the portable
/// kernel rounds twice, so results differ from non-AVX2 machines in the
/// last bits — but the dispatch is uniform per process, so serial vs
/// pooled (and every caller on a given machine) still agree bitwise.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_kernel_avx2(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    micro_kernel_generic_fma(ap, bp, acc);
}

/// AVX2+FMA micro-kernel behind the pointer-call ABI of the dispatch
/// table.
///
/// # Safety-free wrapper
///
/// Only ever stored in [`micro_kernel`]'s dispatch result after
/// `is_x86_feature_detected!` confirmed both features at runtime.
#[cfg(target_arch = "x86_64")]
fn micro_kernel_avx2_entry(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    // SAFETY: this entry point is selected (see `micro_kernel`) only when
    // `is_x86_feature_detected!("avx2")` and `("fma")` both returned true
    // on this machine, so the target-feature contract holds.
    unsafe { micro_kernel_avx2(ap, bp, acc) }
}

/// Resolves the widest micro-kernel this CPU supports, once per process.
///
/// The packed layout is ISA-independent; only the inner multiply-add
/// chain is recompiled per feature level, so every caller (serial or
/// pooled, any variant) computes identical results.
fn micro_kernel() -> fn(&[f32], &[f32], &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static KERNEL: OnceLock<fn(&[f32], &[f32], &mut [[f32; NR]; MR])> = OnceLock::new();
        *KERNEL.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                micro_kernel_avx2_entry
            } else {
                micro_kernel_portable
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        micro_kernel_portable
    }
}

/// Packs rows `row0..row0+rows`, K slice `kk0..kk0+kcl` of row-major
/// `a` (`lda = k`) into `MR`-row panels: panel `ip`, element `(kk, ir)`
/// at `ip·kcl·MR + kk·MR + ir`. Panel tails are zero-padded.
fn pack_a_rows(
    a: &[f32],
    k: usize,
    row0: usize,
    rows: usize,
    kk0: usize,
    kcl: usize,
    dst: &mut [f32],
) {
    let mp = rows.div_ceil(MR);
    debug_assert_eq!(dst.len(), mp * kcl * MR);
    for ip in 0..mp {
        let panel = &mut dst[ip * kcl * MR..(ip + 1) * kcl * MR];
        let ivalid = MR.min(rows - ip * MR);
        if ivalid < MR {
            panel.fill(0.0);
        }
        for ir in 0..ivalid {
            let src = &a[(row0 + ip * MR + ir) * k + kk0..][..kcl];
            for (kk, &v) in src.iter().enumerate() {
                panel[kk * MR + ir] = v;
            }
        }
    }
}

/// Packs *columns* `row0..row0+rows` of the `k×m` row-major `a` (i.e.
/// rows of `Aᵀ`), K slice `kk0..kk0+kcl`, into the same `MR`-row panel
/// layout as [`pack_a_rows`]. Each `kk` step copies `MR` **contiguous**
/// values of one `A` row — this is the `matmul_tn` column-stride fix: the
/// kernel reads `A` along its rows during packing instead of striding
/// `k·m` elements apart in the inner loop.
fn pack_a_cols(
    a: &[f32],
    m: usize,
    row0: usize,
    rows: usize,
    kk0: usize,
    kcl: usize,
    dst: &mut [f32],
) {
    let mp = rows.div_ceil(MR);
    debug_assert_eq!(dst.len(), mp * kcl * MR);
    for ip in 0..mp {
        let panel = &mut dst[ip * kcl * MR..(ip + 1) * kcl * MR];
        let ivalid = MR.min(rows - ip * MR);
        if ivalid < MR {
            panel.fill(0.0);
        }
        for kk in 0..kcl {
            let src = &a[(kk0 + kk) * m + row0 + ip * MR..][..ivalid];
            panel[kk * MR..][..ivalid].copy_from_slice(src);
        }
    }
}

/// Packs K slice `kk0..kk0+kcl` of the row-major `k×n` matrix `b` into
/// `NR`-column panels: panel `jp`, element `(kk, jr)` at
/// `jp·kcl·NR + kk·NR + jr`. Panel tails are zero-padded.
fn pack_b_rows(b: &[f32], n: usize, kk0: usize, kcl: usize, dst: &mut [f32]) {
    let np = n.div_ceil(NR);
    debug_assert_eq!(dst.len(), np * kcl * NR);
    for jp in 0..np {
        let panel = &mut dst[jp * kcl * NR..(jp + 1) * kcl * NR];
        let jvalid = NR.min(n - jp * NR);
        if jvalid < NR {
            panel.fill(0.0);
        }
        for kk in 0..kcl {
            let src = &b[(kk0 + kk) * n + jp * NR..][..jvalid];
            panel[kk * NR..][..jvalid].copy_from_slice(src);
        }
    }
}

/// Packs K slice `kk0..kk0+kcl` of `Bᵀ` where `b` is stored row-major
/// `n×k` (the `matmul_nt` operand) into the same `NR`-column panel layout
/// as [`pack_b_rows`]. Reads run contiguously along `b`'s rows.
fn pack_b_cols(b: &[f32], k: usize, n: usize, kk0: usize, kcl: usize, dst: &mut [f32]) {
    let np = n.div_ceil(NR);
    debug_assert_eq!(dst.len(), np * kcl * NR);
    for jp in 0..np {
        let panel = &mut dst[jp * kcl * NR..(jp + 1) * kcl * NR];
        let jvalid = NR.min(n - jp * NR);
        if jvalid < NR {
            panel.fill(0.0);
        }
        for jr in 0..jvalid {
            let src = &b[(jp * NR + jr) * k + kk0..][..kcl];
            for (kk, &v) in src.iter().enumerate() {
                panel[kk * NR + jr] = v;
            }
        }
    }
}

/// The blocked driver shared by all three variants.
///
/// `b_packed` holds every K panel of `B` (packed once by the caller);
/// `pack_a(row0, rows, kk0, kcl, dst)` packs one K panel of the task's
/// `A` rows. `kc` is the K-panel depth `b_packed` was laid out with —
/// the caller reads [`block::kc`] exactly once per call and hands the
/// same value to [`pack_b_full`] and here, so a concurrent
/// [`block::set_kc`] can never desynchronize the packed layout from its
/// consumer. Output rows are split into `MR`-aligned blocks, one task
/// per block on the shared pool; each task zero-fills its `C` chunk and
/// accumulates `Apᵀ·Bp` tile products K panel by K panel, so per-element
/// accumulation order is independent of the row split.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked<PA>(
    m: usize,
    n: usize,
    k: usize,
    kc: usize,
    nthreads: usize,
    pack_a: PA,
    b_packed: &[f32],
    c: &mut Matrix,
) where
    PA: Fn(usize, usize, usize, usize, &mut [f32]) + Sync,
{
    let np = n.div_ceil(NR);
    let kernel = micro_kernel();
    let body = |first_row: usize, chunk: &mut [f32]| {
        let rows = chunk.len() / n;
        chunk.fill(0.0);
        let mp = rows.div_ceil(MR);
        let mut abuf = PackWorkspace::take(PackBuf::OperandA, kc.min(k) * mp * MR);
        let mut kk0 = 0;
        while kk0 < k {
            let kcl = kc.min(k - kk0);
            let apack = &mut abuf[..kcl * mp * MR];
            pack_a(first_row, rows, kk0, kcl, apack);
            let bbase = kk0 * np * NR;
            for ip in 0..mp {
                let ap = &apack[ip * kcl * MR..][..kcl * MR];
                let ivalid = MR.min(rows - ip * MR);
                for jp in 0..np {
                    let bp = &b_packed[bbase + jp * kcl * NR..][..kcl * NR];
                    let mut acc = [[0.0f32; NR]; MR];
                    kernel(ap, bp, &mut acc);
                    let jvalid = NR.min(n - jp * NR);
                    for i in 0..ivalid {
                        let crow = &mut chunk[(ip * MR + i) * n + jp * NR..][..jvalid];
                        for (cv, av) in crow.iter_mut().zip(&acc[i][..jvalid]) {
                            *cv += *av;
                        }
                    }
                }
            }
            kk0 += kcl;
        }
        PackWorkspace::give(PackBuf::OperandA, abuf);
    };
    if nthreads <= 1 || m <= MR {
        // Serial path: no row split, no per-call block bookkeeping — in
        // steady state the only allocation left in a whole GEMM call is
        // the caller's output matrix.
        body(0, c.as_mut_slice());
        return;
    }
    let sizes = mr_row_blocks(m, nthreads);
    if sizes.len() <= 1 {
        body(0, c.as_mut_slice());
        return;
    }
    let mut starts = Vec::with_capacity(sizes.len());
    let mut acc = 0;
    for &s in &sizes {
        starts.push(acc);
        acc += s;
    }
    pool().run_row_blocks(c.as_mut_slice(), n, &sizes, |blk, chunk| {
        body(starts[blk], chunk);
    });
}

/// Packs every K panel of a `k`-deep `B` operand into a workspace buffer
/// using `pack_block(kk0, kcl, dst)` at panel depth `kc`, returning the
/// buffer (give it back with [`PackWorkspace::give`]).
fn pack_b_full(
    k: usize,
    n: usize,
    kc: usize,
    pack_block: impl Fn(usize, usize, &mut [f32]),
) -> Vec<f32> {
    let np = n.div_ceil(NR);
    let mut bbuf = PackWorkspace::take(PackBuf::OperandB, k * np * NR);
    let mut kk0 = 0;
    while kk0 < k {
        let kcl = kc.min(k - kk0);
        pack_block(kk0, kcl, &mut bbuf[kk0 * np * NR..][..kcl * np * NR]);
        kk0 += kcl;
    }
    bbuf
}

/// `C = A · B`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut c);
    c
}

/// `C = A · B` into a pre-allocated output (overwrites `c`).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `c` is not `a.rows() x b.cols()`.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul inner-dimension mismatch: {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "matmul output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill_zero();
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let kc = block::kc();
    let bbuf = pack_b_full(k, n, kc, |kk0, kcl, dst| {
        pack_b_rows(b_data, n, kk0, kcl, dst)
    });
    gemm_blocked(
        m,
        n,
        k,
        kc,
        threads_for(m * n * k),
        |row0, rows, kk0, kcl, dst| pack_a_rows(a_data, k, row0, rows, kk0, kcl, dst),
        &bbuf,
        c,
    );
    PackWorkspace::give(PackBuf::OperandB, bbuf);
}

/// `C = Aᵀ · B` where `A` is `k x m` and `B` is `k x n`.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    matmul_tn_into(a, b, &mut c);
    c
}

/// `C = Aᵀ · B` into a pre-allocated output (overwrites `c`).
///
/// The backward passes in `ppgnn-nn` route their weight gradients through
/// this into reusable scratch matrices, so steady-state training batches
/// allocate nothing for the `∂W = Xᵀ · ∂Y` product.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()` or `c` is not `a.cols() x b.cols()`.
pub fn matmul_tn_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_tn shared-dimension mismatch: {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "matmul_tn output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill_zero();
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let kc = block::kc();
    let bbuf = pack_b_full(k, n, kc, |kk0, kcl, dst| {
        pack_b_rows(b_data, n, kk0, kcl, dst)
    });
    gemm_blocked(
        m,
        n,
        k,
        kc,
        threads_for(m * n * k),
        |row0, rows, kk0, kcl, dst| pack_a_cols(a_data, m, row0, rows, kk0, kcl, dst),
        &bbuf,
        c,
    );
    PackWorkspace::give(PackBuf::OperandB, bbuf);
}

/// `C = A · Bᵀ` where `A` is `m x k` and `B` is `n x k`.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    matmul_nt_into(a, b, &mut c);
    c
}

/// `C = A · Bᵀ` into a pre-allocated output (overwrites `c`).
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()` or `c` is not `a.rows() x b.rows()`.
pub fn matmul_nt_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "matmul_nt inner-dimension mismatch: {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "matmul_nt output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill_zero();
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let kc = block::kc();
    let bbuf = pack_b_full(k, n, kc, |kk0, kcl, dst| {
        pack_b_cols(b_data, k, n, kk0, kcl, dst)
    });
    gemm_blocked(
        m,
        n,
        k,
        kc,
        threads_for(m * n * k),
        |row0, rows, kk0, kcl, dst| pack_a_rows(a_data, k, row0, rows, kk0, kcl, dst),
        &bbuf,
        c,
    );
    PackWorkspace::give(PackBuf::OperandB, bbuf);
}

/// The pre-blocking naive kernels, retained verbatim as the correctness
/// oracle for the packed implementations and as the bench baseline.
///
/// These are the i-k-j loops the packed kernels replaced: no packing, no
/// register tiling, a per-element `aik == 0.0` branch, and (in
/// [`reference::matmul_tn`]) a `k·m`-stride walk down `A`'s columns. They
/// parallelize over equal output-row blocks on the same shared pool, so
/// baseline measurements see the same thread budget as the packed
/// kernels.
pub mod reference {
    use crate::pool::{pool, threads_for};
    use crate::Matrix;

    /// Splits `rows` into at most `parts` near-equal contiguous blocks.
    fn equal_row_blocks(rows: usize, parts: usize) -> Vec<usize> {
        let parts = parts.clamp(1, rows);
        let per = rows.div_ceil(parts);
        let mut sizes = Vec::with_capacity(parts);
        let mut start = 0;
        while start < rows {
            let take = per.min(rows - start);
            sizes.push(take);
            start += take;
        }
        sizes
    }

    /// Runs `body(first_row, out_chunk)` over disjoint row blocks of
    /// `out` on the shared pool when `nthreads > 1`.
    fn parallel_over_rows<F>(out: &mut Matrix, nthreads: usize, body: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let rows = out.rows();
        let cols = out.cols();
        if rows == 0 || cols == 0 {
            return;
        }
        if nthreads <= 1 || rows == 1 {
            body(0, out.as_mut_slice());
            return;
        }
        let sizes = equal_row_blocks(rows, nthreads);
        let mut starts = Vec::with_capacity(sizes.len());
        let mut acc = 0;
        for &s in &sizes {
            starts.push(acc);
            acc += s;
        }
        pool().run_row_blocks(out.as_mut_slice(), cols, &sizes, |block, chunk| {
            body(starts[block], chunk);
        });
    }

    /// Naive `C = A · B`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        matmul_into(a, b, &mut c);
        c
    }

    /// Naive `C = A · B` into a pre-allocated output (overwrites `c`).
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()` or `c` is not
    /// `a.rows() x b.cols()`.
    pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
        let (m, k) = a.shape();
        let (k2, n) = b.shape();
        assert_eq!(k, k2, "matmul inner-dimension mismatch: {k} vs {k2}");
        assert_eq!(c.shape(), (m, n), "matmul output shape mismatch");
        c.fill_zero();
        let flops = m * n * k;
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        parallel_over_rows(c, threads_for(flops), |first_row, chunk| {
            for (local_i, c_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = first_row + local_i;
                let a_row = &a_data[i * k..(i + 1) * k];
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        });
    }

    /// Naive `C = Aᵀ · B` — strides `m` elements between consecutive `A`
    /// reads (the column-stride pathology the packed kernel removes).
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() != b.rows()`.
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        let (k, m) = a.shape();
        let (k2, n) = b.shape();
        assert_eq!(k, k2, "matmul_tn shared-dimension mismatch: {k} vs {k2}");
        let mut c = Matrix::zeros(m, n);
        let flops = m * n * k;
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        parallel_over_rows(&mut c, threads_for(flops), |first_row, chunk| {
            for (local_i, c_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = first_row + local_i;
                for kk in 0..k {
                    let aki = a_data[kk * m + i];
                    if aki == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aki * bv;
                    }
                }
            }
        });
        c
    }

    /// Naive `C = A · Bᵀ` via per-element dot products.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.cols()`.
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let (n, k2) = b.shape();
        assert_eq!(k, k2, "matmul_nt inner-dimension mismatch: {k} vs {k2}");
        let mut c = Matrix::zeros(m, n);
        let flops = m * n * k;
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        parallel_over_rows(&mut c, threads_for(flops), |first_row, chunk| {
            for (local_i, c_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = first_row + local_i;
                let a_row = &a_data[i * k..(i + 1) * k];
                for (j, cv) in c_row.iter_mut().enumerate() {
                    let b_row = &b_data[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (av, bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    *cv = acc;
                }
            }
        });
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{set_parallel_threshold, DEFAULT_PARALLEL_THRESHOLD, TEST_THRESHOLD_LOCK};

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // tiny deterministic LCG so this module has no test-only deps
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    #[test]
    fn matmul_matches_naive() {
        let a = rand_mat(7, 5, 1);
        let b = rand_mat(5, 9, 2);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_identity() {
        let a = rand_mat(4, 4, 3);
        assert!(matmul(&a, &Matrix::eye(4)).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&Matrix::eye(4), &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let a = rand_mat(6, 4, 4);
        let b = rand_mat(6, 5, 5);
        assert!(matmul_tn(&a, &b).max_abs_diff(&matmul(&a.transpose(), &b)) < 1e-4);
        let c = rand_mat(3, 6, 6);
        assert!(matmul_nt(&c, &b.transpose()).max_abs_diff(&matmul(&c, &b)) < 1e-4);
    }

    #[test]
    fn threaded_path_matches_serial_bitwise() {
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        let a = rand_mat(33, 17, 7);
        let b = rand_mat(17, 29, 8);
        set_parallel_threshold(usize::MAX);
        let serial = matmul(&a, &b);
        set_parallel_threshold(0);
        let threaded = matmul(&a, &b);
        set_parallel_threshold(DEFAULT_PARALLEL_THRESHOLD);
        // MR-aligned row splitting never reorders per-element accumulation.
        assert_eq!(serial, threaded);
    }

    #[test]
    fn all_three_kernels_agree_on_the_pooled_path() {
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        let a = rand_mat(40, 12, 11);
        let b = rand_mat(12, 23, 12);
        let bt = b.transpose();
        set_parallel_threshold(0);
        let c = matmul(&a, &b);
        let c_tn = matmul_tn(&a.transpose(), &b);
        let c_nt = matmul_nt(&a, &bt);
        set_parallel_threshold(DEFAULT_PARALLEL_THRESHOLD);
        assert!(c.max_abs_diff(&c_tn) < 1e-4);
        assert!(c.max_abs_diff(&c_nt) < 1e-4);
    }

    #[test]
    fn packed_kernels_match_reference_at_block_edge_tails() {
        // Shapes straddling every blocking boundary: below/at/above MR, NR
        // and (with the override below) KC.
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        block::set_kc(5);
        for (m, n, k, seed) in [
            (1, 1, 1, 1u64),
            (MR - 1, NR - 1, 4, 2),
            (MR, NR, 5, 3),
            (MR + 1, NR + 1, 6, 4),
            (2 * MR + 1, 2 * NR + 1, 11, 5),
            (9, 17, 2 * 5 + 1, 6), // k spans two full KC panels + tail
            (13, 3, 5, 7),
        ] {
            let a = rand_mat(m, k, seed);
            let b = rand_mat(k, n, seed + 100);
            let expect = reference::matmul(&a, &b);
            assert!(
                matmul(&a, &b).max_abs_diff(&expect) < 1e-4,
                "nn {m}x{k}x{n}"
            );
            assert!(
                matmul_tn(&a.transpose(), &b).max_abs_diff(&expect) < 1e-4,
                "tn {m}x{k}x{n}"
            );
            assert!(
                matmul_nt(&a, &b.transpose()).max_abs_diff(&expect) < 1e-4,
                "nt {m}x{k}x{n}"
            );
        }
        block::set_kc(0);
    }

    #[test]
    fn kc_override_round_trips() {
        let _guard = TEST_THRESHOLD_LOCK.lock().unwrap();
        let ambient = block::kc();
        block::set_kc(32);
        assert_eq!(block::kc(), 32);
        block::set_kc(0);
        assert_eq!(block::kc(), ambient);
    }

    #[test]
    fn into_variants_overwrite_dirty_outputs() {
        let a = rand_mat(9, 7, 21);
        let b = rand_mat(7, 5, 22);
        let mut dirty = Matrix::full(9, 5, 777.0);
        matmul_into(&a, &b, &mut dirty);
        assert_eq!(dirty, matmul(&a, &b));
        let at = a.transpose();
        let mut dirty = Matrix::full(9, 5, 777.0);
        matmul_tn_into(&at, &b, &mut dirty);
        assert_eq!(dirty, matmul_tn(&at, &b));
        let bt = b.transpose();
        let mut dirty = Matrix::full(9, 5, 777.0);
        matmul_nt_into(&a, &bt, &mut dirty);
        assert_eq!(dirty, matmul_nt(&a, &bt));
    }

    #[test]
    fn mr_row_blocks_tile_and_align() {
        for (rows, parts) in [(1, 4), (7, 2), (8, 3), (33, 4), (100, 7)] {
            let sizes = mr_row_blocks(rows, parts);
            assert_eq!(sizes.iter().sum::<usize>(), rows, "{rows}/{parts}");
            for (i, &s) in sizes.iter().enumerate() {
                assert!(s > 0);
                if i + 1 < sizes.len() {
                    assert_eq!(s % MR, 0, "interior block not MR-aligned");
                }
            }
        }
    }

    #[test]
    fn empty_dimensions_are_fine() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        assert_eq!(matmul(&a, &b).shape(), (0, 4));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 4));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(
            matmul_tn(&Matrix::zeros(0, 2), &Matrix::zeros(0, 3)).shape(),
            (2, 3)
        );
        assert_eq!(
            matmul_nt(&Matrix::zeros(2, 0), &Matrix::zeros(3, 0)).shape(),
            (2, 3)
        );
    }

    #[test]
    #[should_panic(expected = "inner-dimension mismatch")]
    fn mismatched_shapes_panic() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn reference_kernels_match_local_naive() {
        let a = rand_mat(11, 6, 31);
        let b = rand_mat(6, 13, 32);
        let expect = naive(&a, &b);
        assert!(reference::matmul(&a, &b).max_abs_diff(&expect) < 1e-4);
        assert!(reference::matmul_tn(&a.transpose(), &b).max_abs_diff(&expect) < 1e-4);
        assert!(reference::matmul_nt(&a, &b.transpose()).max_abs_diff(&expect) < 1e-4);
    }
}
