//! Dtype cast kernels for the compressed hop-feature store.
//!
//! The on-disk feature store (`ppgnn-dataio`) can encode hop chunks as
//! `f32` (the byte-identical default), IEEE `f16`, `bf16`, or affine
//! `int8` with per-row scale/zero-point. This module owns the
//! [`StoreDtype`] vocabulary and the encode/decode kernels that turn a
//! row-major `f32` slice into the packed on-disk payload and back.
//!
//! Like the GEMM micro-kernels, every conversion has a portable scalar
//! implementation ([`scalar`]) and, on `x86_64`, AVX2/F16C fast paths
//! selected **once per process** by runtime feature detection
//! ([`active_backend_name`] reports the winner). The SIMD twins are
//! bit-identical to the scalar kernels — same round-to-nearest-even
//! conversions, same unfused multiply-then-add dequantization — so the
//! stored bytes and the decoded floats never depend on the machine that
//! ran the conversion. Proptests pin this equivalence.
//!
//! Quantization granularity: the issue-level design calls for
//! per-chunk `int8` scale/zero-point; this implementation refines that
//! to **per-row** parameters inlined ahead of each row's payload
//! (8 bytes per row). Rows are the unit that partitioned stores deal
//! out whole, so per-row parameters make the encoding invariant to
//! chunk regrouping — a sharded store decodes bit-identically to the
//! single store at any partition count, which per-chunk parameters
//! cannot guarantee (chunk boundaries differ between the two layouts).

use std::sync::OnceLock;

use crate::knobs;

/// Bytes of the inline `[scale: f32 LE, zero: f32 LE]` header ahead of
/// each `int8` row payload.
pub const INT8_ROW_HEADER: usize = 8;

/// Element encoding of an on-disk hop-feature store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StoreDtype {
    /// Little-endian `f32`; byte-identical to the uncompressed format.
    #[default]
    F32,
    /// IEEE 754 binary16, round-to-nearest-even (F16C semantics).
    F16,
    /// bfloat16: truncated-exponent `f32`, round-to-nearest-even.
    Bf16,
    /// Affine `u8` quantization `x ≈ zero + scale·q` with per-row
    /// `scale`/`zero` stored inline ([`INT8_ROW_HEADER`]).
    Int8,
}

impl StoreDtype {
    /// Every store dtype, in knob-table order.
    pub const ALL: [StoreDtype; 4] = [
        StoreDtype::F32,
        StoreDtype::F16,
        StoreDtype::Bf16,
        StoreDtype::Int8,
    ];

    /// Stable lowercase name, as accepted by `PPGNN_STORE_DTYPE` and
    /// recorded in store manifests and `BENCH_store.json`.
    pub fn name(self) -> &'static str {
        match self {
            StoreDtype::F32 => "f32",
            StoreDtype::F16 => "f16",
            StoreDtype::Bf16 => "bf16",
            StoreDtype::Int8 => "int8",
        }
    }

    /// Parses a [`StoreDtype::name`] (case-insensitive).
    pub fn parse(s: &str) -> Option<StoreDtype> {
        match s.to_ascii_lowercase().as_str() {
            "f32" => Some(StoreDtype::F32),
            "f16" => Some(StoreDtype::F16),
            "bf16" => Some(StoreDtype::Bf16),
            "int8" => Some(StoreDtype::Int8),
            _ => None,
        }
    }

    /// The `PPGNN_STORE_DTYPE` knob, defaulting to [`StoreDtype::F32`].
    ///
    /// # Panics
    ///
    /// Panics on an unknown dtype name — the `Enum` knob contract is
    /// that a bad value fails loudly at the use site.
    pub fn from_env() -> StoreDtype {
        match knobs::string_value(knobs::STORE_DTYPE) {
            None => StoreDtype::F32,
            Some(v) => StoreDtype::parse(&v).unwrap_or_else(|| {
                panic!(
                    "{}={v:?} is not a store dtype (expected f32|f16|bf16|int8)",
                    knobs::STORE_DTYPE
                )
            }),
        }
    }

    /// Encoded bytes of one `cols`-wide row: `4·cols` for `f32`,
    /// `2·cols` for the half formats, `8 + cols` for `int8` (inline
    /// per-row quantization parameters plus one byte per element).
    pub fn encoded_row_bytes(self, cols: usize) -> usize {
        match self {
            StoreDtype::F32 => 4 * cols,
            StoreDtype::F16 | StoreDtype::Bf16 => 2 * cols,
            StoreDtype::Int8 => INT8_ROW_HEADER + cols,
        }
    }

    /// Whether this dtype is the uncompressed, byte-identical default.
    pub fn is_f32(self) -> bool {
        matches!(self, StoreDtype::F32)
    }
}

impl std::fmt::Display for StoreDtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Encodes `src` (row-major, `cols`-wide rows) into `dst` using the
/// process-wide dispatched kernels.
///
/// `src.len()` must be a multiple of `cols` and `dst.len()` must equal
/// `rows · dtype.encoded_row_bytes(cols)`; both are asserted.
pub fn encode_rows(dtype: StoreDtype, src: &[f32], cols: usize, dst: &mut [u8]) {
    encode_rows_with(backend(), dtype, src, cols, dst);
}

/// Decodes `src` (packed rows of `dtype`) into the `f32` slice `dst`.
///
/// `dst.len()` must be a multiple of `cols` and `src.len()` must equal
/// `rows · dtype.encoded_row_bytes(cols)`; both are asserted.
pub fn decode_rows(dtype: StoreDtype, src: &[u8], cols: usize, dst: &mut [f32]) {
    decode_rows_with(backend(), dtype, src, cols, dst);
}

/// Name of the dispatched cast backend: `"scalar"`, `"avx2"` (half
/// conversions scalar, `bf16`/`int8` vectorized), or `"avx2+f16c"`.
pub fn active_backend_name() -> &'static str {
    backend().name
}

/// Forced-scalar twins of [`encode_rows`]/[`decode_rows`], kept public
/// as the oracle for the cross-kernel bit-equality proptests (mirroring
/// `gemm::reference`).
pub mod scalar {
    use super::{StoreDtype, SCALAR};

    /// [`super::encode_rows`] on the portable scalar kernels.
    pub fn encode_rows(dtype: StoreDtype, src: &[f32], cols: usize, dst: &mut [u8]) {
        super::encode_rows_with(&SCALAR, dtype, src, cols, dst);
    }

    /// [`super::decode_rows`] on the portable scalar kernels.
    pub fn decode_rows(dtype: StoreDtype, src: &[u8], cols: usize, dst: &mut [f32]) {
        super::decode_rows_with(&SCALAR, dtype, src, cols, dst);
    }

    /// Scalar `f32 → f16` bit conversion (round-to-nearest-even,
    /// matching `vcvtps2ph` incl. subnormals, overflow-to-infinity, and
    /// NaN quieting).
    pub fn f32_to_f16_bits(value: f32) -> u16 {
        super::f32_to_f16_bits(value)
    }

    /// Scalar `f16 → f32` bit conversion (exact, matching `vcvtph2ps`).
    pub fn f16_bits_to_f32(bits: u16) -> f32 {
        super::f16_bits_to_f32(bits)
    }

    /// Scalar `f32 → bf16` bit conversion (round-to-nearest-even with
    /// NaN quieting).
    pub fn f32_to_bf16_bits(value: f32) -> u16 {
        super::f32_to_bf16_bits(value)
    }

    /// Scalar `bf16 → f32` bit conversion (exact).
    pub fn bf16_bits_to_f32(bits: u16) -> f32 {
        f32::from_bits((bits as u32) << 16)
    }

    /// Per-row `int8` quantization parameters `(scale, zero)` — see
    /// [`super::int8_row_params`].
    pub fn int8_row_params(row: &[f32]) -> (f32, f32) {
        super::int8_row_params(row)
    }
}

// ---------------------------------------------------------------------
// Shared row-structure drivers (dtype framing; element kernels come
// from the selected backend).
// ---------------------------------------------------------------------

/// One process-wide set of element-conversion kernels.
#[derive(Clone, Copy)]
struct Backend {
    name: &'static str,
    /// `dst.len() == 2 · src.len()`; little-endian `f16` bits out.
    f16_enc: fn(&[f32], &mut [u8]),
    /// `src.len() == 2 · dst.len()`; little-endian `f16` bits in.
    f16_dec: fn(&[u8], &mut [f32]),
    /// `dst.len() == 2 · src.len()`; little-endian `bf16` bits out.
    bf16_enc: fn(&[f32], &mut [u8]),
    /// `src.len() == 2 · dst.len()`; little-endian `bf16` bits in.
    bf16_dec: fn(&[u8], &mut [f32]),
    /// `(src, zero, inv_scale, dst)`: `q = clamp(rne((x−zero)·inv), 0, 255)`.
    int8_quant: fn(&[f32], f32, f32, &mut [u8]),
    /// `(src, zero, scale, dst)`: `x = zero + scale·q` (unfused).
    int8_dequant: fn(&[u8], f32, f32, &mut [f32]),
}

/// The portable backend; also the oracle the SIMD paths must match.
static SCALAR: Backend = Backend {
    name: "scalar",
    f16_enc: f16_enc_scalar,
    f16_dec: f16_dec_scalar,
    bf16_enc: bf16_enc_scalar,
    bf16_dec: bf16_dec_scalar,
    int8_quant: int8_quant_scalar,
    int8_dequant: int8_dequant_scalar,
};

static ACTIVE: OnceLock<Backend> = OnceLock::new();

/// The once-per-process dispatched backend (same discipline as
/// `gemm::block::kernel`): detect CPU features on first use, never
/// re-detect.
fn backend() -> &'static Backend {
    ACTIVE.get_or_init(detect_backend)
}

#[cfg(target_arch = "x86_64")]
fn detect_backend() -> Backend {
    let avx2 = std::arch::is_x86_feature_detected!("avx2");
    let f16c = avx2 && std::arch::is_x86_feature_detected!("f16c");
    if f16c {
        Backend {
            name: "avx2+f16c",
            f16_enc: f16_enc_dispatch_f16c,
            f16_dec: f16_dec_dispatch_f16c,
            bf16_enc: bf16_enc_dispatch_avx2,
            bf16_dec: bf16_dec_dispatch_avx2,
            int8_quant: int8_quant_dispatch_avx2,
            int8_dequant: int8_dequant_dispatch_avx2,
        }
    } else if avx2 {
        Backend {
            name: "avx2",
            bf16_enc: bf16_enc_dispatch_avx2,
            bf16_dec: bf16_dec_dispatch_avx2,
            int8_quant: int8_quant_dispatch_avx2,
            int8_dequant: int8_dequant_dispatch_avx2,
            ..SCALAR
        }
    } else {
        SCALAR
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_backend() -> Backend {
    SCALAR
}

fn check_lens(dtype: StoreDtype, elems: usize, cols: usize, bytes: usize) -> usize {
    assert!(cols > 0, "store rows must have at least one column");
    assert_eq!(elems % cols, 0, "f32 slice is not a whole number of rows");
    let rows = elems / cols;
    assert_eq!(
        bytes,
        rows * dtype.encoded_row_bytes(cols),
        "encoded buffer does not match {rows} rows × {cols} cols as {dtype}"
    );
    rows
}

fn encode_rows_with(b: &Backend, dtype: StoreDtype, src: &[f32], cols: usize, dst: &mut [u8]) {
    let rows = check_lens(dtype, src.len(), cols, dst.len());
    match dtype {
        StoreDtype::F32 => {
            for (v, out) in src.iter().zip(dst.chunks_exact_mut(4)) {
                out.copy_from_slice(&v.to_le_bytes());
            }
        }
        StoreDtype::F16 => (b.f16_enc)(src, dst),
        StoreDtype::Bf16 => (b.bf16_enc)(src, dst),
        StoreDtype::Int8 => {
            let stride = INT8_ROW_HEADER + cols;
            debug_assert_eq!(rows * stride, dst.len());
            for (row, out) in src.chunks_exact(cols).zip(dst.chunks_exact_mut(stride)) {
                let (scale, zero) = int8_row_params(row);
                out[..4].copy_from_slice(&scale.to_le_bytes());
                out[4..8].copy_from_slice(&zero.to_le_bytes());
                if scale > 0.0 {
                    (b.int8_quant)(row, zero, 1.0 / scale, &mut out[8..]);
                } else {
                    out[8..].fill(0);
                }
            }
        }
    }
}

fn decode_rows_with(b: &Backend, dtype: StoreDtype, src: &[u8], cols: usize, dst: &mut [f32]) {
    let rows = check_lens(dtype, dst.len(), cols, src.len());
    match dtype {
        StoreDtype::F32 => {
            for (bytes, out) in src.chunks_exact(4).zip(dst.iter_mut()) {
                *out = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            }
        }
        StoreDtype::F16 => (b.f16_dec)(src, dst),
        StoreDtype::Bf16 => (b.bf16_dec)(src, dst),
        StoreDtype::Int8 => {
            let stride = INT8_ROW_HEADER + cols;
            debug_assert_eq!(rows * stride, src.len());
            for (row, out) in src.chunks_exact(stride).zip(dst.chunks_exact_mut(cols)) {
                let scale = f32::from_le_bytes([row[0], row[1], row[2], row[3]]);
                let zero = f32::from_le_bytes([row[4], row[5], row[6], row[7]]);
                (b.int8_dequant)(&row[8..], zero, scale, out);
            }
        }
    }
}

/// Per-row `int8` quantization parameters `(scale, zero)`.
///
/// `zero` is the row minimum, `scale = (max − min) / 255`. A constant,
/// all-zero, or degenerate (empty / non-finite-range) row gets
/// `scale = 0`, which both quantizer paths turn into an all-zero
/// payload and the dequantizer decodes exactly as `zero`.
fn int8_row_params(row: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in row {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = hi - lo;
    if !(range.is_finite() && range > 0.0) {
        return (0.0, if lo.is_finite() { lo } else { 0.0 });
    }
    let scale = range / 255.0;
    if scale == 0.0 || !(1.0 / scale).is_finite() {
        // The division underflowed (or the reciprocal the quantizer
        // needs overflows): the row's spread is below f32 resolution,
        // so treat it as constant — `zero` alone carries the value.
        return (0.0, lo);
    }
    (scale, lo)
}

// ---------------------------------------------------------------------
// Scalar element kernels (the oracle).
// ---------------------------------------------------------------------

/// `f32 → f16` bits, round-to-nearest-even, F16C-equivalent.
fn f32_to_f16_bits(value: f32) -> u16 {
    let x = value.to_bits();
    let sign = (x >> 16) & 0x8000;
    let man = x & 0x007f_ffff;
    let exp = x & 0x7f80_0000;
    if exp == 0x7f80_0000 {
        // Infinity maps to infinity; NaN keeps its top payload bits and
        // is quieted, exactly as `vcvtps2ph` does.
        let quiet = if man == 0 { 0 } else { 0x0200 };
        return (sign | 0x7c00 | quiet | (man >> 13)) as u16;
    }
    let half_exp = ((exp >> 23) as i32) - 127 + 15;
    if half_exp >= 0x1f {
        return (sign | 0x7c00) as u16;
    }
    if half_exp <= 0 {
        // Subnormal half (or underflow to zero): shift the significand
        // (with its implicit bit) into place and round to nearest even.
        if 14 - half_exp > 24 {
            return sign as u16;
        }
        let man = man | 0x0080_0000;
        let shift = 14 - half_exp;
        let mut half_man = man >> shift;
        let round_bit = 1u32 << (shift - 1);
        if (man & round_bit) != 0 && (man & (3 * round_bit - 1)) != 0 {
            half_man += 1;
        }
        return (sign | half_man) as u16;
    }
    let half = sign | ((half_exp as u32) << 10) | (man >> 13);
    let round_bit = 0x1000;
    if (man & round_bit) != 0 && (man & (3 * round_bit - 1)) != 0 {
        // The +1 carries through the exponent (and into infinity) when
        // the rounded significand overflows — exactly RNE.
        (half + 1) as u16
    } else {
        half as u16
    }
}

/// `f16` bits `→ f32`, exact, F16C-equivalent (sNaNs are quieted).
fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = (bits & 0x7c00) as u32;
    let man = (bits & 0x03ff) as u32;
    if exp == 0x7c00 {
        return if man == 0 {
            f32::from_bits(sign | 0x7f80_0000)
        } else {
            f32::from_bits(sign | 0x7fc0_0000 | (man << 13))
        };
    }
    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign);
        }
        // Normalize the subnormal significand: `man · 2⁻²⁴` becomes
        // `1.frac · 2^(7 − lz)` with `lz = man.leading_zeros()`.
        let shift = man.leading_zeros() - 21;
        let man = (man << shift) & 0x03ff;
        let exp = 127 - 14 - shift;
        return f32::from_bits(sign | (exp << 23) | (man << 13));
    }
    f32::from_bits(sign | (((exp >> 10) + 127 - 15) << 23) | (man << 13))
}

/// `f32 → bf16` bits: round-to-nearest-even on the truncated mantissa,
/// NaNs keep their top payload bits and are quieted.
fn f32_to_bf16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    if value.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = 0x7fff + ((bits >> 16) & 1);
    (bits.wrapping_add(round) >> 16) as u16
}

fn f16_enc_scalar(src: &[f32], dst: &mut [u8]) {
    for (v, out) in src.iter().zip(dst.chunks_exact_mut(2)) {
        out.copy_from_slice(&f32_to_f16_bits(*v).to_le_bytes());
    }
}

fn f16_dec_scalar(src: &[u8], dst: &mut [f32]) {
    for (bytes, out) in src.chunks_exact(2).zip(dst.iter_mut()) {
        *out = f16_bits_to_f32(u16::from_le_bytes([bytes[0], bytes[1]]));
    }
}

fn bf16_enc_scalar(src: &[f32], dst: &mut [u8]) {
    for (v, out) in src.iter().zip(dst.chunks_exact_mut(2)) {
        out.copy_from_slice(&f32_to_bf16_bits(*v).to_le_bytes());
    }
}

fn bf16_dec_scalar(src: &[u8], dst: &mut [f32]) {
    for (bytes, out) in src.chunks_exact(2).zip(dst.iter_mut()) {
        *out = f32::from_bits((u16::from_le_bytes([bytes[0], bytes[1]]) as u32) << 16);
    }
}

fn int8_quant_scalar(src: &[f32], zero: f32, inv_scale: f32, dst: &mut [u8]) {
    for (v, out) in src.iter().zip(dst.iter_mut()) {
        // Round-to-nearest-even, then saturate — the SIMD twin's
        // `cvtps2dq` + integer clamp sequence lands on the same byte
        // for every finite input.
        let q = ((v - zero) * inv_scale).round_ties_even() as i32;
        *out = q.clamp(0, 255) as u8;
    }
}

fn int8_dequant_scalar(src: &[u8], zero: f32, scale: f32, dst: &mut [f32]) {
    for (q, out) in src.iter().zip(dst.iter_mut()) {
        // Unfused multiply-then-add: two roundings, matching the AVX2
        // path (which deliberately avoids FMA for bit-equality).
        *out = zero + scale * (*q as f32);
    }
}

// ---------------------------------------------------------------------
// AVX2 / F16C element kernels. Each `*_dispatch_*` wrapper is the safe
// fn-pointer target; the `#[target_feature]` body is only reachable
// after `detect_backend` confirmed support.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
fn f16_enc_dispatch_f16c(src: &[f32], dst: &mut [u8]) {
    // SAFETY: `detect_backend` installs this fn pointer only when the
    // running CPU reports AVX2+F16C.
    unsafe { f16_enc_f16c(src, dst) }
}

/// # Safety
///
/// The running CPU must support AVX and F16C.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx", enable = "f16c")]
unsafe fn f16_enc_f16c(src: &[f32], dst: &mut [u8]) {
    use std::arch::x86_64::*;
    let full = src.len() / 8 * 8;
    // Round-to-nearest-even from the immediate; the intrinsic's imm8 is
    // 3 bits wide, so the NO_EXC bit (0x08) is not encodable here.
    const RNE: i32 = _MM_FROUND_TO_NEAREST_INT;
    for i in (0..full).step_by(8) {
        // SAFETY: `i + 8 <= src.len()` and the length contract gives
        // `dst.len() == 2 · src.len()`, so both unaligned accesses are
        // in bounds.
        unsafe {
            let v = _mm256_loadu_ps(src.as_ptr().add(i));
            let h = _mm256_cvtps_ph::<RNE>(v);
            _mm_storeu_si128(dst.as_mut_ptr().add(2 * i) as *mut __m128i, h);
        }
    }
    f16_enc_scalar(&src[full..], &mut dst[2 * full..]);
}

#[cfg(target_arch = "x86_64")]
fn f16_dec_dispatch_f16c(src: &[u8], dst: &mut [f32]) {
    // SAFETY: `detect_backend` installs this fn pointer only when the
    // running CPU reports AVX2+F16C.
    unsafe { f16_dec_f16c(src, dst) }
}

/// # Safety
///
/// The running CPU must support AVX and F16C.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx", enable = "f16c")]
unsafe fn f16_dec_f16c(src: &[u8], dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let full = dst.len() / 8 * 8;
    for i in (0..full).step_by(8) {
        // SAFETY: `i + 8 <= dst.len()` and the length contract gives
        // `src.len() == 2 · dst.len()`, so both unaligned accesses are
        // in bounds.
        unsafe {
            let h = _mm_loadu_si128(src.as_ptr().add(2 * i) as *const __m128i);
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_cvtph_ps(h));
        }
    }
    f16_dec_scalar(&src[2 * full..], &mut dst[full..]);
}

#[cfg(target_arch = "x86_64")]
fn bf16_enc_dispatch_avx2(src: &[f32], dst: &mut [u8]) {
    // SAFETY: `detect_backend` installs this fn pointer only when the
    // running CPU reports AVX2.
    unsafe { bf16_enc_avx2(src, dst) }
}

/// # Safety
///
/// The running CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn bf16_enc_avx2(src: &[f32], dst: &mut [u8]) {
    use std::arch::x86_64::*;
    let full = src.len() / 8 * 8;
    for i in (0..full).step_by(8) {
        // SAFETY: `i + 8 <= src.len()` and the length contract gives
        // `dst.len() == 2 · src.len()`, so both unaligned accesses are
        // in bounds.
        unsafe {
            let v = _mm256_loadu_ps(src.as_ptr().add(i));
            let bits = _mm256_castps_si256(v);
            // Integer RNE: bits + 0x7fff + lsb(bits >> 16), then drop
            // the low 16 — the same formula as the scalar kernel.
            let lsb = _mm256_and_si256(_mm256_srli_epi32::<16>(bits), _mm256_set1_epi32(1));
            let bias = _mm256_add_epi32(lsb, _mm256_set1_epi32(0x7fff));
            let rounded = _mm256_srli_epi32::<16>(_mm256_add_epi32(bits, bias));
            // NaN lanes bypass rounding: truncate and set the quiet bit.
            let quieted = _mm256_or_si256(_mm256_srli_epi32::<16>(bits), _mm256_set1_epi32(0x0040));
            let is_nan = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_UNORD_Q>(v, v));
            let h32 = _mm256_blendv_epi8(rounded, quieted, is_nan);
            // Pack the 8 low u16s (values ≤ 0xffff, so `packus` cannot
            // saturate) into one xmm in lane order.
            let lo = _mm256_castsi256_si128(h32);
            let hi = _mm256_extracti128_si256::<1>(h32);
            let h = _mm_packus_epi32(lo, hi);
            _mm_storeu_si128(dst.as_mut_ptr().add(2 * i) as *mut __m128i, h);
        }
    }
    bf16_enc_scalar(&src[full..], &mut dst[2 * full..]);
}

#[cfg(target_arch = "x86_64")]
fn bf16_dec_dispatch_avx2(src: &[u8], dst: &mut [f32]) {
    // SAFETY: `detect_backend` installs this fn pointer only when the
    // running CPU reports AVX2.
    unsafe { bf16_dec_avx2(src, dst) }
}

/// # Safety
///
/// The running CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn bf16_dec_avx2(src: &[u8], dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let full = dst.len() / 8 * 8;
    for i in (0..full).step_by(8) {
        // SAFETY: `i + 8 <= dst.len()` and the length contract gives
        // `src.len() == 2 · dst.len()`, so both unaligned accesses are
        // in bounds.
        unsafe {
            let h = _mm_loadu_si128(src.as_ptr().add(2 * i) as *const __m128i);
            let wide = _mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(h));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_castsi256_ps(wide));
        }
    }
    bf16_dec_scalar(&src[2 * full..], &mut dst[full..]);
}

#[cfg(target_arch = "x86_64")]
fn int8_quant_dispatch_avx2(src: &[f32], zero: f32, inv_scale: f32, dst: &mut [u8]) {
    // SAFETY: `detect_backend` installs this fn pointer only when the
    // running CPU reports AVX2.
    unsafe { int8_quant_avx2(src, zero, inv_scale, dst) }
}

/// # Safety
///
/// The running CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn int8_quant_avx2(src: &[f32], zero: f32, inv_scale: f32, dst: &mut [u8]) {
    use std::arch::x86_64::*;
    let full = src.len() / 8 * 8;
    let zv = _mm256_set1_ps(zero);
    let sv = _mm256_set1_ps(inv_scale);
    for i in (0..full).step_by(8) {
        // SAFETY: `i + 8 <= src.len()` and the length contract gives
        // `dst.len() == src.len()`, so both unaligned accesses are in
        // bounds.
        unsafe {
            let v = _mm256_loadu_ps(src.as_ptr().add(i));
            // Unfused sub-then-mul, then `cvtps2dq` (rounds to nearest
            // even under the default MXCSR) — the same two roundings
            // and RNE the scalar kernel performs.
            let scaled = _mm256_mul_ps(_mm256_sub_ps(v, zv), sv);
            let q = _mm256_cvtps_epi32(scaled);
            let q = _mm256_min_epi32(
                _mm256_max_epi32(q, _mm256_setzero_si256()),
                _mm256_set1_epi32(255),
            );
            let lo = _mm256_castsi256_si128(q);
            let hi = _mm256_extracti128_si256::<1>(q);
            let w = _mm_packus_epi32(lo, hi);
            let b = _mm_packus_epi16(w, w);
            _mm_storel_epi64(dst.as_mut_ptr().add(i) as *mut __m128i, b);
        }
    }
    int8_quant_scalar(&src[full..], zero, inv_scale, &mut dst[full..]);
}

#[cfg(target_arch = "x86_64")]
fn int8_dequant_dispatch_avx2(src: &[u8], zero: f32, scale: f32, dst: &mut [f32]) {
    // SAFETY: `detect_backend` installs this fn pointer only when the
    // running CPU reports AVX2.
    unsafe { int8_dequant_avx2(src, zero, scale, dst) }
}

/// # Safety
///
/// The running CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn int8_dequant_avx2(src: &[u8], zero: f32, scale: f32, dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let full = dst.len() / 8 * 8;
    let zv = _mm256_set1_ps(zero);
    let sv = _mm256_set1_ps(scale);
    for i in (0..full).step_by(8) {
        // SAFETY: `i + 8 <= dst.len()` and the length contract gives
        // `src.len() == dst.len()`, so both unaligned accesses are in
        // bounds.
        unsafe {
            let b = _mm_loadl_epi64(src.as_ptr().add(i) as *const __m128i);
            let qf = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(b));
            // Unfused multiply-then-add: bit-identical to the scalar
            // `zero + scale · q` (no FMA on purpose).
            let x = _mm256_add_ps(zv, _mm256_mul_ps(sv, qf));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), x);
        }
    }
    int8_dequant_scalar(&src[full..], zero, scale, &mut dst[full..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dtype: StoreDtype, src: &[f32], cols: usize) -> Vec<f32> {
        let rows = src.len() / cols;
        let mut enc = vec![0u8; rows * dtype.encoded_row_bytes(cols)];
        encode_rows(dtype, src, cols, &mut enc);
        let mut dec = vec![0.0f32; src.len()];
        decode_rows(dtype, &enc, cols, &mut dec);
        dec
    }

    #[test]
    fn names_parse_back() {
        for d in StoreDtype::ALL {
            assert_eq!(StoreDtype::parse(d.name()), Some(d));
        }
        assert_eq!(StoreDtype::parse("F16"), Some(StoreDtype::F16));
        assert_eq!(StoreDtype::parse("float64"), None);
    }

    #[test]
    fn f32_roundtrip_is_exact() {
        let src = [1.5f32, -0.0, f32::MIN_POSITIVE, 3.25e7, -2.0e-12];
        let dec = roundtrip(StoreDtype::F32, &src, 5);
        for (a, b) in src.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f16_reference_values() {
        // (f32 input, expected f16 bits) — classic conversion vectors.
        let cases: &[(f32, u16)] = &[
            (0.0, 0x0000),
            (-0.0, 0x8000),
            (1.0, 0x3c00),
            (-2.0, 0xc000),
            (65504.0, 0x7bff),      // f16 max
            (65520.0, 0x7c00),      // ties to even → inf
            (65536.0, 0x7c00),      // overflow → inf
            (6.1035156e-5, 0x0400), // smallest normal
            (5.9604645e-8, 0x0001), // smallest subnormal
            (2.9802322e-8, 0x0000), // half the smallest subnormal, ties → 0
            (f32::INFINITY, 0x7c00),
            (f32::NEG_INFINITY, 0xfc00),
        ];
        for &(x, bits) in cases {
            assert_eq!(scalar::f32_to_f16_bits(x), bits, "encode {x}");
        }
        // Exact decode of every finite f16 value round-trips.
        for bits in 0u16..=0xffff {
            let x = scalar::f16_bits_to_f32(bits);
            if x.is_nan() {
                continue;
            }
            assert_eq!(scalar::f32_to_f16_bits(x), bits, "roundtrip {bits:#06x}");
        }
    }

    #[test]
    fn bf16_reference_values() {
        assert_eq!(scalar::f32_to_bf16_bits(1.0), 0x3f80);
        assert_eq!(scalar::f32_to_bf16_bits(-1.0), 0xbf80);
        assert_eq!(scalar::f32_to_bf16_bits(f32::INFINITY), 0x7f80);
        assert_eq!(scalar::f32_to_bf16_bits(f32::MAX), 0x7f80); // rounds up to inf
        let quiet = scalar::f32_to_bf16_bits(f32::NAN);
        assert!(scalar::bf16_bits_to_f32(quiet).is_nan());
        // RNE tie: 1.0 + 2^-9 is exactly halfway between two bf16
        // values; it must round to the even mantissa (1.0).
        assert_eq!(
            scalar::f32_to_bf16_bits(f32::from_bits(0x3f80_4000)),
            0x3f80
        );
    }

    #[test]
    fn int8_constant_and_zero_rows_decode_exactly() {
        let zeros = [0.0f32; 12];
        assert_eq!(roundtrip(StoreDtype::Int8, &zeros, 4), zeros);
        let consts = [3.75f32; 9];
        assert_eq!(roundtrip(StoreDtype::Int8, &consts, 3), consts);
    }

    #[test]
    fn int8_error_stays_within_half_a_step() {
        let cols = 17;
        let src: Vec<f32> = (0..3 * cols)
            .map(|i| ((i * 37 + 11) % 101) as f32 * 0.37 - 12.5)
            .collect();
        let dec = roundtrip(StoreDtype::Int8, &src, cols);
        for r in 0..3 {
            let row = &src[r * cols..(r + 1) * cols];
            let (scale, _) = scalar::int8_row_params(row);
            for (a, b) in row.iter().zip(&dec[r * cols..(r + 1) * cols]) {
                assert!(
                    (a - b).abs() <= scale * 0.5 + scale * 1e-4,
                    "|{a} - {b}| > step/2 (scale {scale})"
                );
            }
        }
    }

    #[test]
    fn dispatched_kernels_match_scalar_bitwise() {
        // Tail lengths force both the 8-wide SIMD body and the scalar
        // remainder; the proptest suite covers random shapes.
        let cols = 13;
        let src: Vec<f32> = (0..5 * cols)
            .map(|i| (((i * 29 + 7) % 997) as f32 - 498.0) * 0.137)
            .collect();
        for dtype in StoreDtype::ALL {
            let rows = src.len() / cols;
            let nbytes = rows * dtype.encoded_row_bytes(cols);
            let mut a = vec![0u8; nbytes];
            let mut b = vec![0u8; nbytes];
            encode_rows(dtype, &src, cols, &mut a);
            scalar::encode_rows(dtype, &src, cols, &mut b);
            assert_eq!(a, b, "{dtype} encode diverged from scalar");
            let mut da = vec![0.0f32; src.len()];
            let mut db = vec![0.0f32; src.len()];
            decode_rows(dtype, &a, cols, &mut da);
            scalar::decode_rows(dtype, &a, cols, &mut db);
            let ba: Vec<u32> = da.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = db.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ba, bb, "{dtype} decode diverged from scalar");
        }
    }

    #[test]
    fn encoded_row_bytes_match_layout() {
        assert_eq!(StoreDtype::F32.encoded_row_bytes(10), 40);
        assert_eq!(StoreDtype::F16.encoded_row_bytes(10), 20);
        assert_eq!(StoreDtype::Bf16.encoded_row_bytes(10), 20);
        assert_eq!(StoreDtype::Int8.encoded_row_bytes(10), 18);
    }
}
