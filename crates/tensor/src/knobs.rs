//! Central registry of every `PPGNN_*` environment knob.
//!
//! Each knob is declared once here — name, type, default, and the doc
//! string the EXPERIMENTS.md knob table is generated from — and every
//! read anywhere in the workspace goes through the typed accessors
//! below, which share a single [`std::env::var`] call point. The
//! `ppgnn-analyze` linter enforces both halves: raw
//! `env::var("PPGNN_…")` reads outside this module are a diagnostic,
//! and a registry that drifts from the EXPERIMENTS.md table fails the
//! knob-table consistency check.
//!
//! Accessors return `None` when a knob is unset or unparseable, so call
//! sites keep owning their (sometimes dynamic) defaults — e.g. the pool
//! width falls back to `available_parallelism()`. Numeric knobs are
//! clamped to the registry's declared range at the single parse point,
//! which fixed the pre-registry drift where bench binaries parsed
//! `PPGNN_NUM_PARTITIONS` unclamped while the preprocessing builder
//! clamped it to `1..=4096`.
//!
//! The reads outside this module are `PPGNN_PROPTEST_SEED` in the
//! vendored proptest shim and `PPGNN_TRACE` / `PPGNN_TRACE_OUT` in
//! `ppgnn-telemetry`: both crates sit below `ppgnn-tensor` in the
//! dependency order and cannot call into it. The knobs are still
//! declared here so the table stays complete.

/// How a knob's raw string is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobKind {
    /// A `usize` clamped to the inclusive range at parse time.
    Usize {
        /// Smallest accepted value.
        min: usize,
        /// Largest accepted value.
        max: usize,
    },
    /// A `u64` (seeds), no clamping.
    U64,
    /// Boolean: set-and-equal-to-`"1"` means on.
    Flag,
    /// A filesystem path; empty means unset.
    Path,
    /// A free-form string with consumer-defined grammar (e.g. a fault
    /// plan); empty means unset.
    Text,
    /// One of a closed set of names, validated by the consumer (a bad
    /// value must fail loudly at the use site, not silently here).
    Enum(&'static [&'static str]),
}

/// One registered environment knob.
#[derive(Debug, Clone, Copy)]
pub struct KnobDef {
    /// Environment variable name (`PPGNN_*`).
    pub name: &'static str,
    /// Value type and constraints.
    pub kind: KnobKind,
    /// Human-readable default, for the generated knob table.
    pub default: &'static str,
    /// One-line description, for the generated knob table.
    pub doc: &'static str,
}

/// `PPGNN_NUM_THREADS`.
pub const NUM_THREADS: &str = "PPGNN_NUM_THREADS";
/// `PPGNN_GEMM_BLOCK`.
pub const GEMM_BLOCK: &str = "PPGNN_GEMM_BLOCK";
/// `PPGNN_GEMM_NC`.
pub const GEMM_NC: &str = "PPGNN_GEMM_NC";
/// `PPGNN_FORCE_KERNEL`.
pub const FORCE_KERNEL: &str = "PPGNN_FORCE_KERNEL";
/// `PPGNN_TUNE_CACHE`.
pub const TUNE_CACHE: &str = "PPGNN_TUNE_CACHE";
/// `PPGNN_NUM_SHARDS`.
pub const NUM_SHARDS: &str = "PPGNN_NUM_SHARDS";
/// `PPGNN_NUM_PARTITIONS`.
pub const NUM_PARTITIONS: &str = "PPGNN_NUM_PARTITIONS";
/// `PPGNN_WRITER_QUEUE`.
pub const WRITER_QUEUE: &str = "PPGNN_WRITER_QUEUE";
/// `PPGNN_BENCH_SMOKE`.
pub const BENCH_SMOKE: &str = "PPGNN_BENCH_SMOKE";
/// `PPGNN_BENCH_ARTIFACT`.
pub const BENCH_ARTIFACT: &str = "PPGNN_BENCH_ARTIFACT";
/// `PPGNN_GEMM_BENCH_ARTIFACT`.
pub const GEMM_BENCH_ARTIFACT: &str = "PPGNN_GEMM_BENCH_ARTIFACT";
/// `PPGNN_STORE_DTYPE`.
pub const STORE_DTYPE: &str = "PPGNN_STORE_DTYPE";
/// `PPGNN_STORE_BENCH_ARTIFACT`.
pub const STORE_BENCH_ARTIFACT: &str = "PPGNN_STORE_BENCH_ARTIFACT";
/// `PPGNN_FAULTS`.
pub const FAULTS: &str = "PPGNN_FAULTS";
/// `PPGNN_WRITE_RETRIES`.
pub const WRITE_RETRIES: &str = "PPGNN_WRITE_RETRIES";
/// `PPGNN_PROPTEST_SEED`.
pub const PROPTEST_SEED: &str = "PPGNN_PROPTEST_SEED";
/// `PPGNN_TRACE`.
pub const TRACE: &str = "PPGNN_TRACE";
/// `PPGNN_TRACE_OUT`.
pub const TRACE_OUT: &str = "PPGNN_TRACE_OUT";

/// Every `PPGNN_*` knob the workspace reads, in table order.
pub const REGISTRY: &[KnobDef] = &[
    KnobDef {
        name: NUM_THREADS,
        kind: KnobKind::Usize { min: 1, max: 256 },
        default: "`available_parallelism()`",
        doc: "Worker-pool width shared by GEMM, SpMM, and sharded preprocessing.",
    },
    KnobDef {
        name: GEMM_BLOCK,
        kind: KnobKind::Usize { min: 1, max: 65536 },
        default: "256, or the tuned profile",
        doc: "Packed-GEMM K-panel depth (KC); overrides the autotuned profile.",
    },
    KnobDef {
        name: GEMM_NC,
        kind: KnobKind::Usize {
            min: 1,
            max: 1 << 20,
        },
        default: "kernel-specific, or the tuned profile",
        doc: "Packed-GEMM column block (NC); overrides the autotuned profile.",
    },
    KnobDef {
        name: FORCE_KERNEL,
        kind: KnobKind::Enum(&["portable", "avx2", "avx512"]),
        default: "runtime dispatch",
        doc: "Pins the GEMM micro-kernel backend; unknown or unsupported names panic.",
    },
    KnobDef {
        name: TUNE_CACHE,
        kind: KnobKind::Path,
        default: "unset (no autotuning)",
        doc: "Path of the one-shot {kernel, KC, NC} autotune cache; empty disables.",
    },
    KnobDef {
        name: NUM_SHARDS,
        kind: KnobKind::Usize { min: 1, max: 4096 },
        default: "pool width",
        doc: "Feature-matrix shard count for partitioned preprocessing.",
    },
    KnobDef {
        name: NUM_PARTITIONS,
        kind: KnobKind::Usize { min: 1, max: 4096 },
        default: "1 (unpartitioned)",
        doc: "Graph partition count for ghost-row-exchange preprocessing.",
    },
    KnobDef {
        name: WRITER_QUEUE,
        kind: KnobKind::Usize {
            min: 1,
            max: usize::MAX,
        },
        default: "4",
        doc: "Bounded queue depth of the async hop writer.",
    },
    KnobDef {
        name: BENCH_SMOKE,
        kind: KnobKind::Flag,
        default: "off",
        doc: "Shrinks bench repetitions to CI smoke scale.",
    },
    KnobDef {
        name: BENCH_ARTIFACT,
        kind: KnobKind::Path,
        default: "`BENCH_preprop.json`",
        doc: "Output path of the pipeline bench's perf artifact.",
    },
    KnobDef {
        name: GEMM_BENCH_ARTIFACT,
        kind: KnobKind::Path,
        default: "`BENCH_gemm.json`",
        doc: "Output path of the GEMM bench's perf artifact.",
    },
    KnobDef {
        name: STORE_DTYPE,
        kind: KnobKind::Enum(&["f32", "f16", "bf16", "int8"]),
        default: "f32",
        doc: "Hop-feature store element encoding; unknown names panic at store creation.",
    },
    KnobDef {
        name: STORE_BENCH_ARTIFACT,
        kind: KnobKind::Path,
        default: "`BENCH_store.json`",
        doc: "Output path of the store bench's perf artifact.",
    },
    KnobDef {
        name: FAULTS,
        kind: KnobKind::Text,
        default: "unset (no faults)",
        doc: "Deterministic I/O fault plan: `site:kind:nth[+][@scope]` specs (`;`-joined) or `seed=<u64>` for the chaos suite; unset costs one atomic load.",
    },
    KnobDef {
        name: WRITE_RETRIES,
        kind: KnobKind::Usize { min: 0, max: 16 },
        default: "2",
        doc: "Retry budget (with exponential backoff) for transient hop-write I/O errors in the async writer.",
    },
    KnobDef {
        name: PROPTEST_SEED,
        kind: KnobKind::U64,
        default: "0 (deterministic)",
        doc: "Base seed of the vendored proptest runner (parsed in the shim).",
    },
    KnobDef {
        name: TRACE,
        kind: KnobKind::Flag,
        default: "off",
        doc: "Enables the ppgnn-telemetry span tracer and metrics registry (read in the telemetry crate).",
    },
    KnobDef {
        name: TRACE_OUT,
        kind: KnobKind::Path,
        default: "`trace.json`",
        doc: "Output path of the Chrome-trace JSON export (read in the telemetry crate).",
    },
];

/// Looks up a knob's registry entry.
///
/// # Panics
///
/// Panics on a name missing from [`REGISTRY`] — reads of unregistered
/// knobs are a programming error the linter backs up statically.
pub fn def(name: &str) -> &'static KnobDef {
    REGISTRY
        .iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("{name} is not a registered PPGNN knob"))
}

/// The single raw environment read behind every accessor. `Err` (unset
/// or non-unicode) becomes `None`.
fn raw(name: &str) -> Option<String> {
    def(name); // every read must name a registered knob
    std::env::var(name).ok()
}

/// A `Usize` knob's value, clamped to its registered range; `None` when
/// unset or unparseable.
///
/// # Panics
///
/// Panics if `name` is not registered as a `Usize` knob.
pub fn usize_value(name: &str) -> Option<usize> {
    let KnobKind::Usize { min, max } = def(name).kind else {
        panic!("{name} is not a usize knob");
    };
    raw(name)?.parse::<usize>().ok().map(|v| v.clamp(min, max))
}

/// A `Flag` knob: set and equal to `"1"`.
pub fn flag(name: &str) -> bool {
    raw(name).is_some_and(|v| v == "1")
}

/// A string-valued (`Path`/`Enum`) knob; empty strings mean unset.
pub fn string_value(name: &str) -> Option<String> {
    raw(name).filter(|v| !v.is_empty())
}

/// Whether the knob is set at all (even to an empty string) — bench
/// artifact emission keys off presence.
pub fn is_set(name: &str) -> bool {
    raw(name).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var mutation is process-global; keep every knob this module
    // touches distinct from the ones other tensor tests read.
    #[test]
    fn usize_values_clamp_to_registered_range() {
        std::env::set_var(NUM_SHARDS, "999999");
        assert_eq!(usize_value(NUM_SHARDS), Some(4096));
        std::env::set_var(NUM_SHARDS, "0");
        assert_eq!(usize_value(NUM_SHARDS), Some(1));
        std::env::set_var(NUM_SHARDS, "17");
        assert_eq!(usize_value(NUM_SHARDS), Some(17));
        std::env::set_var(NUM_SHARDS, "not a number");
        assert_eq!(usize_value(NUM_SHARDS), None);
        std::env::remove_var(NUM_SHARDS);
        assert_eq!(usize_value(NUM_SHARDS), None);
    }

    #[test]
    fn flags_require_exactly_one() {
        std::env::set_var(BENCH_SMOKE, "1");
        assert!(flag(BENCH_SMOKE));
        std::env::set_var(BENCH_SMOKE, "true");
        assert!(!flag(BENCH_SMOKE));
        std::env::remove_var(BENCH_SMOKE);
        assert!(!flag(BENCH_SMOKE));
    }

    #[test]
    fn empty_strings_mean_unset_for_paths() {
        std::env::set_var(BENCH_ARTIFACT, "");
        assert_eq!(string_value(BENCH_ARTIFACT), None);
        assert!(is_set(BENCH_ARTIFACT));
        std::env::remove_var(BENCH_ARTIFACT);
        assert!(!is_set(BENCH_ARTIFACT));
    }

    #[test]
    #[should_panic(expected = "not a registered PPGNN knob")]
    fn unregistered_names_panic() {
        def("PPGNN_NOT_A_KNOB");
    }

    #[test]
    fn registry_names_are_unique_and_prefixed() {
        for (i, d) in REGISTRY.iter().enumerate() {
            assert!(d.name.starts_with("PPGNN_"), "{}", d.name);
            assert!(
                REGISTRY[i + 1..].iter().all(|o| o.name != d.name),
                "duplicate {}",
                d.name
            );
        }
    }
}
