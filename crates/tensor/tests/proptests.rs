//! Property-based tests for the tensor kernels.

use ppgnn_tensor::{
    block, cast, compiled_kernels, io, matmul, matmul_batched, matmul_batched_into, matmul_nt,
    matmul_tn, reference, set_parallel_threshold, Matrix, StoreDtype,
};
use proptest::prelude::*;

/// Serializes property cases that flip the global parallel threshold, so
/// concurrently running cases don't observe each other's overrides
/// mid-kernel (any threshold is *correct*, but each case wants to pin the
/// path it claims to exercise).
static KNOB_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Strategy: a matrix with dimensions in `1..=max_dim` and small values.
fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-8.0f32..8.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized by construction"))
    })
}

/// Strategy: a compatible (A, B) pair for `A · B`.
fn matmul_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        (
            prop::collection::vec(-4.0f32..4.0, m * k),
            prop::collection::vec(-4.0f32..4.0, k * n),
        )
            .prop_map(move |(a, b)| {
                (
                    Matrix::from_vec(m, k, a).expect("sized"),
                    Matrix::from_vec(k, n, b).expect("sized"),
                )
            })
    })
}

/// Deterministic LCG-filled matrix in `±0.25` — drawing tens of
/// thousands of proptest values per KC-boundary case would dominate the
/// suite's runtime, and the interesting structure here is the *shape*.
fn seeded_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5) * 0.5
    })
}

/// Shapes straddling every packing boundary of the blocked GEMM: `m`
/// around the `MR` register-tile edge, `n` around `NR` — wide enough to
/// also cross the AVX-512 kernel's doubled `2*NR` tile — and `k` either
/// small or hugging the `KC` panel edges (one and two full panels ± 1).
fn edge_tail_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (
        1usize..=2 * block::MR + 1,
        1usize..=4 * block::NR + 1,
        0usize..3,
        1usize..=2 * block::NR + 1,
    )
        .prop_map(|(m, n, k_class, k_small)| {
            let k = match k_class {
                0 => k_small,
                1 => block::DEFAULT_KC - 1 + k_small % 3,
                _ => 2 * block::DEFAULT_KC - 1 + k_small % 3,
            };
            (m, n, k)
        })
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f64;
            for k in 0..a.cols() {
                acc += a.get(i, k) as f64 * b.get(k, j) as f64;
            }
            c.set(i, j, acc as f32);
        }
    }
    c
}

proptest! {
    #[test]
    fn packed_kernels_match_retained_reference_at_edge_tails(
        (m, n, k) in edge_tail_dims(),
        seed in 0u64..1_000_000,
        pooled in 0u8..2,
    ) {
        let a = seeded_mat(m, k, seed);
        let b = seeded_mat(k, n, seed ^ 0x9e3779b97f4a7c15);
        let at = a.transpose();
        let bt = b.transpose();
        // The retained naive reference is the pre-blocking kernel; every
        // compiled-in micro-kernel this host can run must match it on
        // both execution paths.
        let expect = reference::matmul(&a, &b);
        let guard = KNOB_LOCK.lock().unwrap();
        set_parallel_threshold(if pooled == 1 { 0 } else { usize::MAX });
        for &kind in compiled_kernels() {
            if !kind.is_supported() {
                continue;
            }
            block::set_kernel(Some(kind));
            let nn = matmul(&a, &b);
            let tn = matmul_tn(&at, &b);
            let nt = matmul_nt(&a, &bt);
            let name = kind.name();
            prop_assert!(nn.max_abs_diff(&expect) < 1e-4, "{name} nn {m}x{k}x{n} pooled={pooled}");
            prop_assert!(tn.max_abs_diff(&expect) < 1e-4, "{name} tn {m}x{k}x{n} pooled={pooled}");
            prop_assert!(nt.max_abs_diff(&expect) < 1e-4, "{name} nt {m}x{k}x{n} pooled={pooled}");
        }
        block::set_kernel(None);
        set_parallel_threshold(ppgnn_tensor::pool::DEFAULT_PARALLEL_THRESHOLD);
        drop(guard);
    }

    /// The batched small-GEMM path must agree with per-head looped matmul
    /// on every compiled-in kernel, at HOGA-like head counts (1, 3, 17)
    /// and shapes straddling the register-tile tails.
    #[test]
    fn batched_path_matches_looped_per_head_on_every_kernel(
        heads_class in 0usize..3,
        m in 1usize..=block::MR + 1,
        k in 1usize..=9,
        n in 1usize..=2 * block::NR + 1,
        seed in 0u64..1_000_000,
    ) {
        let heads = [1usize, 3, 17][heads_class];
        let a: Vec<Matrix> = (0..heads).map(|h| seeded_mat(m, k, seed ^ h as u64)).collect();
        let b: Vec<Matrix> = (0..heads)
            .map(|h| seeded_mat(k, n, seed ^ 0x9e3779b97f4a7c15 ^ h as u64))
            .collect();
        let guard = KNOB_LOCK.lock().unwrap();
        for &kind in compiled_kernels() {
            if !kind.is_supported() {
                continue;
            }
            block::set_kernel(Some(kind));
            let looped: Vec<Matrix> = a.iter().zip(&b).map(|(ah, bh)| matmul(ah, bh)).collect();
            let batched = matmul_batched(&a, &b);
            let mut into: Vec<Matrix> = (0..heads).map(|_| Matrix::zeros(m, n)).collect();
            matmul_batched_into(&a, &b, &mut into);
            let name = kind.name();
            for h in 0..heads {
                prop_assert_eq!(
                    &batched[h], &looped[h],
                    "{} batched head {}/{} {}x{}x{}", name, h, heads, m, k, n
                );
                prop_assert_eq!(
                    &into[h], &looped[h],
                    "{} batched_into head {}/{} {}x{}x{}", name, h, heads, m, k, n
                );
            }
        }
        block::set_kernel(None);
        drop(guard);
    }

    #[test]
    fn gemm_matches_naive((a, b) in matmul_pair(12)) {
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    #[test]
    fn tn_equals_explicit_transpose((a, b) in matmul_pair(10)) {
        // A: m x k. Use Aᵀ (k x m) as the `tn` operand so shapes line up.
        let at = a.transpose();
        let via_tn = matmul_tn(&at, &b);
        let direct = matmul(&a, &b);
        prop_assert!(via_tn.max_abs_diff(&direct) < 1e-3);
    }

    #[test]
    fn nt_equals_explicit_transpose((a, b) in matmul_pair(10)) {
        let bt = b.transpose();
        let via_nt = matmul_nt(&a, &bt);
        let direct = matmul(&a, &b);
        prop_assert!(via_nt.max_abs_diff(&direct) < 1e-3);
    }

    #[test]
    fn transpose_is_involution(m in matrix(16)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn gather_picks_exact_rows(m in matrix(16), seed in 0u64..1000) {
        let mut idx = Vec::new();
        let mut s = seed;
        for _ in 0..m.rows() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            idx.push((s >> 33) as usize % m.rows());
        }
        let g = m.gather_rows(&idx);
        for (k, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(k), m.row(i));
        }
    }

    #[test]
    fn hstack_hsplit_round_trip(m in matrix(8), parts in 1usize..4) {
        // widen m so cols divide evenly
        let wide = Matrix::hstack(&vec![&m; parts]);
        let split = wide.hsplit(parts);
        for piece in split {
            prop_assert_eq!(piece, m.clone());
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix(12)) {
        let s = m.softmax_rows();
        for row in s.iter_rows() {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn io_round_trip(m in matrix(16)) {
        let mut buf = Vec::new();
        io::write_matrix(&mut buf, &m).expect("write to Vec cannot fail");
        let back = io::read_matrix(&mut buf.as_slice()).expect("fresh buffer parses");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn scatter_add_conserves_mass(m in matrix(10)) {
        let idx: Vec<usize> = (0..m.rows()).collect();
        let mut dst = Matrix::zeros(m.rows(), m.cols());
        dst.scatter_add_rows(&idx, &m);
        prop_assert!((dst.sum() - m.sum()).abs() < 1e-3 * (1.0 + m.sum().abs()));
    }
}

// ---------------------------------------------------------------------------
// Store-dtype cast kernels (`ppgnn_tensor::cast`)
// ---------------------------------------------------------------------------

/// Strategy: a `(values, cols)` chunk whose column count straddles the
/// 8-wide SIMD body and its scalar tail. Values mix the everyday feature
/// range with tiny magnitudes so the half formats see subnormals.
fn chunk(max_abs: f32) -> impl Strategy<Value = (Vec<f32>, usize)> {
    (1usize..=6, 1usize..=19).prop_flat_map(move |(rows, cols)| {
        // The vendored proptest has no `prop_oneof!`; a drawn class byte
        // picks between everyday magnitudes, tiny ones, and exact zero.
        let value = (-1.0f32..1.0, 0u8..6).prop_map(move |(v, class)| match class {
            0 => v * 1e-5,
            1 => 0.0,
            _ => v * max_abs,
        });
        (prop::collection::vec(value, rows * cols), Just(cols))
    })
}

fn roundtrip(dtype: StoreDtype, values: &[f32], cols: usize) -> Vec<f32> {
    let rows = values.len() / cols;
    let mut enc = vec![0u8; rows * dtype.encoded_row_bytes(cols)];
    cast::encode_rows(dtype, values, cols, &mut enc);
    let mut dec = vec![0.0f32; values.len()];
    cast::decode_rows(dtype, &enc, cols, &mut dec);
    dec
}

proptest! {
    /// `f32` is the identity encoding: bit-exact round trip.
    #[test]
    fn f32_store_roundtrip_is_bit_exact((values, cols) in chunk(1e30)) {
        for (v, d) in values.iter().zip(roundtrip(StoreDtype::F32, &values, cols)) {
            prop_assert_eq!(v.to_bits(), d.to_bits());
        }
    }

    /// `f16` keeps 11 significand bits: round-to-nearest error is at most
    /// half an ulp (`|v|·2⁻¹¹` for normals), plus the `2⁻²⁵` half-ulp of
    /// the subnormal floor.
    #[test]
    fn f16_store_roundtrip_within_half_ulp((values, cols) in chunk(30_000.0)) {
        for (v, d) in values.iter().zip(roundtrip(StoreDtype::F16, &values, cols)) {
            let tol = v.abs() / 2048.0 + 3.1e-8;
            prop_assert!((v - d).abs() <= tol, "{v} -> {d}");
        }
    }

    /// `bf16` keeps 8 significand bits but the full f32 exponent range:
    /// error at most `|v|·2⁻⁸` at any magnitude.
    #[test]
    fn bf16_store_roundtrip_within_half_ulp((values, cols) in chunk(1e30)) {
        for (v, d) in values.iter().zip(roundtrip(StoreDtype::Bf16, &values, cols)) {
            let tol = v.abs() / 256.0 + 1e-40;
            prop_assert!((v - d).abs() <= tol, "{v} -> {d}");
        }
    }

    /// `int8` quantizes each row onto a 256-step grid over its own
    /// `[min, max]` range: error at most half a step (plus the f32
    /// rounding of the affine map itself).
    #[test]
    fn int8_store_roundtrip_within_half_step((values, cols) in chunk(1e4)) {
        let decoded = roundtrip(StoreDtype::Int8, &values, cols);
        for (row, drow) in values.chunks_exact(cols).zip(decoded.chunks_exact(cols)) {
            let (scale, zero) = cast::scalar::int8_row_params(row);
            let tol = scale * 0.5001 + 2.0 * f32::EPSILON * (zero.abs() + scale * 255.0);
            for (v, d) in row.iter().zip(drow) {
                prop_assert!((v - d).abs() <= tol, "{v} -> {d} (scale {scale})");
            }
        }
    }

    /// Degenerate rows — constant, all-zero, or so tight the step
    /// underflows — take the `scale = 0` path and decode **exactly**.
    #[test]
    fn int8_constant_rows_decode_exactly(
        c in (-1e30f32..1e30, 0u8..5).prop_map(|(v, z)| if z == 0 { 0.0 } else { v }),
        cols in 1usize..=19,
        rows in 1usize..=4,
    ) {
        let values = vec![c; rows * cols];
        for (v, d) in values.iter().zip(roundtrip(StoreDtype::Int8, &values, cols)) {
            prop_assert_eq!(v.to_bits(), d.to_bits());
        }
    }

    /// The dispatched (possibly SIMD) kernels must be **bit-identical**
    /// to the forced-scalar reference on every dtype: same encoded
    /// bytes, same decoded f32 bit patterns. This is what makes stores
    /// portable across machines with different SIMD support.
    #[test]
    fn dispatched_cast_kernels_match_scalar_bitwise((values, cols) in chunk(60_000.0)) {
        let rows = values.len() / cols;
        for dtype in StoreDtype::ALL {
            let nbytes = rows * dtype.encoded_row_bytes(cols);
            let (mut fast, mut slow) = (vec![0u8; nbytes], vec![0u8; nbytes]);
            cast::encode_rows(dtype, &values, cols, &mut fast);
            cast::scalar::encode_rows(dtype, &values, cols, &mut slow);
            prop_assert_eq!(&fast, &slow, "{} encode ({} active)", dtype, cast::active_backend_name());
            let (mut dfast, mut dslow) = (vec![0.0f32; values.len()], vec![0.0f32; values.len()]);
            cast::decode_rows(dtype, &fast, cols, &mut dfast);
            cast::scalar::decode_rows(dtype, &fast, cols, &mut dslow);
            for (a, b) in dfast.iter().zip(&dslow) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} decode", dtype);
            }
        }
    }
}
