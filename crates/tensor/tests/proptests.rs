//! Property-based tests for the tensor kernels.

use ppgnn_tensor::{
    block, compiled_kernels, io, matmul, matmul_batched, matmul_batched_into, matmul_nt, matmul_tn,
    reference, set_parallel_threshold, Matrix,
};
use proptest::prelude::*;

/// Serializes property cases that flip the global parallel threshold, so
/// concurrently running cases don't observe each other's overrides
/// mid-kernel (any threshold is *correct*, but each case wants to pin the
/// path it claims to exercise).
static KNOB_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Strategy: a matrix with dimensions in `1..=max_dim` and small values.
fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-8.0f32..8.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized by construction"))
    })
}

/// Strategy: a compatible (A, B) pair for `A · B`.
fn matmul_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        (
            prop::collection::vec(-4.0f32..4.0, m * k),
            prop::collection::vec(-4.0f32..4.0, k * n),
        )
            .prop_map(move |(a, b)| {
                (
                    Matrix::from_vec(m, k, a).expect("sized"),
                    Matrix::from_vec(k, n, b).expect("sized"),
                )
            })
    })
}

/// Deterministic LCG-filled matrix in `±0.25` — drawing tens of
/// thousands of proptest values per KC-boundary case would dominate the
/// suite's runtime, and the interesting structure here is the *shape*.
fn seeded_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5) * 0.5
    })
}

/// Shapes straddling every packing boundary of the blocked GEMM: `m`
/// around the `MR` register-tile edge, `n` around `NR` — wide enough to
/// also cross the AVX-512 kernel's doubled `2*NR` tile — and `k` either
/// small or hugging the `KC` panel edges (one and two full panels ± 1).
fn edge_tail_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (
        1usize..=2 * block::MR + 1,
        1usize..=4 * block::NR + 1,
        0usize..3,
        1usize..=2 * block::NR + 1,
    )
        .prop_map(|(m, n, k_class, k_small)| {
            let k = match k_class {
                0 => k_small,
                1 => block::DEFAULT_KC - 1 + k_small % 3,
                _ => 2 * block::DEFAULT_KC - 1 + k_small % 3,
            };
            (m, n, k)
        })
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f64;
            for k in 0..a.cols() {
                acc += a.get(i, k) as f64 * b.get(k, j) as f64;
            }
            c.set(i, j, acc as f32);
        }
    }
    c
}

proptest! {
    #[test]
    fn packed_kernels_match_retained_reference_at_edge_tails(
        (m, n, k) in edge_tail_dims(),
        seed in 0u64..1_000_000,
        pooled in 0u8..2,
    ) {
        let a = seeded_mat(m, k, seed);
        let b = seeded_mat(k, n, seed ^ 0x9e3779b97f4a7c15);
        let at = a.transpose();
        let bt = b.transpose();
        // The retained naive reference is the pre-blocking kernel; every
        // compiled-in micro-kernel this host can run must match it on
        // both execution paths.
        let expect = reference::matmul(&a, &b);
        let guard = KNOB_LOCK.lock().unwrap();
        set_parallel_threshold(if pooled == 1 { 0 } else { usize::MAX });
        for &kind in compiled_kernels() {
            if !kind.is_supported() {
                continue;
            }
            block::set_kernel(Some(kind));
            let nn = matmul(&a, &b);
            let tn = matmul_tn(&at, &b);
            let nt = matmul_nt(&a, &bt);
            let name = kind.name();
            prop_assert!(nn.max_abs_diff(&expect) < 1e-4, "{name} nn {m}x{k}x{n} pooled={pooled}");
            prop_assert!(tn.max_abs_diff(&expect) < 1e-4, "{name} tn {m}x{k}x{n} pooled={pooled}");
            prop_assert!(nt.max_abs_diff(&expect) < 1e-4, "{name} nt {m}x{k}x{n} pooled={pooled}");
        }
        block::set_kernel(None);
        set_parallel_threshold(ppgnn_tensor::pool::DEFAULT_PARALLEL_THRESHOLD);
        drop(guard);
    }

    /// The batched small-GEMM path must agree with per-head looped matmul
    /// on every compiled-in kernel, at HOGA-like head counts (1, 3, 17)
    /// and shapes straddling the register-tile tails.
    #[test]
    fn batched_path_matches_looped_per_head_on_every_kernel(
        heads_class in 0usize..3,
        m in 1usize..=block::MR + 1,
        k in 1usize..=9,
        n in 1usize..=2 * block::NR + 1,
        seed in 0u64..1_000_000,
    ) {
        let heads = [1usize, 3, 17][heads_class];
        let a: Vec<Matrix> = (0..heads).map(|h| seeded_mat(m, k, seed ^ h as u64)).collect();
        let b: Vec<Matrix> = (0..heads)
            .map(|h| seeded_mat(k, n, seed ^ 0x9e3779b97f4a7c15 ^ h as u64))
            .collect();
        let guard = KNOB_LOCK.lock().unwrap();
        for &kind in compiled_kernels() {
            if !kind.is_supported() {
                continue;
            }
            block::set_kernel(Some(kind));
            let looped: Vec<Matrix> = a.iter().zip(&b).map(|(ah, bh)| matmul(ah, bh)).collect();
            let batched = matmul_batched(&a, &b);
            let mut into: Vec<Matrix> = (0..heads).map(|_| Matrix::zeros(m, n)).collect();
            matmul_batched_into(&a, &b, &mut into);
            let name = kind.name();
            for h in 0..heads {
                prop_assert_eq!(
                    &batched[h], &looped[h],
                    "{} batched head {}/{} {}x{}x{}", name, h, heads, m, k, n
                );
                prop_assert_eq!(
                    &into[h], &looped[h],
                    "{} batched_into head {}/{} {}x{}x{}", name, h, heads, m, k, n
                );
            }
        }
        block::set_kernel(None);
        drop(guard);
    }

    #[test]
    fn gemm_matches_naive((a, b) in matmul_pair(12)) {
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    #[test]
    fn tn_equals_explicit_transpose((a, b) in matmul_pair(10)) {
        // A: m x k. Use Aᵀ (k x m) as the `tn` operand so shapes line up.
        let at = a.transpose();
        let via_tn = matmul_tn(&at, &b);
        let direct = matmul(&a, &b);
        prop_assert!(via_tn.max_abs_diff(&direct) < 1e-3);
    }

    #[test]
    fn nt_equals_explicit_transpose((a, b) in matmul_pair(10)) {
        let bt = b.transpose();
        let via_nt = matmul_nt(&a, &bt);
        let direct = matmul(&a, &b);
        prop_assert!(via_nt.max_abs_diff(&direct) < 1e-3);
    }

    #[test]
    fn transpose_is_involution(m in matrix(16)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn gather_picks_exact_rows(m in matrix(16), seed in 0u64..1000) {
        let mut idx = Vec::new();
        let mut s = seed;
        for _ in 0..m.rows() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            idx.push((s >> 33) as usize % m.rows());
        }
        let g = m.gather_rows(&idx);
        for (k, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(k), m.row(i));
        }
    }

    #[test]
    fn hstack_hsplit_round_trip(m in matrix(8), parts in 1usize..4) {
        // widen m so cols divide evenly
        let wide = Matrix::hstack(&vec![&m; parts]);
        let split = wide.hsplit(parts);
        for piece in split {
            prop_assert_eq!(piece, m.clone());
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix(12)) {
        let s = m.softmax_rows();
        for row in s.iter_rows() {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn io_round_trip(m in matrix(16)) {
        let mut buf = Vec::new();
        io::write_matrix(&mut buf, &m).expect("write to Vec cannot fail");
        let back = io::read_matrix(&mut buf.as_slice()).expect("fresh buffer parses");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn scatter_add_conserves_mass(m in matrix(10)) {
        let idx: Vec<usize> = (0..m.rows()).collect();
        let mut dst = Matrix::zeros(m.rows(), m.cols());
        dst.scatter_add_rows(&idx, &m);
        prop_assert!((dst.sum() - m.sum()).abs() < 1e-3 * (1.0 + m.sum().abs()));
    }
}
