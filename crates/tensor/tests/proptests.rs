//! Property-based tests for the tensor kernels.

use ppgnn_tensor::{io, matmul, matmul_nt, matmul_tn, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with dimensions in `1..=max_dim` and small values.
fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-8.0f32..8.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized by construction"))
    })
}

/// Strategy: a compatible (A, B) pair for `A · B`.
fn matmul_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        (
            prop::collection::vec(-4.0f32..4.0, m * k),
            prop::collection::vec(-4.0f32..4.0, k * n),
        )
            .prop_map(move |(a, b)| {
                (
                    Matrix::from_vec(m, k, a).expect("sized"),
                    Matrix::from_vec(k, n, b).expect("sized"),
                )
            })
    })
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f64;
            for k in 0..a.cols() {
                acc += a.get(i, k) as f64 * b.get(k, j) as f64;
            }
            c.set(i, j, acc as f32);
        }
    }
    c
}

proptest! {
    #[test]
    fn gemm_matches_naive((a, b) in matmul_pair(12)) {
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    #[test]
    fn tn_equals_explicit_transpose((a, b) in matmul_pair(10)) {
        // A: m x k. Use Aᵀ (k x m) as the `tn` operand so shapes line up.
        let at = a.transpose();
        let via_tn = matmul_tn(&at, &b);
        let direct = matmul(&a, &b);
        prop_assert!(via_tn.max_abs_diff(&direct) < 1e-3);
    }

    #[test]
    fn nt_equals_explicit_transpose((a, b) in matmul_pair(10)) {
        let bt = b.transpose();
        let via_nt = matmul_nt(&a, &bt);
        let direct = matmul(&a, &b);
        prop_assert!(via_nt.max_abs_diff(&direct) < 1e-3);
    }

    #[test]
    fn transpose_is_involution(m in matrix(16)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn gather_picks_exact_rows(m in matrix(16), seed in 0u64..1000) {
        let mut idx = Vec::new();
        let mut s = seed;
        for _ in 0..m.rows() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            idx.push((s >> 33) as usize % m.rows());
        }
        let g = m.gather_rows(&idx);
        for (k, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(k), m.row(i));
        }
    }

    #[test]
    fn hstack_hsplit_round_trip(m in matrix(8), parts in 1usize..4) {
        // widen m so cols divide evenly
        let wide = Matrix::hstack(&vec![&m; parts]);
        let split = wide.hsplit(parts);
        for piece in split {
            prop_assert_eq!(piece, m.clone());
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix(12)) {
        let s = m.softmax_rows();
        for row in s.iter_rows() {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn io_round_trip(m in matrix(16)) {
        let mut buf = Vec::new();
        io::write_matrix(&mut buf, &m).expect("write to Vec cannot fail");
        let back = io::read_matrix(&mut buf.as_slice()).expect("fresh buffer parses");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn scatter_add_conserves_mass(m in matrix(10)) {
        let idx: Vec<usize> = (0..m.rows()).collect();
        let mut dst = Matrix::zeros(m.rows(), m.cols());
        dst.scatter_add_rows(&idx, &m);
        prop_assert!((dst.sum() - m.sum()).abs() < 1e-3 * (1.0 + m.sum().abs()));
    }
}
