//! The metrics registry: named atomic counters and log₂-bucketed
//! latency histograms with percentile readout.
//!
//! Metrics are declared as `static` items at their recording site
//! (`static MADDS: Counter = Counter::new("gemm.madds");`) and register
//! themselves into a process-global registry on first *enabled* record,
//! so readout code can enumerate every metric the run actually touched
//! without a central declaration list. All recording is gated on
//! [`crate::enabled`]: disabled cost is one relaxed atomic load.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Log₂ bucket count: bucket 0 holds value 0, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`, up to bucket 64 for values ≥ `2^63`.
pub const NUM_BUCKETS: usize = 65;

static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// A named monotonic (or gauge-style, via [`Counter::set`] /
/// [`Counter::record_max`]) atomic counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter; `const` so it can be a `static` at the use site.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            COUNTERS
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(self);
        }
    }

    /// Adds `delta` when telemetry is enabled.
    #[inline]
    pub fn add(&'static self, delta: u64) {
        if !crate::enabled() {
            return;
        }
        self.register();
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the counter to `v` if larger (high-water marks), when
    /// telemetry is enabled.
    #[inline]
    pub fn record_max(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.register();
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Overwrites the counter (gauges published at export time), when
    /// telemetry is enabled.
    #[inline]
    pub fn set(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.register();
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket index of `v`: 0 for 0, else `64 - leading_zeros(v)` — so
/// `v ∈ [2^(i-1), 2^i)` lands in bucket `i`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper edge of bucket `i` — the value percentile queries
/// report for samples landing in that bucket.
pub fn bucket_upper_edge(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// A named log₂-bucketed histogram with count/sum and percentile
/// readout. Percentiles report the matched bucket's inclusive upper
/// edge, so they over- rather than under-estimate by at most 2×.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    /// A new histogram; `const` so it can be a `static` at the use site.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            HISTOGRAMS
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(self);
        }
    }

    /// Records one sample when telemetry is enabled.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.register();
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the upper edge of the first
    /// bucket whose cumulative count reaches `⌈q·count⌉`; 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_upper_edge(i);
            }
        }
        bucket_upper_edge(NUM_BUCKETS - 1)
    }
}

/// Point-in-time readout of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: &'static str,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// 50th percentile (bucket upper edge).
    pub p50: u64,
    /// 90th percentile (bucket upper edge).
    pub p90: u64,
    /// 99th percentile (bucket upper edge).
    pub p99: u64,
}

/// Every registered counter as `(name, value)`, sorted by name.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = COUNTERS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|c| (c.name, c.get()))
        .collect();
    out.sort_by_key(|&(n, _)| n);
    out
}

/// Every registered histogram's snapshot, sorted by name.
pub fn histograms_snapshot() -> Vec<HistogramSnapshot> {
    let mut out: Vec<HistogramSnapshot> = HISTOGRAMS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|h| HistogramSnapshot {
            name: h.name,
            count: h.count(),
            sum: h.sum(),
            p50: h.percentile(0.50),
            p90: h.percentile(0.90),
            p99: h.percentile(0.99),
        })
        .collect();
    out.sort_by_key(|s| s.name);
    out
}

/// Zeroes every registered counter and histogram (registrations persist).
pub fn reset_metrics() {
    for c in COUNTERS.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in HISTOGRAMS.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Human-readable metrics readout: one line per counter, one per
/// histogram with count/sum and p50/p90/p99.
pub fn metrics_summary() -> String {
    let mut out = String::from("counters:\n");
    for (name, value) in counters_snapshot() {
        let _ = writeln!(out, "  {name:<40} {value}");
    }
    out.push_str("histograms (count | sum | p50 | p90 | p99):\n");
    for s in histograms_snapshot() {
        let _ = writeln!(
            out,
            "  {:<40} {} | {} | {} | {} | {}",
            s.name, s.count, s.sum, s.p50, s.p90, s.p99
        );
    }
    out
}

/// Machine-readable metrics readout as a JSON object
/// `{"counters":{...},"histograms":{name:{count,sum,p50,p90,p99}}}` —
/// the `telemetry` section the bench artifacts embed. `indent` prefixes
/// every line (for splicing into a hand-rolled artifact).
pub fn metrics_json(indent: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{indent}{{");
    let _ = writeln!(out, "{indent}  \"counters\": {{");
    let counters = counters_snapshot();
    for (i, (name, value)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        let _ = writeln!(out, "{indent}    \"{name}\": {value}{comma}");
    }
    let _ = writeln!(out, "{indent}  }},");
    let _ = writeln!(out, "{indent}  \"histograms\": {{");
    let hists = histograms_snapshot();
    for (i, s) in hists.iter().enumerate() {
        let comma = if i + 1 < hists.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "{indent}    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}{comma}",
            s.name, s.count, s.sum, s.p50, s.p90, s.p99
        );
    }
    let _ = writeln!(out, "{indent}  }}");
    let _ = write!(out, "{indent}}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn bucket_index_and_edges_cover_the_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(1), 1);
        assert_eq!(bucket_upper_edge(2), 3);
        assert_eq!(bucket_upper_edge(3), 7);
        assert_eq!(bucket_upper_edge(64), u64::MAX);
        // Every value's bucket edge is >= the value (percentiles
        // over-estimate, never under-estimate).
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 1023, 1024, 1025] {
            assert!(bucket_upper_edge(bucket_index(v)) >= v, "{v}");
        }
    }

    #[test]
    fn counters_gate_on_the_enable_switch() {
        let _guard = test_lock::hold();
        static C: Counter = Counter::new("test.gated_counter");
        crate::set_enabled(false);
        C.add(5);
        assert_eq!(C.get(), 0);
        crate::set_enabled(true);
        C.add(5);
        C.add(2);
        C.record_max(3); // below current 7: no-op
        assert_eq!(C.get(), 7);
        C.record_max(100);
        assert_eq!(C.get(), 100);
        crate::set_enabled(false);
        assert!(counters_snapshot()
            .iter()
            .any(|&(n, v)| n == "test.gated_counter" && v == 100));
        C.value.store(0, Ordering::Relaxed);
    }

    #[test]
    fn histogram_percentiles_at_bucket_edges() {
        let _guard = test_lock::hold();
        static H: Histogram = Histogram::new("test.edges_hist");
        crate::set_enabled(true);
        // Samples 1, 2, 4 land in buckets 1, 2, 3 (edges 1, 3, 7).
        H.record(1);
        H.record(2);
        H.record(4);
        crate::set_enabled(false);
        assert_eq!(H.count(), 3);
        assert_eq!(H.sum(), 7);
        // p50 → target ⌈1.5⌉ = 2nd sample → bucket 2 → edge 3.
        assert_eq!(H.percentile(0.50), 3);
        // p90/p99 → 3rd sample → bucket 3 → edge 7.
        assert_eq!(H.percentile(0.90), 7);
        assert_eq!(H.percentile(0.99), 7);
        // p at or below 1/count → first sample → edge 1.
        assert_eq!(H.percentile(0.333), 1);
        // Exact powers of two sit in the bucket whose edge is 2·v − 1.
        static H2: Histogram = Histogram::new("test.pow2_hist");
        crate::set_enabled(true);
        H2.record(8);
        crate::set_enabled(false);
        assert_eq!(H2.percentile(0.5), 15);
        // Zero-only histograms report edge 0 everywhere.
        static H0: Histogram = Histogram::new("test.zero_hist");
        crate::set_enabled(true);
        H0.record(0);
        crate::set_enabled(false);
        assert_eq!(H0.percentile(0.99), 0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        static H: Histogram = Histogram::new("test.empty_hist");
        assert_eq!(H.percentile(0.5), 0);
        assert_eq!(H.count(), 0);
    }

    #[test]
    fn metrics_json_is_shaped() {
        let _guard = test_lock::hold();
        static C: Counter = Counter::new("test.json_counter");
        static H: Histogram = Histogram::new("test.json_hist");
        crate::set_enabled(true);
        C.add(9);
        H.record(100);
        crate::set_enabled(false);
        let json = metrics_json("  ");
        assert!(json.contains("\"counters\": {"));
        assert!(json.contains("\"test.json_counter\": 9"));
        assert!(json.contains("\"test.json_hist\": {\"count\": 1,"));
        assert!(json.trim_start().starts_with('{'));
        assert!(json.ends_with('}'));
        let text = metrics_summary();
        assert!(text.contains("test.json_counter"));
        C.value.store(0, Ordering::Relaxed);
    }
}
