//! Unified tracing and metrics substrate for the PP-GNN pipeline.
//!
//! The source paper is first a *characterization* study: its conclusions
//! come from attributing wall time to pipeline stages (diffusion SpMM,
//! host-side data movement, dense training compute). This crate is the
//! reproduction's equivalent instrument — one process-wide switch, two
//! recording primitives, and export plumbing:
//!
//! * **Span tracer** ([`span`] / [`span_with`]) — RAII guards that record
//!   `{name, tid, start_ns, dur_ns, args}` events into per-thread ring
//!   buffers, exported as Chrome `trace_event` JSON
//!   ([`chrome_trace_json`], loadable in `chrome://tracing` / Perfetto)
//!   or a hierarchical text summary ([`trace_summary`]).
//! * **Metrics registry** ([`Counter`] / [`Histogram`]) — named atomic
//!   counters and log₂-bucketed latency histograms with p50/p90/p99
//!   readout ([`metrics_summary`], [`metrics_json`]), declared as
//!   `static`s at the recording site and registered lazily on first use.
//!
//! Everything is gated on one process-global switch: the `PPGNN_TRACE`
//! environment knob (or [`set_enabled`] programmatically). **Disabled
//! instrumentation costs one relaxed atomic load** — no allocation, no
//! clock read, no lock — so span guards and counter bumps may sit on
//! paths that the residency suite pins allocation-free. When enabled,
//! recording allocates only on first touch (ring buffers and registry
//! slots are grown once per thread / metric) and then runs
//! allocation-free too.
//!
//! This crate sits at the bottom of the workspace dependency order
//! (below `ppgnn-tensor`), so it deliberately has **zero dependencies**
//! and reads its two environment knobs directly instead of through
//! `ppgnn_tensor::knobs` — the same arrangement as the vendored proptest
//! shim's `PPGNN_PROPTEST_SEED`. Both knobs are still declared in the
//! registry so the generated EXPERIMENTS.md table stays complete, and
//! this file is exempted from the `env_knob` lint in the
//! `ppgnn-analyze` config.

#![deny(missing_docs)]

mod metrics;
mod trace;

pub use metrics::{
    counters_snapshot, histograms_snapshot, metrics_json, metrics_summary, reset_metrics, Counter,
    Histogram, HistogramSnapshot,
};
pub use trace::{
    chrome_trace_json, dropped_events, reset_trace, span, span_with, take_events, trace_summary,
    write_chrome_trace, SpanEvent, SpanGuard, SPAN_ARGS,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Environment knob that switches telemetry on (`"1"`).
pub const TRACE_ENV: &str = "PPGNN_TRACE";
/// Environment knob naming the Chrome-trace output path.
pub const TRACE_OUT_ENV: &str = "PPGNN_TRACE_OUT";
/// Default Chrome-trace output path when `PPGNN_TRACE_OUT` is unset.
pub const DEFAULT_TRACE_OUT: &str = "trace.json";

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Tri-state switch: uninitialized until the first [`enabled`] call reads
/// the environment, then latched off/on (still overridable via
/// [`set_enabled`]).
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether telemetry is recording. This is the single gate every
/// recording primitive checks first; on the steady state it is one
/// relaxed atomic load and a compare.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// One-time slow path of [`enabled`]: latch the `PPGNN_TRACE` value.
#[cold]
fn init_from_env() -> bool {
    let on = std::env::var(TRACE_ENV).is_ok_and(|v| v == "1");
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Programmatically switches telemetry on or off, overriding
/// `PPGNN_TRACE`. Tests and profiling binaries use this instead of
/// mutating the process environment.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// The Chrome-trace output path: `PPGNN_TRACE_OUT` if set and non-empty,
/// else [`DEFAULT_TRACE_OUT`].
pub fn trace_out_path() -> String {
    std::env::var(TRACE_OUT_ENV)
        .ok()
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| DEFAULT_TRACE_OUT.to_string())
}

/// Process-wide monotonic epoch all span timestamps are relative to.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process's telemetry epoch (first call).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
pub(crate) mod test_lock {
    //! The enable switch, rings, and metric registries are process-global;
    //! tests that toggle or read them serialize on this lock.
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    /// Acquires the global test lock (poison-tolerant).
    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_overrides_and_latches() {
        let _guard = test_lock::hold();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn trace_out_defaults_to_trace_json() {
        // PPGNN_TRACE_OUT is not set in the test environment.
        if std::env::var(TRACE_OUT_ENV).is_err() {
            assert_eq!(trace_out_path(), DEFAULT_TRACE_OUT);
        }
    }
}
