//! The span tracer: RAII guards, per-thread ring buffers, Chrome
//! `trace_event` export, and the hierarchical text summary.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// Maximum key/value argument pairs a span carries. Fixed so guards are
/// plain `Copy` data with no heap side — unused slots have an empty key.
pub const SPAN_ARGS: usize = 2;

/// Per-thread ring capacity in events. At ~48 bytes per event this is
/// under 1 MiB per recording thread; overflow overwrites the oldest
/// events and counts them as dropped.
const RING_CAPACITY: usize = 1 << 14;

/// One completed span, as stored in the ring buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static, by construction of the API).
    pub name: &'static str,
    /// Telemetry thread id (sequential, assigned at first record).
    pub tid: u32,
    /// Start, nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Up to [`SPAN_ARGS`] key/value pairs; empty keys are unused slots.
    pub args: [(&'static str, u64); SPAN_ARGS],
}

/// Fixed-capacity overwrite-oldest event buffer, one per thread.
struct Ring {
    events: Vec<SpanEvent>,
    /// Next overwrite position once `events` is at capacity.
    head: usize,
    /// Events lost to overwriting.
    dropped: u64,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, e: SpanEvent) {
        if self.events.len() < RING_CAPACITY {
            // Grow-once path: reserve the full capacity on first use so
            // steady-state recording never reallocates.
            if self.events.is_empty() {
                self.events.reserve_exact(RING_CAPACITY);
            }
            self.events.push(e);
        } else {
            self.events[self.head] = e;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }
}

/// Every thread's ring, for export from any thread.
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static LOCAL: (u32, Arc<Mutex<Ring>>) = register_thread();
}

fn register_thread() -> (u32, Arc<Mutex<Ring>>) {
    let ring = Arc::new(Mutex::new(Ring::new()));
    RINGS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&ring));
    (NEXT_TID.fetch_add(1, Ordering::Relaxed), ring)
}

fn record(name: &'static str, start_ns: u64, dur_ns: u64, args: [(&'static str, u64); SPAN_ARGS]) {
    LOCAL.with(|(tid, ring)| {
        ring.lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(SpanEvent {
                name,
                tid: *tid,
                start_ns,
                dur_ns,
                args,
            });
    });
}

/// RAII span guard: records one [`SpanEvent`] covering its lifetime when
/// telemetry is enabled, and is a pure no-op (no clock read, no lock)
/// when disabled.
#[must_use = "a span measures its guard's lifetime; binding it to _ drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    args: [(&'static str, u64); SPAN_ARGS],
    active: bool,
}

/// Opens a span named `name`; the span closes (and records) when the
/// returned guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, &[])
}

/// Opens a span carrying up to [`SPAN_ARGS`] key/value arguments
/// (extras are silently dropped).
#[inline]
pub fn span_with(name: &'static str, args: &[(&'static str, u64)]) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            name,
            start_ns: 0,
            args: [("", 0); SPAN_ARGS],
            active: false,
        };
    }
    let mut slots = [("", 0u64); SPAN_ARGS];
    for (slot, kv) in slots.iter_mut().zip(args) {
        *slot = *kv;
    }
    SpanGuard {
        name,
        start_ns: crate::now_ns(),
        args: slots,
        active: true,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur = crate::now_ns().saturating_sub(self.start_ns);
        record(self.name, self.start_ns, dur, self.args);
    }
}

/// Copies every recorded event out of every thread's ring, sorted by
/// `(start_ns, tid)` — globally monotonic start order.
pub fn take_events() -> Vec<SpanEvent> {
    let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::new();
    for ring in rings.iter() {
        let r = ring.lock().unwrap_or_else(|e| e.into_inner());
        out.extend_from_slice(&r.events);
    }
    out.sort_by_key(|e| (e.start_ns, e.tid));
    out
}

/// Total events lost to ring overwriting, across threads.
pub fn dropped_events() -> u64 {
    let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
    rings
        .iter()
        .map(|r| r.lock().unwrap_or_else(|e| e.into_inner()).dropped)
        .sum()
}

/// Clears every ring (events and drop counts). Thread registrations and
/// tids persist.
pub fn reset_trace() {
    let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
    for ring in rings.iter() {
        let mut r = ring.lock().unwrap_or_else(|e| e.into_inner());
        r.events.clear();
        r.head = 0;
        r.dropped = 0;
    }
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders every recorded span as Chrome `trace_event` JSON — complete
/// (`"ph":"X"`) events with microsecond `ts`/`dur` (3 decimal places, so
/// nanosecond precision survives), sorted by start time. The output
/// loads in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json() -> String {
    let events = take_events();
    let mut out = String::with_capacity(events.len() * 110 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        push_json_escaped(&mut out, e.name);
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{",
            e.tid,
            e.start_ns / 1000,
            e.start_ns % 1000,
            e.dur_ns / 1000,
            e.dur_ns % 1000,
        );
        let mut first = true;
        for &(k, v) in &e.args {
            if k.is_empty() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            push_json_escaped(&mut out, k);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Writes [`chrome_trace_json`] to `path`, or to [`crate::trace_out_path`]
/// when `path` is `None`. Returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_chrome_trace(path: Option<&Path>) -> io::Result<PathBuf> {
    let path = match path {
        Some(p) => p.to_path_buf(),
        None => PathBuf::from(crate::trace_out_path()),
    };
    std::fs::write(&path, chrome_trace_json())?;
    Ok(path)
}

/// Renders a hierarchical text summary of the recorded spans: per-thread
/// containment rebuilds the nesting, identical paths aggregate, and each
/// line shows total time, call count, and mean duration.
pub fn trace_summary() -> String {
    let mut events = take_events();
    // Parents before their children: same start → longer span first.
    events.sort_by_key(|e| (e.tid, e.start_ns, std::cmp::Reverse(e.dur_ns)));

    use std::collections::BTreeMap;
    let mut agg: BTreeMap<Vec<&'static str>, (u64, u64)> = BTreeMap::new();
    let mut stack: Vec<(u64, &'static str)> = Vec::new();
    let mut cur_tid = u32::MAX;
    for e in &events {
        if e.tid != cur_tid {
            stack.clear();
            cur_tid = e.tid;
        }
        while let Some(&(end, _)) = stack.last() {
            if e.start_ns >= end {
                stack.pop();
            } else {
                break;
            }
        }
        stack.push((e.start_ns + e.dur_ns, e.name));
        let path: Vec<&'static str> = stack.iter().map(|&(_, n)| n).collect();
        let entry = agg.entry(path).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += e.dur_ns;
    }

    let mut out = String::from("span summary (total ms | calls | mean µs)\n");
    for (path, (count, total_ns)) in &agg {
        let depth = path.len() - 1;
        let name = path.last().copied().unwrap_or("");
        let mean_us = *total_ns as f64 / 1e3 / (*count).max(1) as f64;
        let _ = writeln!(
            out,
            "{:indent$}{name:<32} {:>10.3} | {count:>7} | {mean_us:>10.1}",
            "",
            *total_ns as f64 / 1e6,
            indent = depth * 2,
        );
    }
    let dropped = dropped_events();
    if dropped > 0 {
        let _ = writeln!(out, "({dropped} events dropped by ring overflow)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_lock::hold();
        crate::set_enabled(false);
        reset_trace();
        {
            let _s = span("dead");
        }
        assert!(take_events().is_empty());
    }

    #[test]
    fn spans_nest_and_carry_args() {
        let _guard = test_lock::hold();
        crate::set_enabled(true);
        reset_trace();
        {
            let _outer = span("outer");
            for r in 0..3u64 {
                let _inner = span_with("inner", &[("hop", r)]);
            }
        }
        crate::set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 4);
        let outer = events
            .iter()
            .find(|e| e.name == "outer")
            .expect("outer span recorded");
        let inners: Vec<_> = events.iter().filter(|e| e.name == "inner").collect();
        assert_eq!(inners.len(), 3);
        for (i, e) in inners.iter().enumerate() {
            assert_eq!(e.args[0], ("hop", i as u64));
            // Inner spans are contained in the outer span.
            assert!(e.start_ns >= outer.start_ns);
            assert!(e.start_ns + e.dur_ns <= outer.start_ns + outer.dur_ns);
        }
        reset_trace();
    }

    #[test]
    fn chrome_trace_json_has_complete_monotonic_events() {
        let _guard = test_lock::hold();
        crate::set_enabled(true);
        reset_trace();
        {
            let _a = span("alpha");
            let _b = span_with("beta", &[("k", 7)]);
        }
        crate::set_enabled(false);
        let json = chrome_trace_json();
        reset_trace();

        // Envelope and event shape: every event is a complete "X" phase
        // carrying name/pid/tid/ts/dur/args.
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        let event_lines: Vec<&str> = json
            .lines()
            .filter(|l| l.starts_with('{') && l.contains("\"ph\""))
            .collect();
        assert_eq!(event_lines.len(), 2);
        for line in &event_lines {
            for field in [
                "\"name\":",
                "\"ph\":\"X\"",
                "\"pid\":",
                "\"tid\":",
                "\"ts\":",
                "\"dur\":",
                "\"args\":",
            ] {
                assert!(line.contains(field), "missing {field} in {line}");
            }
        }
        assert!(json.contains("\"name\":\"alpha\""));
        assert!(json.contains("\"k\":7"));

        // ts values are monotonic non-decreasing across the file.
        let mut last = f64::MIN;
        for line in &event_lines {
            let ts = line
                .split("\"ts\":")
                .nth(1)
                .and_then(|t| t.split(',').next())
                .and_then(|t| t.parse::<f64>().ok())
                .expect("ts parses as a number");
            assert!(ts >= last, "ts went backwards: {ts} < {last}");
            last = ts;
        }
    }

    #[test]
    fn summary_nests_by_containment() {
        let _guard = test_lock::hold();
        crate::set_enabled(true);
        reset_trace();
        {
            let _outer = span("parent");
            let _inner = span("child");
        }
        crate::set_enabled(false);
        let text = trace_summary();
        reset_trace();
        let parent_line = text
            .lines()
            .find(|l| l.contains("parent"))
            .expect("parent line present");
        let child_line = text
            .lines()
            .find(|l| l.contains("child"))
            .expect("child line present");
        // The child renders indented under its parent.
        assert!(child_line.starts_with("  "));
        assert!(!parent_line.starts_with(' '));
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _guard = test_lock::hold();
        crate::set_enabled(true);
        reset_trace();
        for _ in 0..(RING_CAPACITY + 10) {
            let _s = span("spin");
        }
        crate::set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), RING_CAPACITY);
        assert!(dropped_events() >= 10);
        reset_trace();
    }
}
