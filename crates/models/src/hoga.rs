use ppgnn_nn::{
    Dropout, LayerNorm, Linear, Mode, Module, MultiHeadAttention, Param, Relu, Sequential,
};
use ppgnn_tensor::Matrix;
use rand::Rng;

use crate::pp::{validate_hops, PpModel};

/// HOGA: Hop-Wise Graph Attention (Deng et al. 2024).
///
/// Treats the `R + 1` hop-feature vectors of each node as tokens:
///
/// 1. **per-hop linear embeddings** map each token to the hidden dimension
///    (hop order is semantic for PP-GNNs: under heterophily, hop `r` and
///    hop `r+1` carry different class mappings — a shared projection
///    composed with pooling collapses them, which the `wiki`-style
///    heterophilous profile exposes), plus a learned hop-positional
///    embedding,
/// 2. one multi-head self-attention layer mixes information **across hops**
///    (not across nodes — nodes stay independent, the PP-GNN property),
/// 3. layer norm + a **gated readout** (softmax-weighted sum over hop
///    tokens, with a learned scoring vector) produces the node embedding —
///    the mechanism that lets HOGA *learn which hops matter* instead of
///    averaging noisy hop-0 features in,
/// 4. an MLP head emits logits.
///
/// The most expressive — and most compute-heavy — of the three PP-GNNs,
/// which is exactly the regime where the paper finds data loading ceases to
/// dominate (Figure 5: HOGA 68.7 % loading vs SGC 91.5 %).
pub struct Hoga {
    hops: usize,
    embeds: Vec<Linear>,
    attention: MultiHeadAttention,
    norm: LayerNorm,
    /// Learned hop-positional embeddings (`(R+1) x hidden`).
    pos: ppgnn_nn::Param,
    /// Gated-readout scoring vector (`hidden x 1`).
    gate: ppgnn_nn::Param,
    head: Sequential,
    feature_dim: usize,
    hidden: usize,
    heads: usize,
    num_classes: usize,
    cache: Option<HogaCache>,
    /// Spent cache buffers handed back by `backward` (or an eval forward),
    /// refilled in place by the next forward.
    cache_scratch: Option<HogaCache>,
    /// Retained forward intermediates: per-hop embeddings, the token
    /// matrix, the attention output, and the pooled readout.
    per_hop: Vec<Matrix>,
    embedded: Matrix,
    attended: Matrix,
    pooled: Matrix,
}

#[derive(Default)]
struct HogaCache {
    batch: usize,
    /// Post-norm token features `[b*t, H]`.
    normed: Matrix,
    /// Readout gates `[b, t]` (softmax over tokens).
    gates: Matrix,
}

impl std::fmt::Debug for Hoga {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hoga")
            .field("hops", &self.hops)
            .field("hidden", &self.hidden)
            .field("heads", &self.heads)
            .field("num_classes", &self.num_classes)
            .finish()
    }
}

impl Hoga {
    /// Creates a HOGA model with a single attention layer of `heads` heads
    /// over `hops + 1` tokens of width `hidden`.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero, `hidden % heads != 0`, or
    /// `dropout ∉ [0, 1)`.
    pub fn new(
        hops: usize,
        feature_dim: usize,
        hidden: usize,
        heads: usize,
        num_classes: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            feature_dim > 0 && hidden > 0 && num_classes > 0,
            "dimensions must be positive"
        );
        let tokens = hops + 1;
        Hoga {
            hops,
            embeds: (0..tokens)
                .map(|_| Linear::new(feature_dim, hidden, rng))
                .collect(),
            attention: MultiHeadAttention::new(tokens, hidden, heads, rng),
            norm: LayerNorm::new(hidden),
            pos: ppgnn_nn::Param::new(ppgnn_tensor::init::normal(tokens, hidden, 0.0, 0.02, rng)),
            gate: ppgnn_nn::Param::new(ppgnn_tensor::init::xavier_uniform(hidden, 1, rng)),
            head: Sequential::new(vec![
                Box::new(Dropout::new(dropout, rng.random())),
                Box::new(Linear::new(hidden, hidden, rng)),
                Box::new(Relu::new()),
                Box::new(Linear::new(hidden, num_classes, rng)),
            ]),
            feature_dim,
            hidden,
            heads,
            num_classes,
            cache: None,
            cache_scratch: None,
            per_hop: (0..tokens).map(|_| Matrix::default()).collect(),
            embedded: Matrix::default(),
            attended: Matrix::default(),
            pooled: Matrix::default(),
        }
    }

    /// Hidden (token) width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Attention head count.
    pub fn heads(&self) -> usize {
        self.heads
    }
}

impl PpModel for Hoga {
    fn forward(&mut self, hops: &[Matrix], mode: Mode) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(hops, mode, &mut out);
        out
    }

    fn forward_into(&mut self, hops: &[Matrix], mode: Mode, out: &mut Matrix) {
        let (b, _) = validate_hops(hops, self.hops + 1);
        let t = self.hops + 1;
        // per-hop embeddings, interleaved into token layout [b*t, H]
        for ((e, h), z) in self
            .embeds
            .iter_mut()
            .zip(hops)
            .zip(self.per_hop.iter_mut())
        {
            e.forward_into(h, mode, z);
        }
        self.embedded.resize_to(b * t, self.hidden);
        for i in 0..b {
            for tok in 0..t {
                let dst = self.embedded.row_mut(i * t + tok);
                dst.copy_from_slice(self.per_hop[tok].row(i));
                for (e, &p) in dst.iter_mut().zip(self.pos.value.row(tok)) {
                    *e += p;
                }
            }
        }
        self.attention
            .forward_into(&self.embedded, mode, &mut self.attended); // [b*t, H]
        self.attended.add_assign(&self.embedded); // residual connection
        let mut cb = self.cache_scratch.take().unwrap_or_default();
        self.norm.forward_into(&self.attended, mode, &mut cb.normed); // [b*t, H]

        // Gated readout: score each token, softmax over the node's tokens,
        // pool with the resulting weights.
        let scale = 1.0 / (self.hidden as f32).sqrt();
        let gate_w = self.gate.value.as_slice();
        cb.gates.resize_to(b, t);
        for i in 0..b {
            let row = cb.gates.row_mut(i);
            for (tok, g) in row.iter_mut().enumerate() {
                let z = cb.normed.row(i * t + tok);
                let mut s = 0.0;
                for (zv, wv) in z.iter().zip(gate_w) {
                    s += zv * wv;
                }
                *g = s * scale;
            }
            // softmax in place
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for g in row.iter_mut() {
                *g = (*g - max).exp();
                sum += *g;
            }
            for g in row.iter_mut() {
                *g /= sum;
            }
        }
        self.pooled.resize_to(b, self.hidden);
        self.pooled.fill_zero();
        for i in 0..b {
            for tok in 0..t {
                let g = cb.gates.get(i, tok);
                let src = cb.normed.row(i * t + tok);
                for (p, v) in self.pooled.row_mut(i).iter_mut().zip(src) {
                    *p += v * g;
                }
            }
        }
        cb.batch = b;
        if mode == Mode::Train {
            self.cache = Some(cb);
        } else {
            self.cache_scratch = Some(cb);
        }
        self.head.forward_into(&self.pooled, mode, out);
    }

    // ppgnn-analyze: allow(hot_path_alloc) -- per-batch gradient work
    // buffers (gated-readout and per-hop de-interleave grads); bounded by
    // the residency pin in tests/preprocess_residency.rs.
    fn backward(&mut self, grad_out: &Matrix) {
        let HogaCache {
            batch: b,
            normed,
            gates,
        } = self
            .cache
            .take()
            .expect("Hoga::backward called without a training-mode forward");
        let t = self.hops + 1;
        let g_pooled = self.head.backward(grad_out); // [b, H]

        // Backward through the gated readout:
        //   pooled_i = Σ_r g_ir · z_ir,  g_i = softmax_r(z_ir·w·scale).
        let scale = 1.0 / (self.hidden as f32).sqrt();
        let gate_w = self.gate.value.as_slice();
        let mut g_normed = Matrix::zeros(b * t, self.hidden);
        let mut g_gate = vec![0.0f32; self.hidden];
        for i in 0..b {
            let gp = g_pooled.row(i);
            // dgate_r = gp · z_ir ; value-path dz_ir += g_ir · gp
            let mut dg = vec![0.0f32; t];
            for tok in 0..t {
                let z = normed.row(i * t + tok);
                let mut dot = 0.0;
                for (a, v) in gp.iter().zip(z) {
                    dot += a * v;
                }
                dg[tok] = dot;
                let g = gates.get(i, tok);
                for (o, v) in g_normed.row_mut(i * t + tok).iter_mut().zip(gp) {
                    *o += g * v;
                }
            }
            // softmax backward: ds_r = g_r (dg_r − Σ g·dg)
            let inner: f32 = (0..t).map(|r| gates.get(i, r) * dg[r]).sum();
            for tok in 0..t {
                let ds = gates.get(i, tok) * (dg[tok] - inner) * scale;
                // score path: dz += ds·w ; dw += ds·z
                for (o, wv) in g_normed.row_mut(i * t + tok).iter_mut().zip(gate_w) {
                    *o += ds * wv;
                }
                for (gw, zv) in g_gate.iter_mut().zip(normed.row(i * t + tok)) {
                    *gw += ds * zv;
                }
            }
        }
        for (k, gv) in g_gate.iter().enumerate() {
            let cur = self.gate.grad.get(k, 0);
            self.gate.grad.set(k, 0, cur + gv);
        }
        let g_attended = self.norm.backward(&g_normed);
        let mut g_embedded = self.attention.backward(&g_attended);
        // residual path
        g_embedded.add_assign(&g_attended);
        // positional-embedding grads: sum token grads over the batch;
        // per-hop embedding grads: de-interleave tokens back to hop layout
        let mut per_hop_grads: Vec<Matrix> =
            (0..t).map(|_| Matrix::zeros(b, self.hidden)).collect();
        for i in 0..b {
            for tok in 0..t {
                let src = g_embedded.row(i * t + tok);
                for (o, &v) in self.pos.grad.row_mut(tok).iter_mut().zip(src) {
                    *o += v;
                }
                per_hop_grads[tok].row_mut(i).copy_from_slice(src);
            }
        }
        for (embed, g) in self.embeds.iter_mut().zip(&per_hop_grads) {
            embed.backward(g); // input grads discarded
        }
        self.cache_scratch = Some(HogaCache {
            batch: b,
            normed,
            gates,
        });
    }

    fn params(&mut self) -> Vec<&mut Param> {
        let mut out: Vec<&mut Param> = Vec::new();
        for e in &mut self.embeds {
            out.extend(e.params());
        }
        out.extend(self.attention.params());
        out.extend(self.norm.params());
        out.push(&mut self.pos);
        out.push(&mut self.gate);
        out.extend(self.head.params());
        out
    }

    fn num_hops(&self) -> usize {
        self.hops
    }

    fn name(&self) -> &'static str {
        "hoga"
    }

    fn flops_per_example(&self) -> u64 {
        let t = (self.hops + 1) as u64;
        let f = self.feature_dim as u64;
        let h = self.hidden as u64;
        let c = self.num_classes as u64;
        // embed + 4 attention projections + attention matrix + head, ×3 fwd+bwd
        6 * (t * f * h + 4 * t * h * h + 2 * t * t * h + h * h + h * c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_nn::{metrics, Adam, CrossEntropyLoss, Optimizer};
    use ppgnn_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hop_stack(b: usize, f: usize, hops: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..=hops)
            .map(|_| init::standard_normal(b, f, &mut rng))
            .collect()
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = Hoga::new(3, 6, 8, 2, 5, 0.0, &mut rng);
        let y = m.forward(&hop_stack(4, 6, 3, 1), Mode::Eval);
        assert_eq!(y.shape(), (4, 5));
    }

    #[test]
    fn nodes_are_independent() {
        // PP-GNN property: removing other nodes from the batch must not
        // change a node's logits.
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = Hoga::new(2, 4, 8, 2, 3, 0.0, &mut rng);
        let hops = hop_stack(5, 4, 2, 3);
        let full = m.forward(&hops, Mode::Eval);
        let single: Vec<Matrix> = hops.iter().map(|h| h.slice_rows(2, 3)).collect();
        let alone = m.forward(&single, Mode::Eval);
        assert!(full.slice_rows(2, 3).max_abs_diff(&alone) < 1e-5);
    }

    #[test]
    fn every_hop_influences_the_output() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = Hoga::new(2, 4, 8, 2, 3, 0.0, &mut rng);
        let hops = hop_stack(3, 4, 2, 5);
        let base = m.forward(&hops, Mode::Eval);
        for r in 0..3 {
            let mut p = hops.clone();
            p[r].scale(3.0);
            assert!(
                m.forward(&p, Mode::Eval).max_abs_diff(&base) > 1e-6,
                "hop {r} inert"
            );
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = Hoga::new(1, 3, 4, 2, 2, 0.0, &mut rng);
        let hops = hop_stack(3, 3, 1, 7);
        let labels = [0u32, 1, 0];
        let logits = m.forward(&hops, Mode::Train);
        let (_, g) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
        m.zero_grad();
        m.backward(&g);
        let grads: Vec<Matrix> = m.params().iter().map(|p| p.grad.clone()).collect();
        // Smaller step than the other models: the gated softmax readout has
        // high curvature, and central differences at 1e-2 pick it up.
        let eps = 4e-3f32;
        let num_params = m.params().len();
        for pi in 0..num_params {
            let len = m.params()[pi].len();
            let stride = (len / 5).max(1);
            let mut k = 0;
            while k < len {
                let orig = m.params()[pi].value.as_slice()[k];
                m.params()[pi].value.as_mut_slice()[k] = orig + eps;
                let lp = CrossEntropyLoss.loss(&m.forward(&hops, Mode::Train), &labels);
                m.params()[pi].value.as_mut_slice()[k] = orig - eps;
                let lm = CrossEntropyLoss.loss(&m.forward(&hops, Mode::Train), &labels);
                m.params()[pi].value.as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[pi].as_slice()[k];
                let scale = numeric.abs().max(analytic.abs()).max(5e-2);
                assert!(
                    (numeric - analytic).abs() / scale < 6e-2,
                    "param {pi}[{k}]: {numeric} vs {analytic}"
                );
                k += stride;
            }
        }
    }

    #[test]
    fn learns_hop_interaction_task() {
        // Same XOR-across-hops task SIGN passes; HOGA must combine tokens.
        let mut rng = StdRng::seed_from_u64(8);
        let mut m = Hoga::new(1, 1, 16, 2, 2, 0.0, &mut rng);
        let mut opt = Adam::new(0.03);
        let h0 = Matrix::from_rows(&[&[0.0], &[0.0], &[1.0], &[1.0]]);
        let h1 = Matrix::from_rows(&[&[0.0], &[1.0], &[0.0], &[1.0]]);
        let labels = [0u32, 1, 1, 0];
        let hops = vec![h0, h1];
        for _ in 0..500 {
            let logits = m.forward(&hops, Mode::Train);
            let (_, g) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
            m.zero_grad();
            m.backward(&g);
            opt.step(&mut m.params());
        }
        let logits = m.forward(&hops, Mode::Eval);
        assert_eq!(
            metrics::accuracy(&logits, &labels),
            1.0,
            "failed to learn XOR"
        );
    }
}
