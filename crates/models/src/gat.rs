use ppgnn_nn::{Mode, Param};
use ppgnn_sampler::{Block, MiniBatch};
use ppgnn_tensor::{init, matmul, matmul_nt, matmul_tn, Matrix};
use rand::Rng;

use crate::mp::{scatter_seed_grad, MpModel};

const LEAKY_SLOPE: f32 = 0.2;

/// Graph Attention Network (Veličković et al. 2018) over sampled blocks.
///
/// Per layer and head `k`: `e_ij = LeakyReLU(a_dstᵏ·zᵢ + a_srcᵏ·zⱼ)` with
/// `z = h W`, softmax-normalized over the sampled neighborhood **plus a
/// self edge**, then `h'_i = Σ_j α_ij z_j`. Hidden layers concatenate heads
/// and apply ELU; the output layer averages heads into class logits. This
/// is the accuracy-leaning MP-GNN baseline of the paper (hidden 128 × 4
/// heads at full scale).
pub struct Gat {
    layers: Vec<GatLayer>,
    caches: Vec<Option<GatCache>>,
    elu_caches: Vec<Option<Matrix>>,
    seed_local: Vec<usize>,
    last_num_dst: usize,
}

struct GatLayer {
    /// `in_dim x (heads * head_dim)` projection.
    w: Param,
    /// `heads x head_dim` source attention vectors.
    a_src: Param,
    /// `heads x head_dim` destination attention vectors.
    a_dst: Param,
    /// Output bias (`1 x out_dim`).
    bias: Param,
    heads: usize,
    head_dim: usize,
    /// `true` → concat heads (hidden layers); `false` → average (output).
    concat: bool,
}

struct GatCache {
    block: Block,
    h_src: Matrix,
    z: Matrix,
    /// Per (dst, head): attention edge list `(src_local, alpha, pre_leaky)`.
    edges: Vec<Vec<(usize, f32, f32)>>,
}

impl GatLayer {
    fn new(in_dim: usize, heads: usize, head_dim: usize, concat: bool, rng: &mut impl Rng) -> Self {
        let out_dim = if concat { heads * head_dim } else { head_dim };
        GatLayer {
            w: Param::new(init::xavier_uniform(in_dim, heads * head_dim, rng)),
            a_src: Param::new(init::xavier_uniform(heads, head_dim, rng)),
            a_dst: Param::new(init::xavier_uniform(heads, head_dim, rng)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
            heads,
            head_dim,
            concat,
        }
    }

    fn forward(&self, block: &Block, h_src: &Matrix) -> (Matrix, GatCache) {
        let z = matmul(h_src, &self.w.value); // [num_src, heads*dh]
        let dh = self.head_dim;
        let num_dst = block.num_dst();
        let mut out_heads = Matrix::zeros(num_dst, self.heads * dh);
        let mut edges: Vec<Vec<(usize, f32, f32)>> = Vec::with_capacity(num_dst * self.heads);

        for i in 0..num_dst {
            for k in 0..self.heads {
                let off = k * dh;
                let a_src = self.a_src.value.row(k);
                let a_dst = self.a_dst.value.row(k);
                let zi = &z.row(i)[off..off + dh];
                let s_dst: f32 = zi.iter().zip(a_dst).map(|(a, b)| a * b).sum();
                // self edge first, then sampled neighbors
                let mut edge_list: Vec<(usize, f32, f32)> = Vec::new();
                let push_edge = |j: usize, edge_list: &mut Vec<(usize, f32, f32)>| {
                    let zj = &z.row(j)[off..off + dh];
                    let s_src: f32 = zj.iter().zip(a_src).map(|(a, b)| a * b).sum();
                    let pre = s_dst + s_src;
                    let e = if pre > 0.0 { pre } else { LEAKY_SLOPE * pre };
                    edge_list.push((j, e, pre));
                };
                push_edge(i, &mut edge_list);
                for &j in block.neighbors(i) {
                    push_edge(j as usize, &mut edge_list);
                }
                // softmax over the edge scores (alpha temporarily holds e)
                let max = edge_list
                    .iter()
                    .map(|&(_, e, _)| e)
                    .fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for entry in &mut edge_list {
                    entry.1 = (entry.1 - max).exp();
                    sum += entry.1;
                }
                let inv = 1.0 / sum;
                for entry in &mut edge_list {
                    entry.1 *= inv;
                }
                // aggregate
                {
                    let out_row = &mut out_heads.row_mut(i)[off..off + dh];
                    for &(j, alpha, _) in &edge_list {
                        let zj = &z.row(j)[off..off + dh];
                        for (o, v) in out_row.iter_mut().zip(zj) {
                            *o += alpha * v;
                        }
                    }
                }
                edges.push(edge_list);
            }
        }

        let mut out = if self.concat {
            out_heads
        } else {
            // average heads
            let mut avg = Matrix::zeros(num_dst, dh);
            let inv = 1.0 / self.heads as f32;
            for i in 0..num_dst {
                for k in 0..self.heads {
                    let src = out_heads.row(i)[k * dh..(k + 1) * dh].to_vec();
                    for (o, v) in avg.row_mut(i).iter_mut().zip(&src) {
                        *o += v * inv;
                    }
                }
            }
            avg
        };
        let bias = self.bias.value.row(0).to_vec();
        for r in 0..out.rows() {
            for (v, b) in out.row_mut(r).iter_mut().zip(&bias) {
                *v += b;
            }
        }
        (
            out,
            GatCache {
                block: block.clone(),
                h_src: h_src.clone(),
                z,
                edges,
            },
        )
    }

    /// Returns the gradient with respect to the layer's source features.
    // ppgnn-analyze: allow(hot_path_alloc) -- per-minibatch gradient work
    // buffers (dz, per-head score grads); sized by the sampled block, not
    // the full graph.
    fn backward(&mut self, cache: GatCache, g_out: &Matrix) -> Matrix {
        let GatCache {
            block,
            h_src,
            z,
            edges,
        } = cache;
        let dh = self.head_dim;
        let num_dst = block.num_dst();
        let num_src = block.num_src();

        self.bias.grad.add_assign(&g_out.sum_rows());

        // Per-head gradient of the (pre-bias) aggregation output.
        let head_grad = |i: usize, k: usize| -> Vec<f32> {
            if self.concat {
                g_out.row(i)[k * dh..(k + 1) * dh].to_vec()
            } else {
                let inv = 1.0 / self.heads as f32;
                g_out.row(i).iter().map(|&v| v * inv).collect()
            }
        };

        let mut dz = Matrix::zeros(num_src, self.heads * dh);
        let mut ds_src = vec![0.0f32; num_src * self.heads];
        let mut ds_dst = vec![0.0f32; num_dst * self.heads];

        for i in 0..num_dst {
            for k in 0..self.heads {
                let off = k * dh;
                let g_i = head_grad(i, k);
                let edge_list = &edges[i * self.heads + k];
                // dalpha and dz (aggregation part)
                let mut dalpha: Vec<f32> = Vec::with_capacity(edge_list.len());
                for &(j, alpha, _) in edge_list {
                    let zj = &z.row(j)[off..off + dh];
                    let mut dot = 0.0;
                    for (g, v) in g_i.iter().zip(zj) {
                        dot += g * v;
                    }
                    dalpha.push(dot);
                    let dz_row = &mut dz.row_mut(j)[off..off + dh];
                    for (o, g) in dz_row.iter_mut().zip(&g_i) {
                        *o += alpha * g;
                    }
                }
                // softmax + leaky backward
                let inner: f32 = edge_list
                    .iter()
                    .zip(&dalpha)
                    .map(|(&(_, alpha, _), &da)| alpha * da)
                    .sum();
                for (&(j, alpha, pre), &da) in edge_list.iter().zip(&dalpha) {
                    let de = alpha * (da - inner);
                    let dpre = de * if pre > 0.0 { 1.0 } else { LEAKY_SLOPE };
                    ds_dst[i * self.heads + k] += dpre;
                    ds_src[j * self.heads + k] += dpre;
                }
            }
        }

        // s_src[u,k] = z_u[k]·a_src[k]  and  s_dst[i,k] = z_i[k]·a_dst[k]
        for u in 0..num_src {
            for k in 0..self.heads {
                let off = k * dh;
                let d = ds_src[u * self.heads + k];
                if d != 0.0 {
                    {
                        // `value`/`grad` are disjoint `Param` fields, and
                        // `dz` is local — no copies needed.
                        let a = self.a_src.value.row(k);
                        let dz_row = &mut dz.row_mut(u)[off..off + dh];
                        for (o, &av) in dz_row.iter_mut().zip(a) {
                            *o += d * av;
                        }
                    }
                    let zu = &z.row(u)[off..off + dh];
                    let ga = self.a_src.grad.row_mut(k);
                    for (o, &zv) in ga.iter_mut().zip(zu) {
                        *o += d * zv;
                    }
                }
            }
        }
        for i in 0..num_dst {
            for k in 0..self.heads {
                let off = k * dh;
                let d = ds_dst[i * self.heads + k];
                if d != 0.0 {
                    {
                        // Disjoint borrows, as in the `ds_src` loop above.
                        let a = self.a_dst.value.row(k);
                        let dz_row = &mut dz.row_mut(i)[off..off + dh];
                        for (o, &av) in dz_row.iter_mut().zip(a) {
                            *o += d * av;
                        }
                    }
                    let zi = &z.row(i)[off..off + dh];
                    let ga = self.a_dst.grad.row_mut(k);
                    for (o, &zv) in ga.iter_mut().zip(zi) {
                        *o += d * zv;
                    }
                }
            }
        }

        self.w.grad.add_assign(&matmul_tn(&h_src, &dz));
        matmul_nt(&dz, &self.w.value)
    }
}

impl std::fmt::Debug for Gat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gat")
            .field("num_layers", &self.layers.len())
            .finish()
    }
}

impl Gat {
    /// Creates a GAT with `num_layers` layers, `heads` heads of width
    /// `head_dim` on hidden layers, and an averaged single-width output
    /// layer producing `num_classes` logits.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0` or a dimension is zero.
    pub fn new(
        num_layers: usize,
        feature_dim: usize,
        head_dim: usize,
        heads: usize,
        num_classes: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_layers > 0, "at least one layer required");
        assert!(
            feature_dim > 0 && head_dim > 0 && heads > 0 && num_classes > 0,
            "dimensions must be positive"
        );
        let mut layers = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let in_dim = if l == 0 {
                feature_dim
            } else {
                heads * head_dim
            };
            let is_last = l + 1 == num_layers;
            if is_last {
                layers.push(GatLayer::new(in_dim, heads, num_classes, false, rng));
            } else {
                layers.push(GatLayer::new(in_dim, heads, head_dim, true, rng));
            }
        }
        Gat {
            caches: (0..layers.len()).map(|_| None).collect(),
            elu_caches: (0..layers.len()).map(|_| None).collect(),
            layers,
            seed_local: Vec::new(),
            last_num_dst: 0,
        }
    }
}

fn elu(v: f32) -> f32 {
    if v > 0.0 {
        v
    } else {
        v.exp_m1()
    }
}

impl MpModel for Gat {
    fn forward(&mut self, batch: &MiniBatch, x_input: &Matrix, mode: Mode) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(batch, x_input, mode, &mut out);
        out
    }

    // ppgnn-analyze: allow(hot_path_alloc) -- sampling-based minibatch
    // forward materializes per-layer train-mode caches sized by the
    // sampled block, not the full graph.
    fn forward_into(&mut self, batch: &MiniBatch, x_input: &Matrix, mode: Mode, out: &mut Matrix) {
        assert_eq!(
            batch.blocks.len(),
            self.layers.len(),
            "batch depth {} != model depth {}",
            batch.blocks.len(),
            self.layers.len()
        );
        assert_eq!(
            x_input.rows(),
            batch.blocks[0].num_src(),
            "input features must cover the batch's input nodes"
        );
        let num_layers = self.layers.len();
        let mut h = x_input.clone();
        for (l, (layer, block)) in self.layers.iter_mut().zip(&batch.blocks).enumerate() {
            let (mut out, cache) = layer.forward(block, &h);
            let is_last = l + 1 == num_layers;
            if !is_last {
                if mode == Mode::Train {
                    self.elu_caches[l] = Some(out.clone()); // pre-activation
                }
                out.map_inplace(elu);
            }
            if mode == Mode::Train {
                self.caches[l] = Some(cache);
            }
            h = out;
        }
        if mode == Mode::Train {
            self.seed_local = batch.seed_local.clone();
            self.last_num_dst = batch.blocks.last().expect("non-empty").num_dst();
        }
        out.resize_to(batch.seed_local.len(), h.cols());
        h.gather_rows_into(&batch.seed_local, out);
    }

    fn backward(&mut self, grad_out: &Matrix) {
        assert!(
            self.caches.iter().all(|c| c.is_some()),
            "Gat::backward called without a training-mode forward"
        );
        let num_layers = self.layers.len();
        let mut g = scatter_seed_grad(grad_out, &self.seed_local, self.last_num_dst);
        for l in (0..num_layers).rev() {
            if l + 1 != num_layers {
                let pre = self.elu_caches[l]
                    .take()
                    .expect("hidden layers cache ELU input");
                // d elu(x) = 1 if x > 0 else e^x
                for (gv, &p) in g.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                    *gv *= if p > 0.0 { 1.0 } else { p.exp() };
                }
            }
            let cache = self.caches[l].take().expect("cache presence checked above");
            g = self.layers[l].backward(cache, &g);
        }
    }

    fn params(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| vec![&mut l.w, &mut l.a_src, &mut l.a_dst, &mut l.bias])
            .collect()
    }

    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn name(&self) -> &'static str {
        "gat"
    }

    fn flops_per_batch(&self, batch: &MiniBatch) -> u64 {
        let mut flops = 0u64;
        for (layer, block) in self.layers.iter().zip(&batch.blocks) {
            let in_dim = layer.w.value.rows() as u64;
            let proj = layer.w.value.cols() as u64;
            // projection on src rows + per-edge attention (scores + weighted sum)
            flops += 2 * block.num_src() as u64 * in_dim * proj;
            flops += 4 * (block.num_edges() + block.num_dst()) as u64 * proj;
        }
        3 * flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_graph::{gen, CsrGraph};
    use ppgnn_nn::{metrics, Adam, CrossEntropyLoss, Optimizer};
    use ppgnn_sampler::{NeighborSampler, Sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CsrGraph, Matrix, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(0);
        let labels = gen::uniform_labels(200, 2, &mut rng);
        let g = gen::labeled_graph(
            200,
            8.0,
            &labels,
            2,
            gen::Mixing::Homophilous(0.9),
            0.0,
            &mut rng,
        )
        .unwrap();
        let mut x = init::standard_normal(200, 6, &mut rng);
        for v in 0..200 {
            x.row_mut(v)[labels[v] as usize] += 3.0;
        }
        (g, x, labels)
    }

    #[test]
    fn forward_emits_seed_logits() {
        let (g, x, _) = setup();
        let mut sampler = NeighborSampler::new(vec![4, 4], 1);
        let batch = sampler.sample(&g, &[0, 1, 2]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = Gat::new(2, 6, 8, 2, 2, &mut rng);
        let xin = x.gather_rows(batch.input_nodes());
        let logits = model.forward(&batch, &xin, Mode::Eval);
        assert_eq!(logits.shape(), (3, 2));
    }

    #[test]
    fn attention_weights_sum_to_one() {
        let (g, x, _) = setup();
        let mut sampler = NeighborSampler::new(vec![5], 3);
        let batch = sampler.sample(&g, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(4);
        let layer = GatLayer::new(6, 2, 4, true, &mut rng);
        let xin = x.gather_rows(batch.input_nodes());
        let (_, cache) = layer.forward(&batch.blocks[0], &xin);
        for edge_list in &cache.edges {
            let sum: f32 = edge_list.iter().map(|&(_, a, _)| a).sum();
            assert!((sum - 1.0).abs() < 1e-5, "alphas sum to {sum}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (g, x, labels) = setup();
        let mut sampler = NeighborSampler::new(vec![3, 3], 5);
        let seeds = [1usize, 2, 3];
        let batch = sampler.sample(&g, &seeds);
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = Gat::new(2, 6, 4, 2, 2, &mut rng);
        let xin = x.gather_rows(batch.input_nodes());
        let y: Vec<u32> = seeds.iter().map(|&s| labels[s]).collect();

        let logits = model.forward(&batch, &xin, Mode::Train);
        let (_, gl) = CrossEntropyLoss.loss_and_grad(&logits, &y);
        model.zero_grad();
        model.backward(&gl);
        let grads: Vec<Matrix> = model.params().iter().map(|p| p.grad.clone()).collect();

        // Small enough that the central difference does not step across
        // LeakyReLU/ELU kinks (1e-2 does, and its truncation error then
        // dwarfs the tolerance); large enough that f32 loss differences
        // stay well above rounding noise.
        let eps = 2e-3f32;
        let num_params = model.params().len();
        for pi in 0..num_params {
            let len = model.params()[pi].len();
            let stride = (len / 4).max(1);
            let mut k = 0;
            while k < len {
                let orig = model.params()[pi].value.as_slice()[k];
                model.params()[pi].value.as_mut_slice()[k] = orig + eps;
                let lp = CrossEntropyLoss.loss(&model.forward(&batch, &xin, Mode::Train), &y);
                model.params()[pi].value.as_mut_slice()[k] = orig - eps;
                let lm = CrossEntropyLoss.loss(&model.forward(&batch, &xin, Mode::Train), &y);
                model.params()[pi].value.as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[pi].as_slice()[k];
                let scale = numeric.abs().max(analytic.abs()).max(5e-2);
                assert!(
                    (numeric - analytic).abs() / scale < 6e-2,
                    "param {pi}[{k}]: {numeric} vs {analytic}"
                );
                k += stride;
            }
        }
    }

    #[test]
    fn learns_on_homophilous_graph() {
        let (g, x, labels) = setup();
        let mut sampler = NeighborSampler::new(vec![6, 6], 7);
        let mut rng = StdRng::seed_from_u64(8);
        let mut model = Gat::new(2, 6, 8, 2, 2, &mut rng);
        let mut opt = Adam::new(0.01);
        let seeds: Vec<usize> = (0..80).collect();
        let y: Vec<u32> = seeds.iter().map(|&s| labels[s]).collect();
        for _ in 0..60 {
            let batch = sampler.sample(&g, &seeds);
            let xin = x.gather_rows(batch.input_nodes());
            let logits = model.forward(&batch, &xin, Mode::Train);
            let (_, gl) = CrossEntropyLoss.loss_and_grad(&logits, &y);
            model.zero_grad();
            model.backward(&gl);
            opt.step(&mut model.params());
        }
        let batch = sampler.sample(&g, &seeds);
        let xin = x.gather_rows(batch.input_nodes());
        let logits = model.forward(&batch, &xin, Mode::Eval);
        let acc = metrics::accuracy(&logits, &y);
        assert!(acc > 0.85, "train accuracy only {acc}");
    }

    #[test]
    fn isolated_node_attends_to_itself() {
        let g = CsrGraph::from_edges(2, &[], true).unwrap();
        let mut sampler = NeighborSampler::new(vec![4], 0);
        let batch = sampler.sample(&g, &[0]);
        let mut rng = StdRng::seed_from_u64(9);
        let mut model = Gat::new(1, 3, 2, 1, 2, &mut rng);
        let xin = Matrix::full(1, 3, 1.0);
        let logits = model.forward(&batch, &xin, Mode::Eval);
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }
}
