use ppgnn_nn::{Linear, Mode, Module, Param};
use ppgnn_tensor::Matrix;
use rand::Rng;

use crate::pp::{validate_hops, PpModel};

/// Simplified Graph Convolution (Wu et al. 2019).
///
/// The minimal PP-GNN: all feature propagation happens offline, training is
/// a single linear classifier on the deepest hop `B^R X`. In Eq. (3) terms,
/// `l(·)` selects hop `R` (`δ_{ir}`) and `o(·)` is a linear map. Fastest of
/// the three PP-GNNs but leaves the intermediate hops unused — the accuracy
/// gap visible across the paper's Pareto plots.
#[derive(Debug)]
pub struct Sgc {
    hops: usize,
    classifier: Linear,
    feature_dim: usize,
    num_classes: usize,
}

impl Sgc {
    /// Creates an SGC model over `hops` propagation steps.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(hops: usize, feature_dim: usize, num_classes: usize, rng: &mut impl Rng) -> Self {
        assert!(
            feature_dim > 0 && num_classes > 0,
            "dimensions must be positive"
        );
        Sgc {
            hops,
            classifier: Linear::new(feature_dim, num_classes, rng),
            feature_dim,
            num_classes,
        }
    }

    /// Input feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Output class count.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

impl PpModel for Sgc {
    fn forward(&mut self, hops: &[Matrix], mode: Mode) -> Matrix {
        validate_hops(hops, self.hops + 1);
        self.classifier.forward(&hops[self.hops], mode)
    }

    fn forward_into(&mut self, hops: &[Matrix], mode: Mode, out: &mut Matrix) {
        validate_hops(hops, self.hops + 1);
        self.classifier.forward_into(&hops[self.hops], mode, out);
    }

    fn backward(&mut self, grad_out: &Matrix) {
        self.classifier.backward(grad_out);
    }

    fn params(&mut self) -> Vec<&mut Param> {
        self.classifier.params()
    }

    fn num_hops(&self) -> usize {
        self.hops
    }

    fn name(&self) -> &'static str {
        "sgc"
    }

    fn flops_per_example(&self) -> u64 {
        // forward + backward of one GEMV: ~3 · 2FC
        6 * (self.feature_dim as u64) * (self.num_classes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_nn::{metrics, CrossEntropyLoss, Optimizer, Sgd};
    use ppgnn_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hop_stack(b: usize, f: usize, hops: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..=hops)
            .map(|_| init::standard_normal(b, f, &mut rng))
            .collect()
    }

    #[test]
    fn forward_uses_only_the_last_hop() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = Sgc::new(2, 4, 3, &mut rng);
        let mut hops = hop_stack(5, 4, 2, 1);
        let y1 = m.forward(&hops, Mode::Eval);
        hops[0].scale(100.0); // perturb an unused hop
        let y2 = m.forward(&hops, Mode::Eval);
        assert!(y1.max_abs_diff(&y2) < 1e-6);
        hops[2].scale(2.0); // perturb the used hop
        let y3 = m.forward(&hops, Mode::Eval);
        assert!(y1.max_abs_diff(&y3) > 1e-3);
    }

    #[test]
    fn overfits_a_separable_toy_problem() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = Sgc::new(1, 2, 2, &mut rng);
        let mut opt = Sgd::new(0.5);
        // last-hop features linearly separable by sign of first coordinate
        let x: Matrix = Matrix::from_rows(&[&[2.0, 0.1], &[1.5, -0.2], &[-2.0, 0.3], &[-1.0, 0.0]]);
        let labels = [0u32, 0, 1, 1];
        let hops = vec![Matrix::zeros(4, 2), x];
        for _ in 0..200 {
            let logits = m.forward(&hops, Mode::Train);
            let (_, g) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
            m.zero_grad();
            m.backward(&g);
            opt.step(&mut m.params());
        }
        let logits = m.forward(&hops, Mode::Eval);
        assert_eq!(metrics::accuracy(&logits, &labels), 1.0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = Sgc::new(1, 3, 2, &mut rng);
        let hops = hop_stack(4, 3, 1, 4);
        let labels = [0u32, 1, 0, 1];
        let logits = m.forward(&hops, Mode::Train);
        let (_, g) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
        m.zero_grad();
        m.backward(&g);
        let analytic = m.params()[0].grad.clone();
        let eps = 1e-2f32;
        for k in 0..analytic.len() {
            let orig = m.params()[0].value.as_slice()[k];
            m.params()[0].value.as_mut_slice()[k] = orig + eps;
            let lp = CrossEntropyLoss.loss(&m.forward(&hops, Mode::Train), &labels);
            m.params()[0].value.as_mut_slice()[k] = orig - eps;
            let lm = CrossEntropyLoss.loss(&m.forward(&hops, Mode::Train), &labels);
            m.params()[0].value.as_mut_slice()[k] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.as_slice()[k]).abs() < 5e-3,
                "coord {k}: {numeric} vs {}",
                analytic.as_slice()[k]
            );
        }
    }

    #[test]
    #[should_panic(expected = "hop matrices")]
    fn wrong_hop_count_is_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = Sgc::new(3, 4, 2, &mut rng);
        m.forward(&hop_stack(2, 4, 1, 6), Mode::Eval);
    }
}
