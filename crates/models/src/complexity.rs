//! Table 1 of the paper: asymptotic training memory and computational cost.
//!
//! Formulas are transcribed directly (asymptotic, Big-O constants dropped):
//!
//! | Model      | Training memory              | Computational cost                     |
//! |------------|------------------------------|----------------------------------------|
//! | GraphSAGE  | `L·b·Cᴸ·F + L·F²`            | `L·F·n·C^{L+1} + L·n·Cᴸ·F²`            |
//! | LADIES     | `L²·b·F + L·F²`              | `L²·n·F·b + L²·n·F²`                   |
//! | GraphSAINT | `L·b·F + L·F²`               | `L·n·F·b + L·n·F²`                     |
//! | LABOR      | `L·b·Cᴸ·F + L·F²`            | `L·F·n·C^{L+1} + L·n·Cᴸ·F²`            |
//! | SGC        | `b·F + F²`                   | `n·F²`                                 |
//! | SIGN       | `L·b·F + L·F²`               | `L·n·F²`                               |
//! | HOGA       | `L·b·F + L·F² + L·b·(r+1)²`  | `L·n·(r+1)·F² + L·n·F·(r+1)²`          |
//!
//! Red terms in the paper (feature propagation) and blue terms (feature
//! transformation) are reported separately by
//! [`CostModel::computational_cost`] so the harness can reproduce the
//! color-coded table. The `exp_table1` binary prints the evaluated grid.

use serde::{Deserialize, Serialize};

/// The seven approaches compared in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Approach {
    GraphSage,
    Ladies,
    GraphSaint,
    Labor,
    Sgc,
    Sign,
    Hoga,
}

impl Approach {
    /// All approaches, in the table's row order.
    pub fn all() -> [Approach; 7] {
        [
            Approach::GraphSage,
            Approach::Ladies,
            Approach::GraphSaint,
            Approach::Labor,
            Approach::Sgc,
            Approach::Sign,
            Approach::Hoga,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::GraphSage => "GraphSAGE",
            Approach::Ladies => "LADIES",
            Approach::GraphSaint => "GraphSAINT",
            Approach::Labor => "LABOR",
            Approach::Sgc => "SGC",
            Approach::Sign => "SIGN",
            Approach::Hoga => "HOGA",
        }
    }

    /// `true` for the pre-propagation family.
    pub fn is_pp(&self) -> bool {
        matches!(self, Approach::Sgc | Approach::Sign | Approach::Hoga)
    }
}

/// Symbol assignment for the Table 1 formulas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Layers (MP) or hops (PP), `L` (and `r = L` for HOGA's token count).
    pub layers: usize,
    /// Minibatch size `b`.
    pub batch: usize,
    /// Post-sampling neighborhood size `C` (node-wise samplers).
    pub fanout: usize,
    /// Feature/hidden dimension `F` (assumed equal, as in the paper).
    pub feature_dim: usize,
    /// Total node count `n`.
    pub num_nodes: usize,
}

/// Split of the computational cost into the paper's color-coded parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeCost {
    /// Feature-propagation term (red in the paper) — sparse aggregation work.
    pub propagation: u128,
    /// Feature-transformation term (blue) — dense GEMM work.
    pub transformation: u128,
}

impl ComputeCost {
    /// Total cost.
    pub fn total(&self) -> u128 {
        self.propagation + self.transformation
    }
}

/// Evaluates Table 1 rows at concrete parameter values.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel;

impl CostModel {
    /// Training-memory complexity (in abstract units of `f32` slots).
    pub fn training_memory(&self, approach: Approach, p: CostParams) -> u128 {
        let l = p.layers as u128;
        let b = p.batch as u128;
        let c = p.fanout as u128;
        let f = p.feature_dim as u128;
        let r1 = (p.layers + 1) as u128; // r + 1 tokens for HOGA
        match approach {
            Approach::GraphSage | Approach::Labor => l * b * c.pow(p.layers as u32) * f + l * f * f,
            Approach::Ladies => l * l * b * f + l * f * f,
            Approach::GraphSaint => l * b * f + l * f * f,
            Approach::Sgc => b * f + f * f,
            Approach::Sign => l * b * f + l * f * f,
            Approach::Hoga => l * b * f + l * f * f + l * b * r1 * r1,
        }
    }

    /// Per-epoch computational cost split into propagation/transformation.
    pub fn computational_cost(&self, approach: Approach, p: CostParams) -> ComputeCost {
        let l = p.layers as u128;
        let b = p.batch as u128;
        let c = p.fanout as u128;
        let f = p.feature_dim as u128;
        let n = p.num_nodes as u128;
        let r1 = (p.layers + 1) as u128;
        match approach {
            Approach::GraphSage | Approach::Labor => ComputeCost {
                propagation: l * f * n * c.pow(p.layers as u32 + 1),
                transformation: l * n * c.pow(p.layers as u32) * f * f,
            },
            Approach::Ladies => ComputeCost {
                propagation: l * l * n * f * b,
                transformation: l * l * n * f * f,
            },
            Approach::GraphSaint => ComputeCost {
                propagation: l * n * f * b,
                transformation: l * n * f * f,
            },
            Approach::Sgc => ComputeCost {
                propagation: 0,
                transformation: n * f * f,
            },
            Approach::Sign => ComputeCost {
                propagation: 0,
                transformation: l * n * f * f,
            },
            Approach::Hoga => ComputeCost {
                propagation: 0,
                transformation: l * n * r1 * f * f + l * n * f * r1 * r1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(layers: usize) -> CostParams {
        CostParams {
            layers,
            batch: 1000,
            fanout: 10,
            feature_dim: 128,
            num_nodes: 1_000_000,
        }
    }

    #[test]
    fn cost_types_serde_round_trip() {
        for a in Approach::all() {
            let back: Approach = serde::from_str(&serde::to_string(&a)).expect("variant parses");
            assert_eq!(back, a);
        }
        let p = params(3);
        let back: CostParams = serde::from_str(&serde::to_string(&p)).expect("params parse");
        assert_eq!(back, p);
        let c = ComputeCost {
            propagation: u128::MAX / 3,
            transformation: 12,
        };
        let back: ComputeCost = serde::from_str(&serde::to_string(&c)).expect("cost parses");
        assert_eq!(back, c);
    }

    #[test]
    fn pp_models_have_no_propagation_cost() {
        let m = CostModel;
        for a in Approach::all() {
            let cost = m.computational_cost(a, params(3));
            if a.is_pp() {
                assert_eq!(
                    cost.propagation,
                    0,
                    "{} should be propagation-free",
                    a.name()
                );
            } else {
                assert!(cost.propagation > 0, "{} should pay propagation", a.name());
            }
        }
    }

    #[test]
    fn node_wise_sampling_grows_exponentially_in_depth() {
        let m = CostModel;
        let c2 = m.computational_cost(Approach::GraphSage, params(2)).total();
        let c4 = m.computational_cost(Approach::GraphSage, params(4)).total();
        // growth must far exceed the 2× of linear-depth methods
        assert!(c4 > 20 * c2, "SAGE cost should explode: {c2} → {c4}");
        let s2 = m.computational_cost(Approach::Sign, params(2)).total();
        let s4 = m.computational_cost(Approach::Sign, params(4)).total();
        assert_eq!(s4, 2 * s2, "SIGN cost should be linear in depth");
    }

    #[test]
    fn sgc_is_cheapest_everywhere() {
        let m = CostModel;
        let p = params(3);
        let sgc = m.computational_cost(Approach::Sgc, p).total();
        for a in Approach::all() {
            if a != Approach::Sgc {
                assert!(m.computational_cost(a, p).total() >= sgc);
            }
        }
        let sgc_mem = m.training_memory(Approach::Sgc, p);
        for a in Approach::all() {
            if a != Approach::Sgc {
                assert!(m.training_memory(a, p) >= sgc_mem);
            }
        }
    }

    #[test]
    fn memory_of_sampling_methods_depends_on_fanout() {
        let m = CostModel;
        let mut p = params(3);
        let small = m.training_memory(Approach::Labor, p);
        p.fanout = 20;
        let big = m.training_memory(Approach::Labor, p);
        assert!(big > 7 * small);
        // PP memory is fanout-independent
        assert_eq!(
            m.training_memory(Approach::Sign, params(3)),
            m.training_memory(Approach::Sign, p)
        );
    }

    #[test]
    fn hoga_pays_token_quadratic_extra() {
        let m = CostModel;
        let p = params(4);
        assert!(m.training_memory(Approach::Hoga, p) > m.training_memory(Approach::Sign, p));
        assert!(
            m.computational_cost(Approach::Hoga, p).total()
                > m.computational_cost(Approach::Sign, p).total()
        );
    }
}
