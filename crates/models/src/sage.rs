use ppgnn_nn::{Linear, Mode, Module, Param};
use ppgnn_sampler::{Block, MiniBatch};
use ppgnn_tensor::Matrix;
use rand::Rng;

use crate::mp::{scatter_seed_grad, MpModel};

/// GraphSAGE with the mean aggregator (Hamilton et al. 2017).
///
/// Per layer: `h'_v = ReLU(W_self · h_v + W_neigh · mean_{u∈N̂(v)} h_u)`
/// where `N̂` is the sampled neighborhood (weighted mean under LABOR's
/// importance weights). The final layer omits the nonlinearity and maps to
/// class logits. Matches the paper's configuration (hidden 256, mean
/// aggregator) with dimensions parameterized.
pub struct GraphSage {
    layers: Vec<SageLayer>,
    caches: Vec<Option<SageCache>>,
    seed_local: Vec<usize>,
    last_num_dst: usize,
}

struct SageLayer {
    w_self: Linear,
    w_neigh: Linear,
}

struct SageCache {
    block: Block,
    relu_mask: Option<Vec<bool>>,
}

impl std::fmt::Debug for GraphSage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphSage")
            .field("num_layers", &self.layers.len())
            .finish()
    }
}

impl GraphSage {
    /// Creates an `num_layers`-deep GraphSAGE classifier.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0` or a dimension is zero.
    pub fn new(
        num_layers: usize,
        feature_dim: usize,
        hidden: usize,
        num_classes: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_layers > 0, "at least one layer required");
        assert!(
            feature_dim > 0 && hidden > 0 && num_classes > 0,
            "dimensions must be positive"
        );
        let mut layers = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let in_dim = if l == 0 { feature_dim } else { hidden };
            let out_dim = if l + 1 == num_layers {
                num_classes
            } else {
                hidden
            };
            layers.push(SageLayer {
                w_self: Linear::new(in_dim, out_dim, rng),
                w_neigh: Linear::new(in_dim, out_dim, rng),
            });
        }
        GraphSage {
            caches: (0..layers.len()).map(|_| None).collect(),
            layers,
            seed_local: Vec::new(),
            last_num_dst: 0,
        }
    }
}

impl MpModel for GraphSage {
    fn forward(&mut self, batch: &MiniBatch, x_input: &Matrix, mode: Mode) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(batch, x_input, mode, &mut out);
        out
    }

    // ppgnn-analyze: allow(hot_path_alloc) -- sampling-based minibatch
    // forward materializes per-layer train-mode caches sized by the
    // sampled block, not the full graph.
    fn forward_into(&mut self, batch: &MiniBatch, x_input: &Matrix, mode: Mode, out: &mut Matrix) {
        assert_eq!(
            batch.blocks.len(),
            self.layers.len(),
            "batch depth {} != model depth {}",
            batch.blocks.len(),
            self.layers.len()
        );
        assert_eq!(
            x_input.rows(),
            batch.blocks[0].num_src(),
            "input features must cover the batch's input nodes"
        );
        let num_layers = self.layers.len();
        let mut h = x_input.clone();
        for (l, (layer, block)) in self.layers.iter_mut().zip(&batch.blocks).enumerate() {
            let aggregated = block.mean_forward(&h); // [num_dst, in]
            let h_self = h.slice_rows(0, block.num_dst());
            let mut out = layer.w_self.forward(&h_self, mode);
            out.add_assign(&layer.w_neigh.forward(&aggregated, mode));
            let is_last = l + 1 == num_layers;
            let relu_mask = if is_last {
                None
            } else {
                let mask: Vec<bool> = out.as_slice().iter().map(|&v| v > 0.0).collect();
                out.map_inplace(|v| v.max(0.0));
                Some(mask)
            };
            if mode == Mode::Train {
                self.caches[l] = Some(SageCache {
                    block: block.clone(),
                    relu_mask,
                });
            }
            h = out;
        }
        if mode == Mode::Train {
            self.seed_local = batch.seed_local.clone();
            self.last_num_dst = batch.blocks.last().expect("non-empty").num_dst();
        }
        out.resize_to(batch.seed_local.len(), h.cols());
        h.gather_rows_into(&batch.seed_local, out);
    }

    fn backward(&mut self, grad_out: &Matrix) {
        assert!(
            self.caches.iter().all(|c| c.is_some()),
            "GraphSage::backward called without a training-mode forward"
        );
        let mut g = scatter_seed_grad(grad_out, &self.seed_local, self.last_num_dst);
        for (layer, cache) in self
            .layers
            .iter_mut()
            .rev()
            .zip(self.caches.iter_mut().rev())
        {
            let SageCache { block, relu_mask } =
                cache.take().expect("cache presence checked above");
            if let Some(mask) = relu_mask {
                for (v, keep) in g.as_mut_slice().iter_mut().zip(mask) {
                    if !keep {
                        *v = 0.0;
                    }
                }
            }
            let g_self = layer.w_self.backward(&g); // [num_dst, in]
            let g_agg = layer.w_neigh.backward(&g); // [num_dst, in]
                                                    // [num_src, in]
            let mut g_src = block.mean_backward(&g_agg, g_agg.cols());
            // self path: dst nodes are the first num_dst sources
            for d in 0..block.num_dst() {
                for (o, &v) in g_src.row_mut(d).iter_mut().zip(g_self.row(d)) {
                    *o += v;
                }
            }
            g = g_src;
        }
    }

    fn params(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| {
                let mut p = l.w_self.params();
                p.extend(l.w_neigh.params());
                p
            })
            .collect()
    }

    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn name(&self) -> &'static str {
        "graphsage"
    }

    fn flops_per_batch(&self, batch: &MiniBatch) -> u64 {
        let mut flops = 0u64;
        for (layer, block) in self.layers.iter().zip(&batch.blocks) {
            let in_dim = layer.w_self.in_dim() as u64;
            let out_dim = layer.w_self.out_dim() as u64;
            // aggregation: edges × in_dim; transform: 2 GEMMs on dst rows
            flops += 2 * block.num_edges() as u64 * in_dim;
            flops += 2 * 2 * block.num_dst() as u64 * in_dim * out_dim;
        }
        3 * flops // fwd + bwd ≈ 3× fwd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_graph::{gen, CsrGraph};
    use ppgnn_nn::{metrics, Adam, CrossEntropyLoss, Optimizer};
    use ppgnn_sampler::{NeighborSampler, Sampler};
    use ppgnn_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CsrGraph, Matrix, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(0);
        let labels = gen::uniform_labels(300, 3, &mut rng);
        let g = gen::labeled_graph(
            300,
            10.0,
            &labels,
            3,
            gen::Mixing::Homophilous(0.9),
            0.0,
            &mut rng,
        )
        .unwrap();
        // features: strong class signal so a GNN can learn quickly
        let mut x = init::standard_normal(300, 8, &mut rng);
        for v in 0..300 {
            let y = labels[v] as usize;
            x.row_mut(v)[y] += 3.0;
        }
        (g, x, labels)
    }

    #[test]
    fn forward_emits_seed_logits() {
        let (g, x, _) = setup();
        let mut sampler = NeighborSampler::new(vec![5, 5], 1);
        let batch = sampler.sample(&g, &[0, 1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = GraphSage::new(2, 8, 16, 3, &mut rng);
        let xin = x.gather_rows(batch.input_nodes());
        let logits = model.forward(&batch, &xin, Mode::Eval);
        assert_eq!(logits.shape(), (4, 3));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (g, x, labels) = setup();
        let mut sampler = NeighborSampler::new(vec![3, 3], 3);
        let seeds = [5usize, 6, 7];
        let batch = sampler.sample(&g, &seeds);
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = GraphSage::new(2, 8, 6, 3, &mut rng);
        let xin = x.gather_rows(batch.input_nodes());
        let y: Vec<u32> = seeds.iter().map(|&s| labels[s]).collect();

        let logits = model.forward(&batch, &xin, Mode::Train);
        let (_, gl) = CrossEntropyLoss.loss_and_grad(&logits, &y);
        model.zero_grad();
        model.backward(&gl);
        let grads: Vec<Matrix> = model.params().iter().map(|p| p.grad.clone()).collect();

        let eps = 1e-2f32;
        let num_params = model.params().len();
        for pi in 0..num_params {
            let len = model.params()[pi].len();
            let stride = (len / 5).max(1);
            let mut k = 0;
            while k < len {
                let orig = model.params()[pi].value.as_slice()[k];
                model.params()[pi].value.as_mut_slice()[k] = orig + eps;
                let lp = CrossEntropyLoss.loss(&model.forward(&batch, &xin, Mode::Train), &y);
                model.params()[pi].value.as_mut_slice()[k] = orig - eps;
                let lm = CrossEntropyLoss.loss(&model.forward(&batch, &xin, Mode::Train), &y);
                model.params()[pi].value.as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[pi].as_slice()[k];
                let scale = numeric.abs().max(analytic.abs()).max(5e-2);
                assert!(
                    (numeric - analytic).abs() / scale < 5e-2,
                    "param {pi}[{k}]: {numeric} vs {analytic}"
                );
                k += stride;
            }
        }
    }

    #[test]
    fn learns_on_homophilous_graph() {
        let (g, x, labels) = setup();
        let mut sampler = NeighborSampler::new(vec![8, 8], 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = GraphSage::new(2, 8, 16, 3, &mut rng);
        let mut opt = Adam::new(0.01);
        let seeds: Vec<usize> = (0..100).collect();
        let y: Vec<u32> = seeds.iter().map(|&s| labels[s]).collect();
        for _ in 0..60 {
            let batch = sampler.sample(&g, &seeds);
            let xin = x.gather_rows(batch.input_nodes());
            let logits = model.forward(&batch, &xin, Mode::Train);
            let (_, gl) = CrossEntropyLoss.loss_and_grad(&logits, &y);
            model.zero_grad();
            model.backward(&gl);
            opt.step(&mut model.params());
        }
        let batch = sampler.sample(&g, &seeds);
        let xin = x.gather_rows(batch.input_nodes());
        let logits = model.forward(&batch, &xin, Mode::Eval);
        let acc = metrics::accuracy(&logits, &y);
        assert!(acc > 0.9, "train accuracy only {acc}");
    }

    #[test]
    #[should_panic(expected = "batch depth")]
    fn depth_mismatch_is_rejected() {
        let (g, x, _) = setup();
        let mut sampler = NeighborSampler::new(vec![5], 1);
        let batch = sampler.sample(&g, &[0]);
        let mut rng = StdRng::seed_from_u64(9);
        let mut model = GraphSage::new(2, 8, 4, 3, &mut rng);
        let xin = x.gather_rows(batch.input_nodes());
        model.forward(&batch, &xin, Mode::Eval);
    }
}
