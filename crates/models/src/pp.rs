use ppgnn_nn::{Mode, Param};
use ppgnn_tensor::Matrix;

/// A pre-propagation GNN: a dense model over `R + 1` hop-feature matrices.
///
/// The training loop hands every model the same batch shape — a slice of
/// `num_hops() + 1` matrices, each `batch x feature_dim`, where entry `r`
/// holds `B^r X` rows for the batch nodes — and receives class logits.
/// Models that ignore some hops (SGC) still receive the full set so loaders
/// stay model-agnostic, mirroring the paper's system design where the data
/// pipeline is shared across SGC/SIGN/HOGA.
pub trait PpModel {
    /// Computes logits `batch x num_classes` from hop features.
    ///
    /// # Panics
    ///
    /// Panics if `hops.len() != num_hops() + 1` or the matrices disagree on
    /// row counts / feature dims.
    fn forward(&mut self, hops: &[Matrix], mode: Mode) -> Matrix;

    /// Computes logits into a reusable slot (resized to the output shape
    /// and fully overwritten).
    ///
    /// The shipped models route their whole stack through
    /// [`ppgnn_nn::Module::forward_into`], so a training loop that passes
    /// the same slot every batch runs steady-state forwards without
    /// allocating. The default falls back to [`PpModel::forward`].
    fn forward_into(&mut self, hops: &[Matrix], mode: Mode, out: &mut Matrix) {
        *out = self.forward(hops, mode);
    }

    /// Back-propagates the loss gradient; accumulates parameter gradients.
    /// (Input gradients are discarded — hop features are data, not
    /// parameters.)
    fn backward(&mut self, grad_out: &Matrix);

    /// Parameters in a stable order.
    fn params(&mut self) -> Vec<&mut Param>;

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params() {
            p.zero_grad();
        }
    }

    /// Number of propagation hops `R` (the model consumes `R + 1` inputs).
    fn num_hops(&self) -> usize;

    /// Stable display name.
    fn name(&self) -> &'static str;

    /// Estimated forward+backward FLOPs for a single example (drives the
    /// compute-time model in `ppgnn-memsim`).
    fn flops_per_example(&self) -> u64;

    /// Total scalar parameter count.
    fn num_params(&mut self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

/// Re-layouts hop matrices `[(b x F); R+1]` into the token matrix
/// `[b·(R+1)] x F` expected by the HOGA attention block: example `i`'s
/// tokens occupy rows `i·(R+1) .. (i+1)·(R+1)`, ordered hop 0 → hop R.
///
/// # Panics
///
/// Panics if `hops` is empty or shapes disagree.
pub fn hops_to_tokens(hops: &[Matrix]) -> Matrix {
    assert!(!hops.is_empty(), "at least one hop matrix required");
    let b = hops[0].rows();
    let f = hops[0].cols();
    for (r, h) in hops.iter().enumerate() {
        assert_eq!(h.shape(), (b, f), "hop {r} has mismatched shape");
    }
    let t = hops.len();
    let mut out = Matrix::zeros(b * t, f);
    for i in 0..b {
        for (r, h) in hops.iter().enumerate() {
            out.row_mut(i * t + r).copy_from_slice(h.row(i));
        }
    }
    out
}

/// Checks the standard input contract shared by all PP models.
pub(crate) fn validate_hops(hops: &[Matrix], expected: usize) -> (usize, usize) {
    assert_eq!(
        hops.len(),
        expected,
        "model expects {expected} hop matrices, got {}",
        hops.len()
    );
    let (b, f) = hops[0].shape();
    for (r, h) in hops.iter().enumerate() {
        assert_eq!(h.shape(), (b, f), "hop {r} shape mismatch");
    }
    (b, f)
}

/// Scatters a token-matrix gradient back into per-hop gradients (inverse of
/// [`hops_to_tokens`]); used by HOGA's backward when hop-level gradients are
/// needed for diagnostics.
pub fn tokens_to_hops(tokens: &Matrix, num_hops_plus_one: usize) -> Vec<Matrix> {
    assert_eq!(tokens.rows() % num_hops_plus_one, 0, "ragged token matrix");
    let b = tokens.rows() / num_hops_plus_one;
    let f = tokens.cols();
    let mut out = vec![Matrix::zeros(b, f); num_hops_plus_one];
    for i in 0..b {
        for r in 0..num_hops_plus_one {
            out[r]
                .row_mut(i)
                .copy_from_slice(tokens.row(i * num_hops_plus_one + r));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        let h0 = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let h1 = h0.map(|v| v + 100.0);
        let tokens = hops_to_tokens(&[h0.clone(), h1.clone()]);
        assert_eq!(tokens.shape(), (6, 2));
        assert_eq!(tokens.row(0), h0.row(0));
        assert_eq!(tokens.row(1), h1.row(0));
        let back = tokens_to_hops(&tokens, 2);
        assert_eq!(back[0], h0);
        assert_eq!(back[1], h1);
    }

    #[test]
    #[should_panic(expected = "mismatched shape")]
    fn ragged_hops_panic() {
        hops_to_tokens(&[Matrix::zeros(2, 3), Matrix::zeros(2, 4)]);
    }
}
