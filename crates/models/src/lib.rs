//! GNN model zoo: the paper's three PP-GNNs and two MP-GNN backbones.
//!
//! **Pre-propagation models** ([`PpModel`]) consume `R + 1` hop-feature
//! matrices produced offline by the preprocessing stage (Eq. 2) and involve
//! only dense compute:
//!
//! * [`Sgc`] — logistic regression on the deepest hop (Wu et al. 2019),
//! * [`Sign`] — per-hop inception branches + MLP head (Frasca et al. 2020),
//! * [`Hoga`] — hop-wise multi-head attention over hop tokens
//!   (Deng et al. 2024).
//!
//! **Message-passing models** ([`MpModel`]) consume sampled
//! [`ppgnn_sampler::MiniBatch`]es:
//!
//! * [`GraphSage`] — mean aggregator (Hamilton et al. 2017),
//! * [`Gat`] — multi-head additive attention (Veličković et al. 2018).
//!
//! Every model's backward pass is verified against central finite
//! differences in its test module, and each exposes a FLOP estimator used by
//! the performance-plane simulator.
//!
//! [`complexity`] transcribes Table 1 of the paper (asymptotic training
//! memory and computational cost for all seven approaches).

#![deny(missing_docs)]

mod gat;
mod hoga;
mod mp;
mod pp;
mod sage;
mod sgc;
mod sign;

pub mod complexity;

pub use gat::Gat;
pub use hoga::Hoga;
pub use mp::MpModel;
pub use pp::{hops_to_tokens, tokens_to_hops, PpModel};
pub use sage::GraphSage;
pub use sgc::Sgc;
pub use sign::Sign;
