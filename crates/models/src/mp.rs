use ppgnn_nn::{Mode, Param};
use ppgnn_sampler::MiniBatch;
use ppgnn_tensor::Matrix;

/// A message-passing GNN trained on sampled minibatches.
///
/// `forward` receives the sampled [`MiniBatch`] and the gathered raw
/// features of `batch.input_nodes()` (one row per layer-0 source node) and
/// returns logits for the **seed** nodes only. `backward` propagates the
/// loss gradient back through every block.
pub trait MpModel {
    /// Computes `seeds × classes` logits.
    ///
    /// # Panics
    ///
    /// Panics if `x_input.rows()` does not match the batch's input-node
    /// count or the batch depth differs from the model's layer count.
    fn forward(&mut self, batch: &MiniBatch, x_input: &Matrix, mode: Mode) -> Matrix;

    /// Computes seed logits into a reusable slot (resized and fully
    /// overwritten); the default falls back to [`MpModel::forward`]. The
    /// shipped models write the final seed gather straight into `out`.
    fn forward_into(&mut self, batch: &MiniBatch, x_input: &Matrix, mode: Mode, out: &mut Matrix) {
        *out = self.forward(batch, x_input, mode);
    }

    /// Back-propagates the seed-logit gradient; accumulates parameter
    /// gradients (input-feature gradients are discarded).
    fn backward(&mut self, grad_out: &Matrix);

    /// Parameters in a stable order.
    fn params(&mut self) -> Vec<&mut Param>;

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params() {
            p.zero_grad();
        }
    }

    /// Number of message-passing layers.
    fn num_layers(&self) -> usize;

    /// Stable display name.
    fn name(&self) -> &'static str;

    /// Estimated forward+backward FLOPs for one sampled batch (feeds the
    /// performance simulator; dominated by per-node transforms plus
    /// per-edge aggregation).
    fn flops_per_batch(&self, batch: &MiniBatch) -> u64;

    /// Total scalar parameter count.
    fn num_params(&mut self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

/// Scatters seed-row gradients into a zeroed `num_dst x c` matrix — the
/// adapter between the loss (defined on seeds) and the last block's
/// destination set (which may be a superset under GraphSAINT).
pub(crate) fn scatter_seed_grad(
    grad_seeds: &Matrix,
    seed_local: &[usize],
    num_dst: usize,
) -> Matrix {
    assert_eq!(
        grad_seeds.rows(),
        seed_local.len(),
        "seed grad row mismatch"
    );
    let mut out = Matrix::zeros(num_dst, grad_seeds.cols());
    for (r, &d) in seed_local.iter().enumerate() {
        out.row_mut(d).copy_from_slice(grad_seeds.row(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_gather_round_trip() {
        let g = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let scattered = scatter_seed_grad(&g, &[3, 1], 5);
        assert_eq!(scattered.row(3), &[1.0, 2.0]);
        assert_eq!(scattered.row(1), &[3.0, 4.0]);
        assert_eq!(scattered.row(0), &[0.0, 0.0]);
        let back = scattered.gather_rows(&[3, 1]);
        assert_eq!(back, g);
    }
}
