use ppgnn_nn::{Dropout, Linear, Mode, Module, PRelu, Param, Relu, Sequential};
use ppgnn_tensor::Matrix;
use rand::Rng;

use crate::pp::{validate_hops, PpModel};

/// SIGN: Scalable Inception Graph Neural Network (Frasca et al. 2020).
///
/// Each hop `r` gets its own "inception branch" — a linear map to the
/// hidden dimension followed by PReLU — the branch outputs are concatenated,
/// and an MLP head produces logits. Matches the paper's configuration
/// (3-layer head, hidden 512 at full scale) with dimensions parameterized.
pub struct Sign {
    hops: usize,
    branches: Vec<Linear>,
    activations: Vec<PRelu>,
    head: Sequential,
    feature_dim: usize,
    hidden: usize,
    num_classes: usize,
    branch_inputs_cached: bool,
    /// Per-branch linear / activation outputs, reused across batches.
    branch_z: Vec<Matrix>,
    branch_out: Vec<Matrix>,
    /// Concatenated branch outputs feeding the head.
    concat: Matrix,
}

impl std::fmt::Debug for Sign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sign")
            .field("hops", &self.hops)
            .field("feature_dim", &self.feature_dim)
            .field("hidden", &self.hidden)
            .field("num_classes", &self.num_classes)
            .finish()
    }
}

impl Sign {
    /// Creates a SIGN model: `hops + 1` branches of width `hidden`, a
    /// two-layer MLP head, and dropout `dropout`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `dropout ∉ [0, 1)`.
    pub fn new(
        hops: usize,
        feature_dim: usize,
        hidden: usize,
        num_classes: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            feature_dim > 0 && hidden > 0 && num_classes > 0,
            "dimensions must be positive"
        );
        let branches = (0..=hops)
            .map(|_| Linear::new(feature_dim, hidden, rng))
            .collect();
        let activations = (0..=hops).map(|_| PRelu::new()).collect();
        let head = Sequential::new(vec![
            Box::new(Dropout::new(dropout, rng.random())),
            Box::new(Linear::new((hops + 1) * hidden, hidden, rng)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(dropout, rng.random())),
            Box::new(Linear::new(hidden, num_classes, rng)),
        ]);
        Sign {
            hops,
            branches,
            activations,
            head,
            feature_dim,
            hidden,
            num_classes,
            branch_inputs_cached: false,
            branch_z: (0..=hops).map(|_| Matrix::default()).collect(),
            branch_out: (0..=hops).map(|_| Matrix::default()).collect(),
            concat: Matrix::default(),
        }
    }

    /// Hidden width of each branch.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

impl PpModel for Sign {
    fn forward(&mut self, hops: &[Matrix], mode: Mode) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(hops, mode, &mut out);
        out
    }

    fn forward_into(&mut self, hops: &[Matrix], mode: Mode, out: &mut Matrix) {
        let (b, _) = validate_hops(hops, self.hops + 1);
        for (((branch, act), hop), (z, a)) in self
            .branches
            .iter_mut()
            .zip(self.activations.iter_mut())
            .zip(hops)
            .zip(self.branch_z.iter_mut().zip(self.branch_out.iter_mut()))
        {
            branch.forward_into(hop, mode, z);
            act.forward_into(z, mode, a);
        }
        // Feature-wise concatenation straight into the retained buffer
        // (hstack semantics without the per-call slice-of-refs).
        self.concat.resize_to(b, (self.hops + 1) * self.hidden);
        for (bi, branch_out) in self.branch_out.iter().enumerate() {
            let off = bi * self.hidden;
            for r in 0..b {
                self.concat.row_mut(r)[off..off + self.hidden].copy_from_slice(branch_out.row(r));
            }
        }
        self.branch_inputs_cached = mode == Mode::Train;
        self.head.forward_into(&self.concat, mode, out);
    }

    fn backward(&mut self, grad_out: &Matrix) {
        assert!(
            self.branch_inputs_cached,
            "Sign::backward called without a training-mode forward"
        );
        self.branch_inputs_cached = false;
        let g_concat = self.head.backward(grad_out);
        let pieces = g_concat.hsplit(self.hops + 1);
        for ((branch, act), piece) in self
            .branches
            .iter_mut()
            .zip(self.activations.iter_mut())
            .zip(pieces)
        {
            let g_z = act.backward(&piece);
            branch.backward(&g_z); // input grads discarded
        }
    }

    fn params(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for b in &mut self.branches {
            out.extend(b.params());
        }
        for a in &mut self.activations {
            out.extend(a.params());
        }
        out.extend(self.head.params());
        out
    }

    fn num_hops(&self) -> usize {
        self.hops
    }

    fn name(&self) -> &'static str {
        "sign"
    }

    fn flops_per_example(&self) -> u64 {
        let r1 = (self.hops + 1) as u64;
        let f = self.feature_dim as u64;
        let h = self.hidden as u64;
        let c = self.num_classes as u64;
        // branches + head (×3 for fwd+bwd)
        6 * (r1 * f * h + r1 * h * h + h * c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_nn::{metrics, Adam, CrossEntropyLoss, Optimizer};
    use ppgnn_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = Sign::new(2, 5, 8, 3, 0.0, &mut rng);
        let hops: Vec<Matrix> = (0..3).map(|_| Matrix::zeros(4, 5)).collect();
        let y = m.forward(&hops, Mode::Eval);
        assert_eq!(y.shape(), (4, 3));
        // 3 branches (W+b) + 3 PReLU + head: L1 (W+b) + L2 (W+b)
        let expected = 3 * (5 * 8 + 8) + 3 + (3 * 8 * 8 + 8) + (8 * 3 + 3);
        assert_eq!(m.num_params(), expected);
    }

    #[test]
    fn every_hop_influences_the_output() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Sign::new(2, 4, 6, 2, 0.0, &mut rng);
        let mut data_rng = StdRng::seed_from_u64(2);
        let hops: Vec<Matrix> = (0..3)
            .map(|_| init::standard_normal(3, 4, &mut data_rng))
            .collect();
        let base = m.forward(&hops, Mode::Eval);
        for r in 0..3 {
            let mut perturbed = hops.clone();
            perturbed[r].scale(2.0);
            let y = m.forward(&perturbed, Mode::Eval);
            assert!(
                y.max_abs_diff(&base) > 1e-5,
                "hop {r} does not affect the output"
            );
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = Sign::new(1, 3, 4, 2, 0.0, &mut rng);
        let mut data_rng = StdRng::seed_from_u64(4);
        let hops: Vec<Matrix> = (0..2)
            .map(|_| init::standard_normal(4, 3, &mut data_rng))
            .collect();
        let labels = [0u32, 1, 1, 0];
        let logits = m.forward(&hops, Mode::Train);
        let (_, g) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
        m.zero_grad();
        m.backward(&g);
        let grads: Vec<Matrix> = m.params().iter().map(|p| p.grad.clone()).collect();
        let eps = 1e-2f32;
        let num_params = m.params().len();
        for pi in 0..num_params {
            let len = m.params()[pi].len();
            let stride = (len / 6).max(1);
            let mut k = 0;
            while k < len {
                let orig = m.params()[pi].value.as_slice()[k];
                m.params()[pi].value.as_mut_slice()[k] = orig + eps;
                let lp = CrossEntropyLoss.loss(&m.forward(&hops, Mode::Train), &labels);
                m.params()[pi].value.as_mut_slice()[k] = orig - eps;
                let lm = CrossEntropyLoss.loss(&m.forward(&hops, Mode::Train), &labels);
                m.params()[pi].value.as_mut_slice()[k] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[pi].as_slice()[k];
                let scale = numeric.abs().max(analytic.abs()).max(5e-2);
                assert!(
                    (numeric - analytic).abs() / scale < 5e-2,
                    "param {pi}[{k}]: {numeric} vs {analytic}"
                );
                k += stride;
            }
        }
    }

    #[test]
    fn learns_xor_of_two_hops() {
        // hop0 and hop1 each carry one bit; the label is their XOR —
        // unlearnable from any single hop, so passing requires the model to
        // combine hops (which SGC by construction cannot).
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = Sign::new(1, 1, 16, 2, 0.0, &mut rng);
        let mut opt = Adam::new(0.05);
        let h0 = Matrix::from_rows(&[&[0.0], &[0.0], &[1.0], &[1.0]]);
        let h1 = Matrix::from_rows(&[&[0.0], &[1.0], &[0.0], &[1.0]]);
        let labels = [0u32, 1, 1, 0];
        let hops = vec![h0, h1];
        for _ in 0..400 {
            let logits = m.forward(&hops, Mode::Train);
            let (_, g) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
            m.zero_grad();
            m.backward(&g);
            opt.step(&mut m.params());
        }
        let logits = m.forward(&hops, Mode::Eval);
        assert_eq!(
            metrics::accuracy(&logits, &labels),
            1.0,
            "failed to learn XOR"
        );
    }

    #[test]
    #[should_panic(expected = "without a training-mode forward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = Sign::new(1, 2, 4, 2, 0.0, &mut rng);
        m.backward(&Matrix::zeros(1, 2));
    }
}
