//! Property-based tests for layers, loss, and optimizers.

use ppgnn_nn::{Adam, CrossEntropyLoss, Linear, Mode, Module, Optimizer, Relu, Sequential, Sgd};
use ppgnn_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized"))
}

proptest! {
    #[test]
    fn cross_entropy_is_nonnegative_and_grad_rows_sum_to_zero(
        logits in small_matrix(6, 4),
        seed in 0u32..100,
    ) {
        let labels: Vec<u32> = (0..6).map(|i| ((i + seed as usize) % 4) as u32).collect();
        let (loss, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
        prop_assert!(loss >= 0.0);
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_shift_invariance(logits in small_matrix(4, 3), shift in -5.0f32..5.0) {
        // softmax CE is invariant to adding a constant to every logit
        let labels = [0u32, 1, 2, 0];
        let (l1, _) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
        let shifted = logits.map(|v| v + shift);
        let (l2, _) = CrossEntropyLoss.loss_and_grad(&shifted, &labels);
        prop_assert!((l1 - l2).abs() < 1e-4, "{l1} vs {l2}");
    }

    #[test]
    fn linear_forward_is_linear(x in small_matrix(3, 5), alpha in -2.0f32..2.0) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Linear::new(5, 4, &mut rng);
        let y1 = layer.forward(&x, Mode::Eval);
        let mut scaled = x.clone();
        scaled.scale(alpha);
        let y2 = layer.forward(&scaled, Mode::Eval);
        // affine: f(αx) − b = α(f(x) − b)
        let bias = layer.forward(&Matrix::zeros(3, 5), Mode::Eval);
        let mut lhs = y2.clone();
        lhs.sub_assign(&bias);
        let mut rhs = y1.clone();
        rhs.sub_assign(&bias);
        rhs.scale(alpha);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn relu_output_is_nonnegative_and_idempotent(x in small_matrix(4, 6)) {
        let mut r = Relu::new();
        let y = r.forward(&x, Mode::Eval);
        prop_assert!(y.as_slice().iter().all(|&v| v >= 0.0));
        let y2 = r.forward(&y, Mode::Eval);
        prop_assert_eq!(y, y2);
    }

    #[test]
    fn sgd_step_moves_against_gradient(start in -3.0f32..3.0, lr in 0.001f32..0.1) {
        let mut p = ppgnn_nn::Param::new(Matrix::full(1, 1, start));
        p.grad.set(0, 0, 2.0 * start); // d/dw w²
        let before = 0.5 * (2.0 * start) * (2.0 * start); // grad magnitude proxy
        let mut opt = Sgd::new(lr);
        opt.step(&mut [&mut p]);
        let after = p.value.get(0, 0);
        // moved toward zero (the minimum of w²) unless already there
        if start.abs() > 1e-6 {
            prop_assert!(after.abs() <= start.abs() + 1e-6, "{start} → {after}");
        }
        let _ = before;
    }

    #[test]
    fn adam_first_step_is_lr_sized(g in 0.01f32..100.0, lr in 0.001f32..0.5) {
        // bias-corrected Adam's first update ≈ lr · sign(grad)
        let mut p = ppgnn_nn::Param::new(Matrix::full(1, 1, 0.0));
        p.grad.set(0, 0, g);
        let mut opt = Adam::new(lr);
        opt.step(&mut [&mut p]);
        let moved = p.value.get(0, 0).abs();
        prop_assert!((moved - lr).abs() < lr * 0.05, "moved {moved}, lr {lr}");
    }

    #[test]
    fn mlp_train_eval_forward_agree_without_stochastic_layers(x in small_matrix(3, 4)) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Sequential::new(vec![
            Box::new(Linear::new(4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 2, &mut rng)),
        ]);
        let train = mlp.forward(&x, Mode::Train);
        let eval = mlp.forward(&x, Mode::Eval);
        prop_assert!(train.max_abs_diff(&eval) < 1e-6);
    }

    #[test]
    fn backward_scales_linearly_with_upstream_gradient(
        x in small_matrix(3, 4),
        alpha in 0.1f32..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Linear::new(4, 2, &mut rng);
        let g = Matrix::full(3, 2, 1.0);

        layer.forward(&x, Mode::Train);
        layer.zero_grad();
        let gx1 = layer.backward(&g);
        let w1 = layer.params()[0].grad.clone();

        let mut g2 = g.clone();
        g2.scale(alpha);
        layer.forward(&x, Mode::Train);
        layer.zero_grad();
        let gx2 = layer.backward(&g2);
        let w2 = layer.params()[0].grad.clone();

        let mut gx1s = gx1.clone();
        gx1s.scale(alpha);
        let mut w1s = w1.clone();
        w1s.scale(alpha);
        prop_assert!(gx2.max_abs_diff(&gx1s) < 1e-3);
        prop_assert!(w2.max_abs_diff(&w1s) < 1e-3);
    }
}
