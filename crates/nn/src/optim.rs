use ppgnn_tensor::Matrix;

use crate::Param;

/// First-order optimizer over a stable, positionally-keyed parameter list.
///
/// Implementations lazily allocate per-slot state on the first step and
/// require every later call to pass the **same parameters in the same
/// order** (which [`crate::Module::params`] guarantees).
pub trait Optimizer {
    /// Applies one update using the gradients currently stored in `params`.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Replaces the learning rate (schedulers call this between epochs).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and L2 weight decay.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self::with_options(lr, 0.0, 0.0)
    }

    /// SGD with momentum and weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `momentum < 0`, or `weight_decay < 0`.
    pub fn with_options(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(
            momentum >= 0.0 && weight_decay >= 0.0,
            "hyperparameters must be non-negative"
        );
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() && self.momentum > 0.0 {
            self.velocity = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            let mut g = p.grad.clone();
            if self.weight_decay > 0.0 {
                g.axpy(self.weight_decay, &p.value);
            }
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                assert_eq!(
                    v.shape(),
                    g.shape(),
                    "optimizer state shape drift at slot {i}"
                );
                v.scale(self.momentum);
                v.add_assign(&g);
                p.value.axpy(-self.lr, v);
            } else {
                p.value.axpy(-self.lr, &g);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with L2 weight decay folded into the gradient.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the conventional defaults `β = (0.9, 0.999)`, `ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Self::with_options(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or betas are outside `[0, 1)`.
    pub fn with_options(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas must be in [0,1)"
        );
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            assert_eq!(
                m.shape(),
                p.grad.shape(),
                "optimizer state shape drift at slot {i}"
            );
            let wd = self.weight_decay;
            for (((mv, vv), &g0), w) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(p.grad.as_slice())
                .zip(p.value.as_slice())
            {
                let g = g0 + wd * w;
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
            }
            let lr = self.lr;
            let eps = self.eps;
            for ((w, mv), vv) in p
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let m_hat = mv / bc1;
                let v_hat = vv / bc2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(start: f32) -> Param {
        Param::new(Matrix::full(1, 1, start))
    }

    /// One gradient evaluation of L(w) = w².
    fn grad_of_square(p: &mut Param) {
        let w = p.value.get(0, 0);
        p.grad.set(0, 0, 2.0 * w);
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let mut p = quadratic_param(5.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..50 {
            p.zero_grad();
            grad_of_square(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.get(0, 0).abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| {
            let mut p = quadratic_param(5.0);
            let mut opt = Sgd::with_options(0.02, momentum, 0.0);
            for _ in 0..40 {
                p.zero_grad();
                grad_of_square(&mut p);
                opt.step(&mut [&mut p]);
            }
            p.value.get(0, 0).abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut p = quadratic_param(3.0);
        let mut opt = Adam::new(0.2);
        for _ in 0..200 {
            p.zero_grad();
            grad_of_square(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(
            p.value.get(0, 0).abs() < 1e-2,
            "ended at {}",
            p.value.get(0, 0)
        );
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::with_options(0.1, 0.0, 0.5);
        for _ in 0..10 {
            p.zero_grad(); // gradient stays zero; only decay acts
            opt.step(&mut [&mut p]);
        }
        let w = p.value.get(0, 0);
        assert!(w < 1.0 && w > 0.0);
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }

    #[test]
    fn adam_first_step_size_is_bounded_by_lr() {
        // Bias correction makes the first Adam step ≈ lr regardless of
        // gradient scale.
        let mut p = quadratic_param(100.0);
        let mut opt = Adam::new(0.5);
        p.zero_grad();
        grad_of_square(&mut p);
        opt.step(&mut [&mut p]);
        let moved = (100.0 - p.value.get(0, 0)).abs();
        assert!((moved - 0.5).abs() < 1e-3, "moved {moved}");
    }
}
