use ppgnn_tensor::{init, matmul_into, matmul_nt, matmul_tn_into, Matrix};
use rand::Rng;

use crate::{Mode, Module, Param};

/// Affine layer `y = x · W + b`.
///
/// `W` is `in_dim x out_dim` (He-normal initialized), `b` is `1 x out_dim`
/// (zeros). Backward computes `∂W = xᵀ · ∂y`, `∂b = Σ_rows ∂y`,
/// `∂x = ∂y · Wᵀ` using the transposed GEMM kernels.
///
/// The layer recycles two scratch matrices across batches: the cached
/// training input (refilled in place when the batch shape repeats) and
/// the `∂W = xᵀ · ∂y` product (written through [`matmul_tn_into`] before
/// accumulating into the gradient). [`Module::forward_into`] writes the
/// output into a caller-owned slot, so a steady-state training step that
/// reuses its slots allocates only the input gradient returned by
/// `backward` — pinned by the allocation-count assertions in the
/// repo-level residency suite.
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
    cached_input: Option<Matrix>,
    /// Spent `cached_input` buffer awaiting reuse by the next
    /// training-mode forward of the same batch shape.
    input_scratch: Option<Matrix>,
    /// Reusable `in_dim x out_dim` buffer for the weight-gradient GEMM.
    grad_w_scratch: Option<Matrix>,
}

impl Linear {
    /// Creates a layer mapping `in_dim` features to `out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Linear {
            weight: Param::new(init::he_normal(in_dim, out_dim, rng)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
            cached_input: None,
            input_scratch: None,
            grad_w_scratch: None,
        }
    }

    /// Creates a layer with explicit weights (tests, loading checkpoints).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x weight.cols()`.
    pub fn from_parts(weight: Matrix, bias: Matrix) -> Self {
        assert_eq!(bias.shape(), (1, weight.cols()), "bias must be 1 x out_dim");
        Linear {
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
            input_scratch: None,
            grad_w_scratch: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }
}

impl Module for Linear {
    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        let mut y = Matrix::default();
        self.forward_into(x, mode, &mut y);
        y
    }

    fn forward_into(&mut self, x: &Matrix, mode: Mode, out: &mut Matrix) {
        assert_eq!(
            x.cols(),
            self.in_dim(),
            "linear layer expects {} input features, got {}",
            self.in_dim(),
            x.cols()
        );
        out.resize_to(x.rows(), self.out_dim());
        matmul_into(x, &self.weight.value, out);
        let bias = self.bias.value.row(0);
        for r in 0..out.rows() {
            for (v, b) in out.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
        if mode == Mode::Train {
            // Reuse the buffer backward handed back if the batch shape
            // repeats (the steady state of epoch training).
            let cached = match self.input_scratch.take() {
                Some(mut buf) if buf.shape() == x.shape() => {
                    buf.copy_from(x);
                    buf
                }
                // ppgnn-analyze: allow(hot_path_alloc) -- cold path: first
                // batch or a shape change; steady state hits the arm above.
                _ => x.clone(),
            };
            self.cached_input = Some(cached);
        }
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .take()
            .expect("Linear::backward called without a training-mode forward");
        assert_eq!(
            grad_out.shape(),
            (x.rows(), self.out_dim()),
            "grad_out shape mismatch in Linear::backward"
        );
        let mut gw = match self.grad_w_scratch.take() {
            Some(buf) if buf.shape() == self.weight.value.shape() => buf,
            // ppgnn-analyze: allow(hot_path_alloc) -- cold path: scratch
            // shape miss on the first batch.
            _ => Matrix::zeros(self.in_dim(), self.out_dim()),
        };
        matmul_tn_into(&x, grad_out, &mut gw);
        self.weight.grad.add_assign(&gw);
        self.grad_w_scratch = Some(gw);
        self.bias.grad.add_assign(&grad_out.sum_rows());
        let gx = matmul_nt(grad_out, &self.weight.value);
        self.input_scratch = Some(x);
        gx
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_affine() {
        let w = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, -0.5]]);
        let mut l = Linear::from_parts(w, b);
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.row(0), &[4.5, 5.5]);
    }

    #[test]
    fn backward_computes_known_gradients() {
        // y = xW + b, L = sum(y) → ∂W = xᵀ·1, ∂b = row-count, ∂x = 1·Wᵀ
        let w = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::zeros(1, 2);
        let mut l = Linear::from_parts(w, b);
        let x = Matrix::from_rows(&[&[5.0, 7.0], &[11.0, 13.0]]);
        l.forward(&x, Mode::Train);
        let gx = l.backward(&Matrix::full(2, 2, 1.0));
        assert_eq!(l.params()[0].grad.row(0), &[16.0, 16.0]); // col sums of x
        assert_eq!(l.params()[0].grad.row(1), &[20.0, 20.0]);
        assert_eq!(l.params()[1].grad.row(0), &[2.0, 2.0]);
        assert_eq!(gx.row(0), &[3.0, 7.0]); // row sums of W
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Matrix::full(1, 3, 1.0);
        let g = Matrix::full(1, 2, 1.0);
        l.forward(&x, Mode::Train);
        l.backward(&g);
        let first = l.params()[0].grad.clone();
        l.forward(&x, Mode::Train);
        l.backward(&g);
        let mut doubled = first.clone();
        doubled.scale(2.0);
        assert!(l.params()[0].grad.max_abs_diff(&doubled) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "without a training-mode forward")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, &mut rng);
        l.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn scratch_reuse_survives_batch_shape_changes() {
        // Gradients must stay correct when the batch shape changes between
        // steps (the last, short batch of an epoch) — scratch buffers are
        // rebuilt, not silently reused at the wrong shape.
        let w = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut l = Linear::from_parts(w, Matrix::zeros(1, 2));
        for rows in [2usize, 3, 1, 3] {
            l.zero_grad_slot();
            let x = Matrix::from_fn(rows, 2, |r, c| (r + c) as f32 + 1.0);
            l.forward(&x, Mode::Train);
            l.backward(&Matrix::full(rows, 2, 1.0));
            // ∂W = xᵀ · 1 — column sums of x, independently recomputed.
            let mut expect = Matrix::zeros(2, 2);
            for r in 0..rows {
                for i in 0..2 {
                    for j in 0..2 {
                        expect.set(i, j, expect.get(i, j) + x.get(r, i));
                    }
                }
            }
            assert!(
                l.params()[0].grad.max_abs_diff(&expect) < 1e-5,
                "rows {rows}"
            );
        }
    }

    impl Linear {
        fn zero_grad_slot(&mut self) {
            for p in self.params() {
                p.grad.fill_zero();
            }
        }
    }

    #[test]
    fn eval_forward_does_not_cache() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, &mut rng);
        l.forward(&Matrix::zeros(1, 2), Mode::Eval);
        assert!(l.cached_input.is_none());
    }
}
