use ppgnn_tensor::Matrix;

/// A trainable parameter: a value matrix and its accumulated gradient.
///
/// Layers expose their parameters through [`crate::Module::params`]; the
/// order must be stable across calls because optimizers key their per-slot
/// state (momentum, Adam moments) by position.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Matrix,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Matrix,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient of the same shape.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param { value, grad }
    }

    /// Resets the gradient to zero (keeps the allocation).
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` if the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_of_same_shape() {
        let p = Param::new(Matrix::full(2, 3, 1.5));
        assert_eq!(p.grad.shape(), (2, 3));
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut p = Param::new(Matrix::eye(2));
        p.grad.add_assign(&Matrix::full(2, 2, 3.0));
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }
}
