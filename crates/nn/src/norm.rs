use ppgnn_tensor::Matrix;

use crate::{Mode, Module, Param};

/// Layer normalization over the feature dimension with learnable scale and
/// shift (`γ`, `β`), as used inside HOGA's attention block.
///
/// The normalized-input cache ping-pongs between `cache` (armed by a
/// training forward) and `cache_scratch` (handed back by `backward` or an
/// eval forward), so steady-state forwards reuse one buffer set.
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
    cache: Option<LnCache>,
    cache_scratch: Option<LnCache>,
}

#[derive(Debug, Default)]
struct LnCache {
    normalized: Matrix,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer-norm over `dim` features (`γ = 1`, `β = 0`,
    /// `ε = 1e-5`).
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Matrix::full(1, dim, 1.0)),
            beta: Param::new(Matrix::zeros(1, dim)),
            eps: 1e-5,
            cache: None,
            cache_scratch: None,
        }
    }

    /// Normalized feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.value.cols()
    }
}

impl Module for LayerNorm {
    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        let mut y = Matrix::default();
        self.forward_into(x, mode, &mut y);
        y
    }

    fn forward_into(&mut self, x: &Matrix, mode: Mode, out: &mut Matrix) {
        assert_eq!(x.cols(), self.dim(), "LayerNorm dim mismatch");
        let d = x.cols();
        let mut cache = self.cache_scratch.take().unwrap_or_default();
        cache.normalized.resize_to(x.rows(), d);
        cache.inv_std.clear();
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + self.eps).sqrt();
            cache.inv_std.push(istd);
            for (o, &v) in cache.normalized.row_mut(r).iter_mut().zip(row) {
                *o = (v - mean) * istd;
            }
        }
        out.resize_to(x.rows(), d);
        let gamma = self.gamma.value.row(0);
        let beta = self.beta.value.row(0);
        for r in 0..x.rows() {
            for (((o, &nx), &g), &b) in out
                .row_mut(r)
                .iter_mut()
                .zip(cache.normalized.row(r))
                .zip(gamma)
                .zip(beta)
            {
                *o = nx * g + b;
            }
        }
        if mode == Mode::Train {
            self.cache = Some(cache);
        } else {
            self.cache_scratch = Some(cache);
        }
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let LnCache {
            normalized,
            inv_std,
        } = self
            .cache
            .take()
            .expect("LayerNorm::backward called without a training-mode forward");
        assert_eq!(
            grad_out.shape(),
            normalized.shape(),
            "grad_out shape mismatch"
        );
        let d = normalized.cols();
        // `value` and `grad` are disjoint fields of `Param`, so borrowing
        // gamma's values does not conflict with the grad updates below.
        let gamma = self.gamma.value.row(0);

        // Parameter grads: ∂γ = Σ_rows g ⊙ x̂ ; ∂β = Σ_rows g.
        {
            let ggamma = self.gamma.grad.row_mut(0);
            for r in 0..grad_out.rows() {
                for ((gg, &g), &nx) in ggamma
                    .iter_mut()
                    .zip(grad_out.row(r))
                    .zip(normalized.row(r))
                {
                    *gg += g * nx;
                }
            }
        }
        {
            let gbeta = self.beta.grad.row_mut(0);
            for r in 0..grad_out.rows() {
                for (gb, &g) in gbeta.iter_mut().zip(grad_out.row(r)) {
                    *gb += g;
                }
            }
        }

        // Input grad (standard layer-norm backward):
        // ∂x = istd/d · (d·h − Σh − x̂·Σ(h⊙x̂)), where h = g ⊙ γ.
        // ppgnn-analyze: allow(hot_path_alloc) -- by-value gradient result.
        let mut gx = Matrix::zeros(grad_out.rows(), d);
        for r in 0..grad_out.rows() {
            let g = grad_out.row(r);
            let nx = normalized.row(r);
            let mut sum_h = 0.0f32;
            let mut sum_hx = 0.0f32;
            for ((&gv, &gam), &nv) in g.iter().zip(gamma).zip(nx) {
                let h = gv * gam;
                sum_h += h;
                sum_hx += h * nv;
            }
            let istd = inv_std[r];
            for (k, o) in gx.row_mut(r).iter_mut().enumerate() {
                let h = g[k] * gamma[k];
                *o = istd / d as f32 * (d as f32 * h - sum_h - nx[k] * sum_hx);
            }
        }
        self.cache_scratch = Some(LnCache {
            normalized,
            inv_std,
        });
        gx
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

/// Batch normalization over the batch dimension with running statistics,
/// matching `torch.nn.BatchNorm1d` semantics (SIGN's MLP head uses it).
#[derive(Debug)]
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
    cache_scratch: Option<BnCache>,
    /// Reusable per-feature batch-mean / batch-variance accumulators.
    mean_scratch: Vec<f32>,
    var_scratch: Vec<f32>,
}

#[derive(Debug, Default)]
struct BnCache {
    normalized: Matrix,
    inv_std: Vec<f32>,
    /// `false` when a size-1 training batch fell back to running statistics,
    /// in which case backward treats mean/var as constants.
    used_batch_stats: bool,
}

impl BatchNorm1d {
    /// Creates a batch-norm over `dim` features (momentum `0.1`, `ε = 1e-5`).
    pub fn new(dim: usize) -> Self {
        BatchNorm1d {
            gamma: Param::new(Matrix::full(1, dim, 1.0)),
            beta: Param::new(Matrix::zeros(1, dim)),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
            cache_scratch: None,
            mean_scratch: Vec::new(),
            var_scratch: Vec::new(),
        }
    }

    /// Normalized feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.value.cols()
    }
}

impl Module for BatchNorm1d {
    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        let mut y = Matrix::default();
        self.forward_into(x, mode, &mut y);
        y
    }

    fn forward_into(&mut self, x: &Matrix, mode: Mode, out: &mut Matrix) {
        assert_eq!(x.cols(), self.dim(), "BatchNorm1d dim mismatch");
        let (n, d) = x.shape();
        out.resize_to(n, d);
        let mut cache = self.cache_scratch.take().unwrap_or_default();
        cache.normalized.resize_to(n, d);
        cache.inv_std.clear();

        if mode == Mode::Eval || n <= 1 {
            cache.inv_std.extend(
                self.running_var
                    .iter()
                    .map(|&v| 1.0 / (v + self.eps).sqrt()),
            );
            for r in 0..n {
                for (k, o) in cache.normalized.row_mut(r).iter_mut().enumerate() {
                    *o = (x.get(r, k) - self.running_mean[k]) * cache.inv_std[k];
                }
            }
            let gamma = self.gamma.value.row(0);
            let beta = self.beta.value.row(0);
            for r in 0..n {
                for (((o, &nx), &g), &b) in out
                    .row_mut(r)
                    .iter_mut()
                    .zip(cache.normalized.row(r))
                    .zip(gamma)
                    .zip(beta)
                {
                    *o = nx * g + b;
                }
            }
            if mode == Mode::Train {
                cache.used_batch_stats = false;
                self.cache = Some(cache);
            } else {
                self.cache_scratch = Some(cache);
            }
            return;
        }

        // Batch statistics per feature column, accumulated into the
        // retained scratch vectors.
        let mut mean = std::mem::take(&mut self.mean_scratch);
        mean.clear();
        mean.resize(d, 0.0);
        for r in 0..n {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        let mut var = std::mem::take(&mut self.var_scratch);
        var.clear();
        var.resize(d, 0.0);
        for r in 0..n {
            for ((vv, &v), &m) in var.iter_mut().zip(x.row(r)).zip(&mean) {
                *vv += (v - m).powi(2);
            }
        }
        for v in &mut var {
            *v /= n as f32;
        }
        for k in 0..d {
            self.running_mean[k] =
                (1.0 - self.momentum) * self.running_mean[k] + self.momentum * mean[k];
            self.running_var[k] =
                (1.0 - self.momentum) * self.running_var[k] + self.momentum * var[k];
        }

        cache
            .inv_std
            .extend(var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()));
        for r in 0..n {
            for (k, o) in cache.normalized.row_mut(r).iter_mut().enumerate() {
                *o = (x.get(r, k) - mean[k]) * cache.inv_std[k];
            }
        }
        let gamma = self.gamma.value.row(0);
        let beta = self.beta.value.row(0);
        for r in 0..n {
            for (((o, &nx), &g), &b) in out
                .row_mut(r)
                .iter_mut()
                .zip(cache.normalized.row(r))
                .zip(gamma)
                .zip(beta)
            {
                *o = nx * g + b;
            }
        }
        self.mean_scratch = mean;
        self.var_scratch = var;
        cache.used_batch_stats = true;
        self.cache = Some(cache);
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let BnCache {
            normalized,
            inv_std,
            used_batch_stats,
        } = self
            .cache
            .take()
            .expect("BatchNorm1d::backward called without a training-mode forward");
        assert_eq!(
            grad_out.shape(),
            normalized.shape(),
            "grad_out shape mismatch"
        );
        let (n, d) = normalized.shape();
        // Disjoint-field borrow, as in LayerNorm::backward above.
        let gamma = self.gamma.value.row(0);

        // ppgnn-analyze: allow(hot_path_alloc) -- d-length reduction
        // buffers for the column sums.
        let mut sum_g = vec![0.0f32; d];
        // ppgnn-analyze: allow(hot_path_alloc) -- see above.
        let mut sum_gx = vec![0.0f32; d];
        for r in 0..n {
            for k in 0..d {
                let g = grad_out.get(r, k);
                sum_g[k] += g;
                sum_gx[k] += g * normalized.get(r, k);
            }
        }
        for k in 0..d {
            let gg = self.gamma.grad.get(0, k);
            self.gamma.grad.set(0, k, gg + sum_gx[k]);
            let gb = self.beta.grad.get(0, k);
            self.beta.grad.set(0, k, gb + sum_g[k]);
        }

        // ppgnn-analyze: allow(hot_path_alloc) -- by-value gradient result.
        let mut gx = Matrix::zeros(n, d);
        if !used_batch_stats {
            // Running statistics were constants in this forward.
            for r in 0..n {
                for k in 0..d {
                    gx.set(r, k, grad_out.get(r, k) * gamma[k] * inv_std[k]);
                }
            }
        } else {
            for r in 0..n {
                for k in 0..d {
                    let g = grad_out.get(r, k) * gamma[k];
                    let nx = normalized.get(r, k);
                    let val = inv_std[k] / n as f32
                        * (n as f32 * g - gamma[k] * sum_g[k] - nx * gamma[k] * sum_gx[k]);
                    gx.set(r, k, val);
                }
            }
        }
        self.cache_scratch = Some(BnCache {
            normalized,
            inv_std,
            used_batch_stats,
        });
        gx
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layernorm_output_rows_are_standardized() {
        let mut ln = LayerNorm::new(4);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[10.0, 10.0, 10.0, 30.0]]);
        let y = ln.forward(&x, Mode::Train);
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = y.row(r).iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_backward_is_zero_mean_per_row() {
        // The projection in LN backward makes row gradients sum to ~0 when
        // gamma is uniform.
        let mut ln = LayerNorm::new(3);
        let x = Matrix::from_rows(&[&[1.0, -2.0, 0.5]]);
        ln.forward(&x, Mode::Train);
        let gx = ln.backward(&Matrix::from_rows(&[&[0.3, -0.7, 1.1]]));
        let sum: f32 = gx.row(0).iter().sum();
        assert!(sum.abs() < 1e-5, "row-grad sum {sum}");
    }

    #[test]
    fn batchnorm_standardizes_columns_in_train() {
        let mut bn = BatchNorm1d::new(2);
        let x = Matrix::from_rows(&[&[1.0, 100.0], &[3.0, 300.0], &[5.0, 500.0]]);
        let y = bn.forward(&x, Mode::Train);
        for k in 0..2 {
            let col: Vec<f32> = (0..3).map(|r| y.get(r, k)).collect();
            let mean: f32 = col.iter().sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let x = Matrix::from_rows(&[&[2.0], &[4.0]]);
        for _ in 0..200 {
            bn.forward(&x, Mode::Train);
        }
        // running mean → 3, running var → 1; eval normalizes accordingly
        let y = bn.forward(&Matrix::from_rows(&[&[3.0]]), Mode::Eval);
        assert!(y.get(0, 0).abs() < 0.05, "got {}", y.get(0, 0));
    }

    #[test]
    fn single_row_batch_falls_back_to_running_stats() {
        let mut bn = BatchNorm1d::new(2);
        let y = bn.forward(&Matrix::from_rows(&[&[1.0, 2.0]]), Mode::Train);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }
}
