//! Neural-network building blocks with hand-derived backward passes.
//!
//! This crate is the training substrate the paper gets from PyTorch: a small
//! module system where every layer implements an explicit
//! [`Module::forward`] / [`Module::backward`] pair, parameters carry their
//! own gradients ([`Param`]), and optimizers ([`Sgd`], [`Adam`]) walk the
//! parameter list. There is no autograd tape — each layer caches exactly the
//! activations its backward pass needs, which keeps the per-batch compute
//! profile transparent (important for the paper's claim that PP-GNN training
//! compute is *lightweight* relative to data loading).
//!
//! Gradient correctness of every layer is verified against central
//! finite differences in the [`gradcheck`] module's tests.
//!
//! # Example
//!
//! ```
//! use ppgnn_nn::{CrossEntropyLoss, Linear, Mode, Module, Optimizer, Sequential, Sgd};
//! use ppgnn_tensor::Matrix;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = Sequential::new(vec![Box::new(Linear::new(4, 3, &mut rng))]);
//! let mut opt = Sgd::new(0.1);
//! let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.1);
//! let labels = [0u32, 2];
//!
//! let logits = model.forward(&x, Mode::Train);
//! let (loss, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
//! model.zero_grad();
//! model.backward(&grad);
//! opt.step(&mut model.params());
//! assert!(loss > 0.0);
//! ```

#![deny(missing_docs)]

mod activation;
mod attention;
mod dropout;
mod linear;
mod loss;
mod module;
mod norm;
mod optim;
mod param;

pub mod gradcheck;
pub mod metrics;
pub mod schedule;

pub use activation::{PRelu, Relu};
pub use attention::MultiHeadAttention;
pub use dropout::Dropout;
pub use linear::Linear;
pub use loss::CrossEntropyLoss;
pub use module::{Mode, Module, Sequential};
pub use norm::{BatchNorm1d, LayerNorm};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
