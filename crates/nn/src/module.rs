use ppgnn_tensor::Matrix;

use crate::Param;

/// Whether a forward pass is part of training or evaluation.
///
/// Layers with stochastic or statistics-tracking behaviour (dropout, batch
/// norm) branch on this; pure layers ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: dropout active, batch statistics updated, caches retained
    /// for [`Module::backward`].
    Train,
    /// Inference: deterministic, no caches required.
    Eval,
}

/// A differentiable computation unit.
///
/// The contract mirrors a classic layer API:
///
/// 1. `forward(x, Mode::Train)` computes the output **and caches** whatever
///    the gradient needs;
/// 2. `backward(grad_out)` consumes that cache, **accumulates** parameter
///    gradients into [`Param::grad`], and returns the gradient with respect
///    to the input;
/// 3. `params()` exposes parameters in a stable order for the optimizer.
///
/// `backward` must be called at most once per training-mode `forward`, with
/// a `grad_out` shaped like that forward's output.
pub trait Module {
    /// Computes the layer output for input `x`.
    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix;

    /// Computes the layer output into a reusable slot.
    ///
    /// `out` is resized (via [`Matrix::resize_to`]) to the output shape and
    /// fully overwritten; its previous contents are irrelevant. Passing the
    /// same slot every batch makes steady-state forward passes
    /// allocation-free for the layers shipped in this crate. The default
    /// implementation falls back to [`Module::forward`] and replaces `out`,
    /// so custom layers stay correct without opting in.
    fn forward_into(&mut self, x: &Matrix, mode: Mode, out: &mut Matrix) {
        *out = self.forward(x, mode);
    }

    /// Back-propagates `grad_out`, accumulating parameter gradients, and
    /// returns the gradient with respect to the last training-mode input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called without a preceding training-mode
    /// [`Module::forward`] or with a mis-shaped `grad_out`.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Mutable references to the parameters, in a stable order.
    fn params(&mut self) -> Vec<&mut Param>;

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params() {
            p.zero_grad();
        }
    }

    /// Total number of scalar parameters (reporting / Table 1 checks).
    fn num_params(&mut self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

/// Runs layers in order; the workhorse container for MLP heads.
///
/// # Example
///
/// ```
/// use ppgnn_nn::{Linear, Mode, Module, Relu, Sequential};
/// use ppgnn_tensor::Matrix;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut mlp = Sequential::new(vec![
///     Box::new(Linear::new(8, 16, &mut rng)),
///     Box::new(Relu::new()),
///     Box::new(Linear::new(16, 4, &mut rng)),
/// ]);
/// let y = mlp.forward(&Matrix::zeros(3, 8), Mode::Eval);
/// assert_eq!(y.shape(), (3, 4));
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
    /// Ping-pong buffers threading `forward_into` between layers; retained
    /// across batches so chained forwards reuse their intermediates.
    scratch: [Matrix; 2],
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("num_layers", &self.layers.len())
            .finish()
    }
}

impl Sequential {
    /// Builds a pipeline from boxed layers.
    pub fn new(layers: Vec<Box<dyn Module>>) -> Self {
        Sequential {
            layers,
            scratch: [Matrix::default(), Matrix::default()],
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Module>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(x, mode, &mut out);
        out
    }

    fn forward_into(&mut self, x: &Matrix, mode: Mode, out: &mut Matrix) {
        let n = self.layers.len();
        match n {
            0 => {
                out.resize_to(x.rows(), x.cols());
                out.as_mut_slice().copy_from_slice(x.as_slice());
            }
            1 => self.layers[0].forward_into(x, mode, out),
            _ => {
                // Ping-pong between the two retained scratch matrices; only
                // the last layer writes the caller's slot.
                let mut ping = std::mem::take(&mut self.scratch[0]);
                let mut pong = std::mem::take(&mut self.scratch[1]);
                self.layers[0].forward_into(x, mode, &mut ping);
                for layer in &mut self.layers[1..n - 1] {
                    layer.forward_into(&ping, mode, &mut pong);
                    std::mem::swap(&mut ping, &mut pong);
                }
                self.layers[n - 1].forward_into(&ping, mode, out);
                self.scratch = [ping, pong];
            }
        }
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        // ppgnn-analyze: allow(hot_path_alloc) -- seed of the by-value
        // gradient chain threaded through the layers below.
        let mut grad = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    fn params(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_sequential_is_identity() {
        let mut s = Sequential::new(vec![]);
        let x = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        assert_eq!(s.forward(&x, Mode::Train), x);
        assert_eq!(s.backward(&x), x);
        assert!(s.is_empty());
    }

    #[test]
    fn sequential_chains_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = Sequential::new(vec![
            Box::new(Linear::new(5, 7, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(7, 2, &mut rng)),
        ]);
        let y = s.forward(&Matrix::zeros(4, 5), Mode::Train);
        assert_eq!(y.shape(), (4, 2));
        let gx = s.backward(&Matrix::zeros(4, 2));
        assert_eq!(gx.shape(), (4, 5));
        // params: 2 linears * (W, b)
        assert_eq!(s.params().len(), 4);
        assert_eq!(s.num_params(), 5 * 7 + 7 + 7 * 2 + 2);
    }

    #[test]
    fn forward_into_matches_forward_and_resizes_the_slot() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = Sequential::new(vec![
            Box::new(Linear::new(5, 7, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(7, 2, &mut rng)),
        ]);
        let x = Matrix::from_fn(4, 5, |r, c| (r * 5 + c) as f32 * 0.1 - 1.0);
        let y = s.forward(&x, Mode::Eval);
        let mut slot = Matrix::zeros(1, 1);
        s.forward_into(&x, Mode::Eval, &mut slot);
        assert_eq!(slot, y);
        // shrinking batch reuses the slot at the new shape
        let x2 = Matrix::from_fn(2, 5, |r, c| (r + c) as f32 * 0.2);
        let y2 = s.forward(&x2, Mode::Eval);
        s.forward_into(&x2, Mode::Eval, &mut slot);
        assert_eq!(slot, y2);
    }

    #[test]
    fn zero_grad_reaches_nested_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = Sequential::new(vec![Box::new(Linear::new(3, 3, &mut rng))]);
        let x = Matrix::full(2, 3, 1.0);
        s.forward(&x, Mode::Train);
        s.backward(&Matrix::full(2, 3, 1.0));
        assert!(s.params()[0].grad.frobenius_norm() > 0.0);
        s.zero_grad();
        assert!(s.params().iter().all(|p| p.grad.frobenius_norm() == 0.0));
    }
}
