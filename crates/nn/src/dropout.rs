use ppgnn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Mode, Module, Param};

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`; evaluation is the identity.
///
/// The layer owns a seeded RNG so whole-model training stays reproducible
/// from construction-time seeds.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
    /// Spent mask buffer handed back by `backward`, refilled in place by
    /// the next training-mode forward.
    mask_scratch: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1), got {p}"
        );
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
            mask_scratch: None,
        }
    }

    /// The configured drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Module for Dropout {
    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        let mut y = Matrix::default();
        self.forward_into(x, mode, &mut y);
        y
    }

    fn forward_into(&mut self, x: &Matrix, mode: Mode, out: &mut Matrix) {
        out.resize_to(x.rows(), x.cols());
        if mode == Mode::Eval || self.p == 0.0 {
            self.mask = None;
            out.as_mut_slice().copy_from_slice(x.as_slice());
            return;
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = self.mask_scratch.take().unwrap_or_default();
        mask.clear();
        mask.extend((0..x.len()).map(|_| {
            if self.rng.random::<f32>() < keep {
                scale
            } else {
                0.0
            }
        }));
        for ((o, &v), m) in out.as_mut_slice().iter_mut().zip(x.as_slice()).zip(&mask) {
            *o = v * m;
        }
        self.mask = Some(mask);
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        match self.mask.take() {
            // ppgnn-analyze: allow(hot_path_alloc) -- gradient result is
            // produced by value; `backward` returns an owned Matrix.
            None => grad_out.clone(), // p == 0 or eval-mode forward
            Some(mask) => {
                assert_eq!(
                    mask.len(),
                    grad_out.len(),
                    "grad_out shape mismatch in Dropout"
                );
                // ppgnn-analyze: allow(hot_path_alloc) -- same by-value
                // gradient result as above.
                let mut g = grad_out.clone();
                for (v, m) in g.as_mut_slice().iter_mut().zip(&mask) {
                    *v *= m;
                }
                self.mask_scratch = Some(mask);
                g
            }
        }
    }

    fn params(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.9, 0);
        let x = Matrix::full(4, 4, 2.0);
        assert_eq!(d.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.5, 42);
        let x = Matrix::full(200, 50, 1.0);
        let y = d.forward(&x, Mode::Train);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean was {mean}");
        // surviving entries are scaled by 2
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, 7);
        let x = Matrix::full(10, 10, 1.0);
        let y = d.forward(&x, Mode::Train);
        let g = d.backward(&Matrix::full(10, 10, 1.0));
        // gradient must be zero exactly where the output was zeroed
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_in_train() {
        let mut d = Dropout::new(0.0, 0);
        let x = Matrix::full(3, 3, 5.0);
        assert_eq!(d.forward(&x, Mode::Train), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn p_of_one_is_rejected() {
        Dropout::new(1.0, 0);
    }
}
