use ppgnn_tensor::{init, matmul_batched_into, matmul_into, matmul_nt, matmul_tn, Matrix};
use rand::Rng;

use crate::{Mode, Module, Param};

/// Multi-head self-attention over a fixed number of tokens per example.
///
/// HOGA (Deng et al. 2024) treats the `R + 1` hop-feature vectors of a node
/// as tokens and applies one attention layer across them. The input is the
/// flattened `[batch * tokens, dim]` matrix; attention is computed
/// independently per example over its `tokens` consecutive rows.
///
/// Projections `W_q`, `W_k`, `W_v`, `W_o` are bias-free `dim x dim`
/// matrices split into `heads` equal slices.
///
/// The forward pass extracts each `(example, head)` pair into small
/// contiguous per-head matrices — storing `K` pre-transposed (`dh x t`)
/// during the copy — so both per-head products (`scores = Q·Kᵀ` and
/// `context = softmax(scores)·V`) run as a single
/// [`matmul_batched_into`] submission over `batch * heads` small GEMMs
/// instead of scalar loops. All per-head scratch and the training cache
/// are retained across batches (the cache ping-pongs through
/// `cache_scratch` via `backward`), so steady-state forwards allocate
/// nothing.
#[derive(Debug)]
pub struct MultiHeadAttention {
    tokens: usize,
    heads: usize,
    dim: usize,
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    cache: Option<AttnCache>,
    cache_scratch: Option<AttnCache>,
    scratch: HeadScratch,
}

#[derive(Debug, Default)]
struct AttnCache {
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Attention weights, stored as `batch * heads * tokens` rows of
    /// `tokens` columns.
    attn: Matrix,
    /// Concatenated per-head outputs before the output projection.
    merged: Matrix,
}

/// Per-`(example, head)` operand sets feeding the batched small-GEMM
/// path; grown on shape changes, reused otherwise.
#[derive(Debug, Default)]
struct HeadScratch {
    /// `b*h` matrices of `t x dh`: per-head query slices.
    qh: Vec<Matrix>,
    /// `b*h` matrices of `dh x t`: per-head key slices, pre-transposed.
    kth: Vec<Matrix>,
    /// `b*h` matrices of `t x dh`: per-head value slices.
    vh: Vec<Matrix>,
    /// `b*h` matrices of `t x t`: raw scores, then softmaxed weights.
    scores: Vec<Matrix>,
    /// `b*h` matrices of `t x dh`: per-head attention outputs.
    ctx: Vec<Matrix>,
}

impl HeadScratch {
    /// Resizes every operand list to `groups` matrices of the given shape.
    fn ensure(vec: &mut Vec<Matrix>, groups: usize, rows: usize, cols: usize) {
        vec.resize_with(groups, Matrix::default);
        for m in vec.iter_mut() {
            m.resize_to(rows, cols);
        }
    }
}

impl MultiHeadAttention {
    /// Creates an attention layer for `tokens` tokens of `dim` features with
    /// `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads` or any argument is zero.
    pub fn new(tokens: usize, dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        assert!(
            tokens > 0 && dim > 0 && heads > 0,
            "attention dims must be positive"
        );
        assert_eq!(
            dim % heads,
            0,
            "dim {dim} must be divisible by heads {heads}"
        );
        MultiHeadAttention {
            tokens,
            heads,
            dim,
            wq: Param::new(init::xavier_uniform(dim, dim, rng)),
            wk: Param::new(init::xavier_uniform(dim, dim, rng)),
            wv: Param::new(init::xavier_uniform(dim, dim, rng)),
            wo: Param::new(init::xavier_uniform(dim, dim, rng)),
            cache: None,
            cache_scratch: None,
            scratch: HeadScratch::default(),
        }
    }

    /// Tokens per example.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn batch_of(&self, x: &Matrix) -> usize {
        assert_eq!(x.cols(), self.dim, "attention input dim mismatch");
        assert_eq!(
            x.rows() % self.tokens,
            0,
            "attention input rows {} not a multiple of tokens {}",
            x.rows(),
            self.tokens
        );
        x.rows() / self.tokens
    }
}

impl Module for MultiHeadAttention {
    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        let mut y = Matrix::default();
        self.forward_into(x, mode, &mut y);
        y
    }

    fn forward_into(&mut self, x: &Matrix, mode: Mode, out: &mut Matrix) {
        let b = self.batch_of(x);
        let t = self.tokens;
        let h = self.heads;
        let dh = self.dim / h;
        let scale = 1.0 / (dh as f32).sqrt();

        let mut cb = self.cache_scratch.take().unwrap_or_default();
        cb.q.resize_to(b * t, self.dim);
        cb.k.resize_to(b * t, self.dim);
        cb.v.resize_to(b * t, self.dim);
        matmul_into(x, &self.wq.value, &mut cb.q);
        matmul_into(x, &self.wk.value, &mut cb.k);
        matmul_into(x, &self.wv.value, &mut cb.v);
        cb.attn.resize_to(b * h * t, t);
        cb.merged.resize_to(b * t, self.dim);

        // Slice each (example, head) pair into contiguous operands, with K
        // transposed during the copy so both products are plain GEMMs.
        let hs = &mut self.scratch;
        HeadScratch::ensure(&mut hs.qh, b * h, t, dh);
        HeadScratch::ensure(&mut hs.kth, b * h, dh, t);
        HeadScratch::ensure(&mut hs.vh, b * h, t, dh);
        HeadScratch::ensure(&mut hs.scores, b * h, t, t);
        HeadScratch::ensure(&mut hs.ctx, b * h, t, dh);
        for n in 0..b {
            let base = n * t;
            for head in 0..h {
                let g = n * h + head;
                let off = head * dh;
                for i in 0..t {
                    hs.qh[g]
                        .row_mut(i)
                        .copy_from_slice(&cb.q.row(base + i)[off..off + dh]);
                    hs.vh[g]
                        .row_mut(i)
                        .copy_from_slice(&cb.v.row(base + i)[off..off + dh]);
                    for (d, &kv) in cb.k.row(base + i)[off..off + dh].iter().enumerate() {
                        hs.kth[g].set(d, i, kv);
                    }
                }
            }
        }

        // scores[g] = Q_g · K_gᵀ — one pool submission for all b*h heads.
        matmul_batched_into(&hs.qh, &hs.kth, &mut hs.scores);
        for g in 0..b * h {
            for i in 0..t {
                let a_row = hs.scores[g].row_mut(i);
                // scale + stable softmax in place
                let mut max = f32::NEG_INFINITY;
                for av in a_row.iter_mut() {
                    *av *= scale;
                    max = max.max(*av);
                }
                let mut sum = 0.0;
                for av in a_row.iter_mut() {
                    *av = (*av - max).exp();
                    sum += *av;
                }
                let inv = 1.0 / sum;
                for av in a_row.iter_mut() {
                    *av *= inv;
                }
                cb.attn.row_mut(g * t + i).copy_from_slice(a_row);
            }
        }

        // context[g] = attn_g · V_g, scattered back into the merged layout.
        matmul_batched_into(&hs.scores, &hs.vh, &mut hs.ctx);
        for n in 0..b {
            let base = n * t;
            for head in 0..h {
                let g = n * h + head;
                let off = head * dh;
                for i in 0..t {
                    cb.merged.row_mut(base + i)[off..off + dh].copy_from_slice(hs.ctx[g].row(i));
                }
            }
        }

        out.resize_to(b * t, self.dim);
        matmul_into(&cb.merged, &self.wo.value, out);
        if mode == Mode::Train {
            cb.x.resize_to(x.rows(), x.cols());
            cb.x.as_mut_slice().copy_from_slice(x.as_slice());
            self.cache = Some(cb);
        } else {
            self.cache_scratch = Some(cb);
        }
    }

    // ppgnn-analyze: allow(hot_path_alloc) -- per-batch gradient work
    // buffers (dq/dk/dv, per-head attention scratch) plus the by-value
    // result; bounded by the residency pin in tests/preprocess_residency.rs.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let AttnCache {
            x,
            q,
            k,
            v,
            attn,
            merged,
        } = self
            .cache
            .take()
            .expect("MultiHeadAttention::backward called without a training-mode forward");
        assert_eq!(
            grad_out.shape(),
            (x.rows(), self.dim),
            "grad_out shape mismatch"
        );
        let b = x.rows() / self.tokens;
        let t = self.tokens;
        let h = self.heads;
        let dh = self.dim / h;
        let scale = 1.0 / (dh as f32).sqrt();

        // Output projection.
        self.wo.grad.add_assign(&matmul_tn(&merged, grad_out));
        let d_merged = matmul_nt(grad_out, &self.wo.value);

        let mut dq = Matrix::zeros(x.rows(), self.dim);
        let mut dk = Matrix::zeros(x.rows(), self.dim);
        let mut dv = Matrix::zeros(x.rows(), self.dim);

        for n in 0..b {
            let base = n * t;
            for head in 0..h {
                let off = head * dh;
                // dV[j] += Σ_i A[i][j] * dMerged[i]; dA[i][j] = dMerged[i]·V[j]
                let mut d_attn = vec![0.0f32; t * t];
                for i in 0..t {
                    let a_row = attn.row((n * h + head) * t + i);
                    let dm_row = &d_merged.row(base + i)[off..off + dh];
                    for j in 0..t {
                        let v_row = &v.row(base + j)[off..off + dh];
                        let mut dot = 0.0;
                        for (dm, vv) in dm_row.iter().zip(v_row) {
                            dot += dm * vv;
                        }
                        d_attn[i * t + j] = dot;
                        let dv_row = &mut dv.row_mut(base + j)[off..off + dh];
                        let aij = a_row[j];
                        for (dvv, dm) in dv_row.iter_mut().zip(dm_row) {
                            *dvv += aij * dm;
                        }
                    }
                }
                // softmax backward per row: dS = A ⊙ (dA − Σ_j dA⊙A)
                for i in 0..t {
                    let a_row = attn.row((n * h + head) * t + i);
                    let row = &mut d_attn[i * t..(i + 1) * t];
                    let dot: f32 = row.iter().zip(a_row).map(|(d, a)| d * a).sum();
                    for (d, &a) in row.iter_mut().zip(a_row) {
                        *d = a * (*d - dot);
                    }
                }
                // dQ[i] += scale * Σ_j dS[i][j] K[j];  dK[j] += scale * Σ_i dS[i][j] Q[i]
                for i in 0..t {
                    let dq_row = &mut dq.row_mut(base + i)[off..off + dh];
                    for j in 0..t {
                        let ds = d_attn[i * t + j] * scale;
                        let k_row = &k.row(base + j)[off..off + dh];
                        for (dqv, kv) in dq_row.iter_mut().zip(k_row) {
                            *dqv += ds * kv;
                        }
                    }
                }
                for j in 0..t {
                    let dk_row = &mut dk.row_mut(base + j)[off..off + dh];
                    for i in 0..t {
                        let ds = d_attn[i * t + j] * scale;
                        let q_row = &q.row(base + i)[off..off + dh];
                        for (dkv, qv) in dk_row.iter_mut().zip(q_row) {
                            *dkv += ds * qv;
                        }
                    }
                }
            }
        }

        self.wq.grad.add_assign(&matmul_tn(&x, &dq));
        self.wk.grad.add_assign(&matmul_tn(&x, &dk));
        self.wv.grad.add_assign(&matmul_tn(&x, &dv));

        let mut gx = matmul_nt(&dq, &self.wq.value);
        gx.add_assign(&matmul_nt(&dk, &self.wk.value));
        gx.add_assign(&matmul_nt(&dv, &self.wv.value));
        self.cache_scratch = Some(AttnCache {
            x,
            q,
            k,
            v,
            attn,
            merged,
        });
        gx
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_is_preserved() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut attn = MultiHeadAttention::new(4, 8, 2, &mut rng);
        let x = init::standard_normal(3 * 4, 8, &mut rng);
        let y = attn.forward(&x, Mode::Train);
        assert_eq!(y.shape(), (12, 8));
    }

    #[test]
    fn attention_rows_are_convex_combinations() {
        // With Wv = Wo = I and attention weights summing to 1, each output
        // token lies in the convex hull of the value tokens; with a constant
        // value signal the output is exactly that constant.
        let mut rng = StdRng::seed_from_u64(1);
        let mut attn = MultiHeadAttention::new(3, 4, 1, &mut rng);
        attn.wv.value = Matrix::eye(4);
        attn.wo.value = Matrix::eye(4);
        let x = Matrix::full(3, 4, 2.0); // one example, all tokens identical
        let y = attn.forward(&x, Mode::Eval);
        assert!(y.max_abs_diff(&x) < 1e-5);
    }

    #[test]
    fn examples_do_not_attend_across_each_other() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut attn = MultiHeadAttention::new(2, 4, 2, &mut rng);
        let a = init::standard_normal(2, 4, &mut rng);
        let b = init::standard_normal(2, 4, &mut rng);
        let ab = Matrix::vstack(&[&a, &b]);
        let ya = attn.forward(&a, Mode::Eval);
        let yab = attn.forward(&ab, Mode::Eval);
        assert!(yab.slice_rows(0, 2).max_abs_diff(&ya) < 1e-5);
        // changing example b must not affect example a's output
        let b2 = init::standard_normal(2, 4, &mut rng);
        let ab2 = Matrix::vstack(&[&a, &b2]);
        let yab2 = attn.forward(&ab2, Mode::Eval);
        assert!(yab2.slice_rows(0, 2).max_abs_diff(&yab.slice_rows(0, 2)) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "not a multiple of tokens")]
    fn ragged_batch_is_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut attn = MultiHeadAttention::new(3, 4, 1, &mut rng);
        attn.forward(&Matrix::zeros(4, 4), Mode::Eval);
    }

    #[test]
    #[should_panic(expected = "divisible by heads")]
    fn indivisible_heads_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        MultiHeadAttention::new(2, 6, 4, &mut rng);
    }

    #[test]
    fn params_exposes_four_projections() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut attn = MultiHeadAttention::new(2, 4, 2, &mut rng);
        assert_eq!(attn.params().len(), 4);
        assert_eq!(attn.num_params(), 4 * 16);
    }
}
