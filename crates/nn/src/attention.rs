use ppgnn_tensor::{init, matmul, matmul_nt, matmul_tn, Matrix};
use rand::Rng;

use crate::{Mode, Module, Param};

/// Multi-head self-attention over a fixed number of tokens per example.
///
/// HOGA (Deng et al. 2024) treats the `R + 1` hop-feature vectors of a node
/// as tokens and applies one attention layer across them. The input is the
/// flattened `[batch * tokens, dim]` matrix; attention is computed
/// independently per example over its `tokens` consecutive rows.
///
/// Projections `W_q`, `W_k`, `W_v`, `W_o` are bias-free `dim x dim`
/// matrices split into `heads` equal slices.
#[derive(Debug)]
pub struct MultiHeadAttention {
    tokens: usize,
    heads: usize,
    dim: usize,
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    cache: Option<AttnCache>,
}

#[derive(Debug)]
struct AttnCache {
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Attention weights, stored as `batch * heads * tokens` rows of
    /// `tokens` columns.
    attn: Matrix,
    /// Concatenated per-head outputs before the output projection.
    merged: Matrix,
}

impl MultiHeadAttention {
    /// Creates an attention layer for `tokens` tokens of `dim` features with
    /// `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads` or any argument is zero.
    pub fn new(tokens: usize, dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        assert!(
            tokens > 0 && dim > 0 && heads > 0,
            "attention dims must be positive"
        );
        assert_eq!(
            dim % heads,
            0,
            "dim {dim} must be divisible by heads {heads}"
        );
        MultiHeadAttention {
            tokens,
            heads,
            dim,
            wq: Param::new(init::xavier_uniform(dim, dim, rng)),
            wk: Param::new(init::xavier_uniform(dim, dim, rng)),
            wv: Param::new(init::xavier_uniform(dim, dim, rng)),
            wo: Param::new(init::xavier_uniform(dim, dim, rng)),
            cache: None,
        }
    }

    /// Tokens per example.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn batch_of(&self, x: &Matrix) -> usize {
        assert_eq!(x.cols(), self.dim, "attention input dim mismatch");
        assert_eq!(
            x.rows() % self.tokens,
            0,
            "attention input rows {} not a multiple of tokens {}",
            x.rows(),
            self.tokens
        );
        x.rows() / self.tokens
    }
}

impl Module for MultiHeadAttention {
    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        let b = self.batch_of(x);
        let t = self.tokens;
        let h = self.heads;
        let dh = self.dim / h;
        let scale = 1.0 / (dh as f32).sqrt();

        let q = matmul(x, &self.wq.value);
        let k = matmul(x, &self.wk.value);
        let v = matmul(x, &self.wv.value);

        let mut attn = Matrix::zeros(b * h * t, t);
        let mut merged = Matrix::zeros(b * t, self.dim);

        for n in 0..b {
            let base = n * t;
            for head in 0..h {
                let off = head * dh;
                // scores[i][j] = q_i · k_j * scale
                for i in 0..t {
                    let q_row = &q.row(base + i)[off..off + dh];
                    let a_row = attn.row_mut((n * h + head) * t + i);
                    for j in 0..t {
                        let k_row = &k.row(base + j)[off..off + dh];
                        let mut dot = 0.0;
                        for (qv, kv) in q_row.iter().zip(k_row) {
                            dot += qv * kv;
                        }
                        a_row[j] = dot * scale;
                    }
                    // stable softmax in place
                    let max = a_row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0;
                    for av in a_row.iter_mut() {
                        *av = (*av - max).exp();
                        sum += *av;
                    }
                    let inv = 1.0 / sum;
                    for av in a_row.iter_mut() {
                        *av *= inv;
                    }
                }
                // merged[i, off..off+dh] = Σ_j A[i][j] * v_j
                for i in 0..t {
                    let a_row = attn.row((n * h + head) * t + i).to_vec();
                    let out_row = &mut merged.row_mut(base + i)[off..off + dh];
                    for (j, &aij) in a_row.iter().enumerate() {
                        let v_row = &v.row(base + j)[off..off + dh];
                        for (o, vv) in out_row.iter_mut().zip(v_row) {
                            *o += aij * vv;
                        }
                    }
                }
            }
        }

        let y = matmul(&merged, &self.wo.value);
        if mode == Mode::Train {
            self.cache = Some(AttnCache {
                x: x.clone(),
                q,
                k,
                v,
                attn,
                merged,
            });
        }
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let AttnCache {
            x,
            q,
            k,
            v,
            attn,
            merged,
        } = self
            .cache
            .take()
            .expect("MultiHeadAttention::backward called without a training-mode forward");
        assert_eq!(
            grad_out.shape(),
            (x.rows(), self.dim),
            "grad_out shape mismatch"
        );
        let b = x.rows() / self.tokens;
        let t = self.tokens;
        let h = self.heads;
        let dh = self.dim / h;
        let scale = 1.0 / (dh as f32).sqrt();

        // Output projection.
        self.wo.grad.add_assign(&matmul_tn(&merged, grad_out));
        let d_merged = matmul_nt(grad_out, &self.wo.value);

        let mut dq = Matrix::zeros(x.rows(), self.dim);
        let mut dk = Matrix::zeros(x.rows(), self.dim);
        let mut dv = Matrix::zeros(x.rows(), self.dim);

        for n in 0..b {
            let base = n * t;
            for head in 0..h {
                let off = head * dh;
                // dV[j] += Σ_i A[i][j] * dMerged[i]; dA[i][j] = dMerged[i]·V[j]
                let mut d_attn = vec![0.0f32; t * t];
                for i in 0..t {
                    let a_row = attn.row((n * h + head) * t + i);
                    let dm_row = &d_merged.row(base + i)[off..off + dh];
                    for j in 0..t {
                        let v_row = &v.row(base + j)[off..off + dh];
                        let mut dot = 0.0;
                        for (dm, vv) in dm_row.iter().zip(v_row) {
                            dot += dm * vv;
                        }
                        d_attn[i * t + j] = dot;
                        let dv_row = &mut dv.row_mut(base + j)[off..off + dh];
                        let aij = a_row[j];
                        for (dvv, dm) in dv_row.iter_mut().zip(dm_row) {
                            *dvv += aij * dm;
                        }
                    }
                }
                // softmax backward per row: dS = A ⊙ (dA − Σ_j dA⊙A)
                for i in 0..t {
                    let a_row = attn.row((n * h + head) * t + i);
                    let row = &mut d_attn[i * t..(i + 1) * t];
                    let dot: f32 = row.iter().zip(a_row).map(|(d, a)| d * a).sum();
                    for (d, &a) in row.iter_mut().zip(a_row) {
                        *d = a * (*d - dot);
                    }
                }
                // dQ[i] += scale * Σ_j dS[i][j] K[j];  dK[j] += scale * Σ_i dS[i][j] Q[i]
                for i in 0..t {
                    let dq_row = &mut dq.row_mut(base + i)[off..off + dh];
                    for j in 0..t {
                        let ds = d_attn[i * t + j] * scale;
                        let k_row = &k.row(base + j)[off..off + dh];
                        for (dqv, kv) in dq_row.iter_mut().zip(k_row) {
                            *dqv += ds * kv;
                        }
                    }
                }
                for j in 0..t {
                    let dk_row = &mut dk.row_mut(base + j)[off..off + dh];
                    for i in 0..t {
                        let ds = d_attn[i * t + j] * scale;
                        let q_row = &q.row(base + i)[off..off + dh];
                        for (dkv, qv) in dk_row.iter_mut().zip(q_row) {
                            *dkv += ds * qv;
                        }
                    }
                }
            }
        }

        self.wq.grad.add_assign(&matmul_tn(&x, &dq));
        self.wk.grad.add_assign(&matmul_tn(&x, &dk));
        self.wv.grad.add_assign(&matmul_tn(&x, &dv));

        let mut gx = matmul_nt(&dq, &self.wq.value);
        gx.add_assign(&matmul_nt(&dk, &self.wk.value));
        gx.add_assign(&matmul_nt(&dv, &self.wv.value));
        gx
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_is_preserved() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut attn = MultiHeadAttention::new(4, 8, 2, &mut rng);
        let x = init::standard_normal(3 * 4, 8, &mut rng);
        let y = attn.forward(&x, Mode::Train);
        assert_eq!(y.shape(), (12, 8));
    }

    #[test]
    fn attention_rows_are_convex_combinations() {
        // With Wv = Wo = I and attention weights summing to 1, each output
        // token lies in the convex hull of the value tokens; with a constant
        // value signal the output is exactly that constant.
        let mut rng = StdRng::seed_from_u64(1);
        let mut attn = MultiHeadAttention::new(3, 4, 1, &mut rng);
        attn.wv.value = Matrix::eye(4);
        attn.wo.value = Matrix::eye(4);
        let x = Matrix::full(3, 4, 2.0); // one example, all tokens identical
        let y = attn.forward(&x, Mode::Eval);
        assert!(y.max_abs_diff(&x) < 1e-5);
    }

    #[test]
    fn examples_do_not_attend_across_each_other() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut attn = MultiHeadAttention::new(2, 4, 2, &mut rng);
        let a = init::standard_normal(2, 4, &mut rng);
        let b = init::standard_normal(2, 4, &mut rng);
        let ab = Matrix::vstack(&[&a, &b]);
        let ya = attn.forward(&a, Mode::Eval);
        let yab = attn.forward(&ab, Mode::Eval);
        assert!(yab.slice_rows(0, 2).max_abs_diff(&ya) < 1e-5);
        // changing example b must not affect example a's output
        let b2 = init::standard_normal(2, 4, &mut rng);
        let ab2 = Matrix::vstack(&[&a, &b2]);
        let yab2 = attn.forward(&ab2, Mode::Eval);
        assert!(yab2.slice_rows(0, 2).max_abs_diff(&yab.slice_rows(0, 2)) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "not a multiple of tokens")]
    fn ragged_batch_is_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut attn = MultiHeadAttention::new(3, 4, 1, &mut rng);
        attn.forward(&Matrix::zeros(4, 4), Mode::Eval);
    }

    #[test]
    #[should_panic(expected = "divisible by heads")]
    fn indivisible_heads_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        MultiHeadAttention::new(2, 6, 4, &mut rng);
    }

    #[test]
    fn params_exposes_four_projections() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut attn = MultiHeadAttention::new(2, 4, 2, &mut rng);
        assert_eq!(attn.params().len(), 4);
        assert_eq!(attn.num_params(), 4 * 16);
    }
}
