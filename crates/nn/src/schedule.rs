//! Learning-rate schedules.
//!
//! The paper tunes a fixed learning rate per run, but long convergence
//! studies (Figures 3/10/13) benefit from decay; these schedulers drive any
//! [`crate::Optimizer`] through its `set_lr` hook.

use crate::Optimizer;

/// A learning-rate schedule: maps an epoch index to a multiplier of the
/// base learning rate.
pub trait LrSchedule {
    /// Multiplier applied to the base LR at `epoch` (0-based).
    fn factor(&self, epoch: usize) -> f32;

    /// Applies the schedule to `opt` for `epoch`, given the base LR.
    fn apply(&self, opt: &mut dyn Optimizer, base_lr: f32, epoch: usize) {
        opt.set_lr(base_lr * self.factor(epoch));
    }
}

/// Constant learning rate (the paper's setting).
#[derive(Debug, Clone, Copy, Default)]
pub struct Constant;

impl LrSchedule for Constant {
    fn factor(&self, _epoch: usize) -> f32 {
        1.0
    }
}

/// Step decay: multiply by `gamma` every `step_size` epochs.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Epochs between decays.
    pub step_size: usize,
    /// Multiplicative decay factor per step.
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn factor(&self, epoch: usize) -> f32 {
        self.gamma.powi((epoch / self.step_size.max(1)) as i32)
    }
}

/// Cosine annealing from 1 down to `min_factor` over `total_epochs`.
#[derive(Debug, Clone, Copy)]
pub struct CosineAnnealing {
    /// Length of the annealing horizon.
    pub total_epochs: usize,
    /// Floor multiplier at the end of the horizon.
    pub min_factor: f32,
}

impl LrSchedule for CosineAnnealing {
    fn factor(&self, epoch: usize) -> f32 {
        let t = (epoch as f32 / self.total_epochs.max(1) as f32).min(1.0);
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_factor + (1.0 - self.min_factor) * cos
    }
}

/// Linear warmup for `warmup_epochs`, then an inner schedule.
#[derive(Debug, Clone, Copy)]
pub struct Warmup<S> {
    /// Epochs of linear ramp from ~0 to the full rate.
    pub warmup_epochs: usize,
    /// Schedule that takes over after the ramp (epoch re-based to 0).
    pub inner: S,
}

impl<S: LrSchedule> LrSchedule for Warmup<S> {
    fn factor(&self, epoch: usize) -> f32 {
        if epoch < self.warmup_epochs {
            (epoch + 1) as f32 / self.warmup_epochs as f32
        } else {
            self.inner.factor(epoch - self.warmup_epochs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sgd;

    #[test]
    fn constant_never_changes() {
        for e in 0..100 {
            assert_eq!(Constant.factor(e), 1.0);
        }
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = StepDecay {
            step_size: 10,
            gamma: 0.5,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn cosine_is_monotone_decreasing_to_floor() {
        let s = CosineAnnealing {
            total_epochs: 50,
            min_factor: 0.1,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        let mut prev = 2.0f32;
        for e in 0..=50 {
            let f = s.factor(e);
            assert!(f <= prev + 1e-6, "not monotone at {e}");
            prev = f;
        }
        assert!((s.factor(50) - 0.1).abs() < 1e-5);
        assert!((s.factor(80) - 0.1).abs() < 1e-5, "clamped past horizon");
    }

    #[test]
    fn warmup_ramps_then_hands_over() {
        let s = Warmup {
            warmup_epochs: 4,
            inner: Constant,
        };
        assert!((s.factor(0) - 0.25).abs() < 1e-6);
        assert!((s.factor(3) - 1.0).abs() < 1e-6);
        assert_eq!(s.factor(10), 1.0);
    }

    #[test]
    fn apply_drives_optimizer_lr() {
        let mut opt = Sgd::new(0.1);
        let s = StepDecay {
            step_size: 1,
            gamma: 0.5,
        };
        s.apply(&mut opt, 0.1, 2);
        assert!((opt.lr() - 0.025).abs() < 1e-7);
    }
}
