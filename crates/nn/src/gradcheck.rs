//! Central-difference gradient verification.
//!
//! Every layer and every model in the workspace is checked against numeric
//! gradients. The checker drives a module through the cross-entropy loss,
//! compares analytic parameter/input gradients against
//! `(L(θ+ε) − L(θ−ε)) / 2ε`, and reports the worst relative error.
//!
//! Works in `f32`, so tolerances are loose by double-precision standards;
//! with `ε = 1e-2` and O(1) activations, correct gradients land well under
//! a relative error of `5e-2` while sign errors or missing terms blow past
//! it. Modules with stochastic forwards (dropout) must be excluded.

use ppgnn_tensor::Matrix;

use crate::{CrossEntropyLoss, Mode, Module};

/// Result of a gradient check: the largest relative error seen, and where.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Worst relative error across all probed coordinates.
    pub max_rel_error: f32,
    /// Human-readable location of the worst coordinate.
    pub worst_at: String,
    /// Number of coordinates probed.
    pub probed: usize,
}

/// Verifies the analytic gradients of `module` on input `x` with `labels`
/// through softmax cross-entropy.
///
/// Probes every parameter coordinate (capped at `max_probes_per_param`,
/// strided evenly) and, when `check_input` is set, input coordinates too.
///
/// # Panics
///
/// Panics if the module's forward output row count does not match
/// `labels.len()`.
pub fn check_gradients(
    module: &mut dyn Module,
    x: &Matrix,
    labels: &[u32],
    max_probes_per_param: usize,
    check_input: bool,
) -> GradCheckReport {
    let eps = 1e-2f32;
    let loss_fn = CrossEntropyLoss;

    // Analytic pass.
    module.zero_grad();
    let logits = module.forward(x, Mode::Train);
    assert_eq!(logits.rows(), labels.len(), "labels must match output rows");
    let (_, dlogits) = loss_fn.loss_and_grad(&logits, labels);
    let dx = module.backward(&dlogits);

    let analytic_param_grads: Vec<Matrix> =
        module.params().iter().map(|p| p.grad.clone()).collect();

    let mut report = GradCheckReport {
        max_rel_error: 0.0,
        worst_at: String::new(),
        probed: 0,
    };

    let eval_loss = |module: &mut dyn Module| -> f32 {
        let out = module.forward(x, Mode::Train);
        loss_fn.loss(&out, labels)
    };

    // Parameters.
    let num_params = module.params().len();
    for pi in 0..num_params {
        let len = module.params()[pi].len();
        if len == 0 {
            continue;
        }
        let stride = (len / max_probes_per_param.max(1)).max(1);
        let mut k = 0;
        while k < len {
            let orig = module.params()[pi].value.as_slice()[k];
            module.params()[pi].value.as_mut_slice()[k] = orig + eps;
            let lp = eval_loss(module);
            module.params()[pi].value.as_mut_slice()[k] = orig - eps;
            let lm = eval_loss(module);
            module.params()[pi].value.as_mut_slice()[k] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = analytic_param_grads[pi].as_slice()[k];
            record(&mut report, numeric, analytic, &format!("param {pi}[{k}]"));
            k += stride;
        }
    }

    // Input.
    if check_input {
        let stride = (x.len() / max_probes_per_param.max(1)).max(1);
        let mut k = 0;
        while k < x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[k] += eps;
            let out = module.forward(&xp, Mode::Train);
            let lp = loss_fn.loss(&out, labels);
            let mut xm = x.clone();
            xm.as_mut_slice()[k] -= eps;
            let out = module.forward(&xm, Mode::Train);
            let lm = loss_fn.loss(&out, labels);
            let numeric = (lp - lm) / (2.0 * eps);
            record(
                &mut report,
                numeric,
                dx.as_slice()[k],
                &format!("input[{k}]"),
            );
            k += stride;
        }
    }

    report
}

fn record(report: &mut GradCheckReport, numeric: f32, analytic: f32, at: &str) {
    report.probed += 1;
    // Relative error with an absolute floor: tiny gradients drown in f32
    // noise, so differences below the floor are treated as agreement.
    let scale = numeric.abs().max(analytic.abs()).max(5e-2);
    let rel = (numeric - analytic).abs() / scale;
    if rel > report.max_rel_error {
        report.max_rel_error = rel;
        report.worst_at = at.to_string();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchNorm1d, LayerNorm, Linear, MultiHeadAttention, PRelu, Relu, Sequential};
    use ppgnn_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f32 = 5e-2;

    fn input(rows: usize, cols: usize, seed: u64) -> (Matrix, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = init::standard_normal(rows, cols, &mut rng);
        let labels = (0..rows).map(|r| (r % 3) as u32).collect();
        (x, labels)
    }

    #[test]
    fn linear_gradients_check() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = Linear::new(5, 3, &mut rng);
        let (x, y) = input(4, 5, 1);
        let rep = check_gradients(&mut m, &x, &y, 64, true);
        assert!(rep.max_rel_error < TOL, "{rep:?}");
    }

    #[test]
    fn mlp_with_relu_checks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = Sequential::new(vec![
            Box::new(Linear::new(6, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 3, &mut rng)),
        ]);
        let (x, y) = input(5, 6, 3);
        let rep = check_gradients(&mut m, &x, &y, 32, true);
        assert!(rep.max_rel_error < TOL, "{rep:?}");
    }

    #[test]
    fn prelu_gradients_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = Sequential::new(vec![
            Box::new(Linear::new(4, 6, &mut rng)),
            Box::new(PRelu::new()),
            Box::new(Linear::new(6, 3, &mut rng)),
        ]);
        let (x, y) = input(6, 4, 5);
        let rep = check_gradients(&mut m, &x, &y, 32, true);
        assert!(rep.max_rel_error < TOL, "{rep:?}");
    }

    #[test]
    fn layernorm_gradients_check() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = Sequential::new(vec![
            Box::new(Linear::new(5, 8, &mut rng)),
            Box::new(LayerNorm::new(8)),
            Box::new(Linear::new(8, 3, &mut rng)),
        ]);
        let (x, y) = input(4, 5, 7);
        let rep = check_gradients(&mut m, &x, &y, 32, true);
        assert!(rep.max_rel_error < TOL, "{rep:?}");
    }

    #[test]
    fn batchnorm_gradients_check() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut m = Sequential::new(vec![
            Box::new(Linear::new(5, 6, &mut rng)),
            Box::new(BatchNorm1d::new(6)),
            Box::new(Linear::new(6, 3, &mut rng)),
        ]);
        let (x, y) = input(6, 5, 9);
        let rep = check_gradients(&mut m, &x, &y, 24, true);
        assert!(rep.max_rel_error < TOL, "{rep:?}");
    }

    #[test]
    fn attention_gradients_check() {
        struct AttnHead {
            attn: MultiHeadAttention,
            head: Linear,
            tokens: usize,
        }
        impl Module for AttnHead {
            fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
                let y = self.attn.forward(x, mode);
                // mean-pool tokens per example, then classify
                let b = y.rows() / self.tokens;
                let mut pooled = Matrix::zeros(b, y.cols());
                for n in 0..b {
                    for t in 0..self.tokens {
                        let row = y.row(n * self.tokens + t).to_vec();
                        for (p, v) in pooled.row_mut(n).iter_mut().zip(&row) {
                            *p += v / self.tokens as f32;
                        }
                    }
                }
                self.head.forward(&pooled, mode)
            }
            fn backward(&mut self, grad_out: &Matrix) -> Matrix {
                let gp = self.head.backward(grad_out);
                let b = gp.rows();
                let mut gy = Matrix::zeros(b * self.tokens, gp.cols());
                for n in 0..b {
                    for t in 0..self.tokens {
                        let src = gp.row(n).to_vec();
                        for (o, v) in gy.row_mut(n * self.tokens + t).iter_mut().zip(&src) {
                            *o = v / self.tokens as f32;
                        }
                    }
                }
                self.attn.backward(&gy)
            }
            fn params(&mut self) -> Vec<&mut crate::Param> {
                let mut p = self.attn.params();
                p.extend(self.head.params());
                p
            }
        }

        let mut rng = StdRng::seed_from_u64(10);
        let tokens = 3;
        let mut m = AttnHead {
            attn: MultiHeadAttention::new(tokens, 8, 2, &mut rng),
            head: Linear::new(8, 3, &mut rng),
            tokens,
        };
        let mut rng2 = StdRng::seed_from_u64(11);
        let x = init::standard_normal(4 * tokens, 8, &mut rng2);
        let labels = vec![0u32, 1, 2, 0];
        let rep = check_gradients(&mut m, &x, &labels, 48, true);
        assert!(rep.max_rel_error < TOL, "{rep:?}");
    }
}
