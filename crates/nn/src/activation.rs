use ppgnn_tensor::Matrix;

use crate::{Mode, Module, Param};

/// Rectified linear unit, `y = max(x, 0)`.
///
/// The training mask is recycled: `backward` hands the spent buffer back
/// to a scratch slot the next forward refills in place, so steady-state
/// training-mode forwards allocate nothing.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
    mask_scratch: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Module for Relu {
    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        let mut y = Matrix::default();
        self.forward_into(x, mode, &mut y);
        y
    }

    fn forward_into(&mut self, x: &Matrix, mode: Mode, out: &mut Matrix) {
        out.resize_to(x.rows(), x.cols());
        for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *o = v.max(0.0);
        }
        if mode == Mode::Train {
            let mut mask = self.mask_scratch.take().unwrap_or_default();
            mask.clear();
            mask.extend(x.as_slice().iter().map(|&v| v > 0.0));
            self.mask = Some(mask);
        }
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mask = self
            .mask
            .take()
            .expect("Relu::backward called without a training-mode forward");
        assert_eq!(
            mask.len(),
            grad_out.len(),
            "grad_out shape mismatch in Relu"
        );
        // ppgnn-analyze: allow(hot_path_alloc) -- gradient result is
        // produced by value; `backward` returns an owned Matrix.
        let mut g = grad_out.clone();
        for (v, &keep) in g.as_mut_slice().iter_mut().zip(&mask) {
            if !keep {
                *v = 0.0;
            }
        }
        self.mask_scratch = Some(mask);
        g
    }

    fn params(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// Parametric ReLU with a single learnable slope `α` for negative inputs:
/// `y = max(x, 0) + α · min(x, 0)`. SIGN's inception branches use this.
#[derive(Debug)]
pub struct PRelu {
    alpha: Param,
    cached_input: Option<Matrix>,
    /// Spent `cached_input` buffer awaiting refill by the next
    /// training-mode forward.
    input_scratch: Option<Matrix>,
}

impl PRelu {
    /// Creates a PReLU layer with the conventional initial slope `0.25`.
    pub fn new() -> Self {
        PRelu {
            alpha: Param::new(Matrix::full(1, 1, 0.25)),
            cached_input: None,
            input_scratch: None,
        }
    }

    /// Current negative-side slope.
    pub fn alpha(&self) -> f32 {
        self.alpha.value.get(0, 0)
    }
}

impl Default for PRelu {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for PRelu {
    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        let mut y = Matrix::default();
        self.forward_into(x, mode, &mut y);
        y
    }

    fn forward_into(&mut self, x: &Matrix, mode: Mode, out: &mut Matrix) {
        let a = self.alpha();
        out.resize_to(x.rows(), x.cols());
        for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *o = if v > 0.0 { v } else { a * v };
        }
        if mode == Mode::Train {
            let cached = match self.input_scratch.take() {
                Some(mut buf) => {
                    buf.resize_to(x.rows(), x.cols());
                    buf.as_mut_slice().copy_from_slice(x.as_slice());
                    buf
                }
                // ppgnn-analyze: allow(hot_path_alloc) -- first-call cold
                // path; steady state reuses `input_scratch`.
                None => x.clone(),
            };
            self.cached_input = Some(cached);
        }
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .take()
            .expect("PRelu::backward called without a training-mode forward");
        assert_eq!(
            x.shape(),
            grad_out.shape(),
            "grad_out shape mismatch in PRelu"
        );
        let a = self.alpha();
        // ppgnn-analyze: allow(hot_path_alloc) -- gradient result is
        // produced by value; `backward` returns an owned Matrix.
        let mut gx = grad_out.clone();
        let mut galpha = 0.0f32;
        for ((g, &xv), gout) in gx
            .as_mut_slice()
            .iter_mut()
            .zip(x.as_slice())
            .zip(grad_out.as_slice())
        {
            if xv > 0.0 {
                // gradient passes through unchanged
            } else {
                galpha += gout * xv;
                *g = a * gout;
            }
        }
        let cur = self.alpha.grad.get(0, 0);
        self.alpha.grad.set(0, 0, cur + galpha);
        self.input_scratch = Some(x);
        gx
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.alpha]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        let y = r.forward(&x, Mode::Train);
        assert_eq!(y.row(0), &[0.0, 0.0, 2.0]);
        let g = r.backward(&Matrix::full(1, 3, 1.0));
        assert_eq!(g.row(0), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn prelu_uses_alpha_on_negatives() {
        let mut p = PRelu::new();
        let x = Matrix::from_rows(&[&[-4.0, 4.0]]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.row(0), &[-1.0, 4.0]); // alpha = 0.25
        let gx = p.backward(&Matrix::full(1, 2, 1.0));
        assert_eq!(gx.row(0), &[0.25, 1.0]);
        // ∂α = Σ g·x over negative entries = 1 * -4
        assert_eq!(p.params()[0].grad.get(0, 0), -4.0);
    }

    #[test]
    fn relu_has_no_params() {
        assert!(Relu::new().params().is_empty());
        assert_eq!(PRelu::new().params().len(), 1);
    }
}
