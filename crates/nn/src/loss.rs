use ppgnn_tensor::Matrix;

/// Softmax cross-entropy over class logits.
///
/// The combined loss-and-gradient form is used everywhere (the separate
/// softmax is never materialized in training), matching
/// `torch.nn.CrossEntropyLoss` semantics with mean reduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Computes the mean cross-entropy loss and its gradient with respect to
    /// the logits.
    ///
    /// Returns `(loss, grad)` where `grad = (softmax(logits) − onehot) / b`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()`, a label is out of range,
    /// or `logits` is empty.
    pub fn loss_and_grad(&self, logits: &Matrix, labels: &[u32]) -> (f32, Matrix) {
        assert_eq!(
            labels.len(),
            logits.rows(),
            "one label per logit row required"
        );
        assert!(!logits.is_empty(), "cross-entropy of an empty batch");
        let b = logits.rows();
        let c = logits.cols();
        let mut grad = logits.softmax_rows();
        let mut loss = 0.0f64;
        for (r, &y) in labels.iter().enumerate() {
            let y = y as usize;
            assert!(y < c, "label {y} out of range for {c} classes");
            let p = grad.get(r, y).max(1e-12);
            loss -= (p as f64).ln();
            grad.set(r, y, grad.get(r, y) - 1.0);
        }
        grad.scale(1.0 / b as f32);
        ((loss / b as f64) as f32, grad)
    }

    /// Loss only (validation loops).
    ///
    /// # Panics
    ///
    /// Same conditions as [`CrossEntropyLoss::loss_and_grad`].
    pub fn loss(&self, logits: &Matrix, labels: &[u32]) -> f32 {
        self.loss_and_grad(logits, labels).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Matrix::zeros(4, 8);
        let labels = [0u32, 1, 2, 3];
        let (loss, _) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
        assert!((loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let mut logits = Matrix::zeros(1, 3);
        logits.set(0, 2, 20.0);
        let (loss, _) = CrossEntropyLoss.loss_and_grad(&logits, &[2]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, -1.0]]);
        let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &[0, 1]);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.3, -0.8, 1.2]]);
        let labels = [1u32];
        let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
        let eps = 1e-3;
        for k in 0..3 {
            let mut plus = logits.clone();
            plus.set(0, k, plus.get(0, k) + eps);
            let mut minus = logits.clone();
            minus.set(0, k, minus.get(0, k) - eps);
            let num = (CrossEntropyLoss.loss(&plus, &labels)
                - CrossEntropyLoss.loss(&minus, &labels))
                / (2.0 * eps);
            assert!(
                (num - grad.get(0, k)).abs() < 1e-3,
                "k={k}: numeric {num} vs analytic {}",
                grad.get(0, k)
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        CrossEntropyLoss.loss_and_grad(&Matrix::zeros(1, 2), &[5]);
    }
}
