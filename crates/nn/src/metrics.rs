//! Classification metrics used by the evaluation harness.

use ppgnn_tensor::Matrix;

/// Top-1 accuracy of `logits` against `labels`, in `[0, 1]`.
///
/// Returns `0.0` for an empty batch.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()`.
pub fn accuracy(logits: &Matrix, labels: &[u32]) -> f64 {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "one label per logit row required"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let pred = logits.argmax_rows();
    let hits = pred
        .iter()
        .zip(labels)
        .filter(|(&p, &y)| p as u32 == y)
        .count();
    hits as f64 / labels.len() as f64
}

/// Macro-averaged F1 score over `num_classes` classes.
///
/// Classes absent from both predictions and labels contribute an F1 of 0
/// and still count toward the average (scikit-learn's `zero_division=0`
/// behaviour).
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn macro_f1(logits: &Matrix, labels: &[u32], num_classes: usize) -> f64 {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "one label per logit row required"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let pred = logits.argmax_rows();
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fnn = vec![0usize; num_classes];
    for (&p, &y) in pred.iter().zip(labels) {
        let y = y as usize;
        assert!(y < num_classes, "label {y} out of range");
        if p == y {
            tp[y] += 1;
        } else {
            fp[p] += 1;
            fnn[y] += 1;
        }
    }
    let mut f1_sum = 0.0;
    for k in 0..num_classes {
        let denom = 2 * tp[k] + fp[k] + fnn[k];
        if denom > 0 {
            f1_sum += 2.0 * tp[k] as f64 / denom as f64;
        }
    }
    f1_sum / num_classes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one() {
        let logits = Matrix::from_rows(&[&[9.0, 0.0], &[0.0, 9.0]]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert!((macro_f1(&logits, &[0, 1], 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn half_right_scores_half() {
        let logits = Matrix::from_rows(&[&[9.0, 0.0], &[9.0, 0.0]]);
        assert_eq!(accuracy(&logits, &[0, 1]), 0.5);
    }

    #[test]
    fn empty_batch_scores_zero() {
        let logits = Matrix::zeros(0, 3);
        assert_eq!(accuracy(&logits, &[]), 0.0);
        assert_eq!(macro_f1(&logits, &[], 3), 0.0);
    }

    #[test]
    fn macro_f1_penalizes_missing_classes() {
        // predict class 0 always; class 1 gets F1 = 0
        let logits = Matrix::from_rows(&[&[9.0, 0.0], &[9.0, 0.0]]);
        let f1 = macro_f1(&logits, &[0, 1], 2);
        // class 0: tp=1 fp=1 fn=0 → F1 = 2/3; class 1: 0 → macro = 1/3
        assert!((f1 - 1.0 / 3.0).abs() < 1e-9);
    }
}
