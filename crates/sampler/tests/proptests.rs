//! Property-based tests for the sampling algorithms.

use ppgnn_graph::gen;
use ppgnn_sampler::{LaborSampler, LadiesSampler, NeighborSampler, SaintNodeSampler, Sampler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_graph(seed: u64, n: usize) -> ppgnn_graph::CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::erdos_renyi(n, 8.0, &mut rng).expect("generation succeeds")
}

/// Checks the structural invariants every sampler must uphold.
fn check_batch(
    g: &ppgnn_graph::CsrGraph,
    batch: &ppgnn_sampler::MiniBatch,
    seeds: &[usize],
) -> Result<(), TestCaseError> {
    prop_assert!(!batch.blocks.is_empty());
    // seeds resolve through seed_local into the last block's destinations
    let last = batch.blocks.last().expect("non-empty");
    for (&s, &loc) in seeds.iter().zip(&batch.seed_local) {
        prop_assert_eq!(last.src_nodes()[loc], s, "seed mapping broken");
    }
    for block in &batch.blocks {
        // dst-prefix invariant
        prop_assert!(block.num_dst() <= block.num_src());
        // every edge references a true graph edge
        for d in 0..block.num_dst() {
            let dst_global = block.src_nodes()[d];
            for &n in block.neighbors(d) {
                let src_global = block.src_nodes()[n as usize];
                prop_assert!(
                    g.has_edge(dst_global, src_global),
                    "({dst_global},{src_global}) not an edge"
                );
            }
        }
    }
    // layer chaining: block l's dst == block l+1's src prefix
    for w in batch.blocks.windows(2) {
        prop_assert_eq!(&w[0].src_nodes()[..w[0].num_dst()], w[1].src_nodes());
    }
    // stats consistency
    prop_assert_eq!(batch.stats.seeds, seeds.len());
    prop_assert_eq!(batch.stats.input_nodes, batch.blocks[0].num_src());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn neighbor_sampler_invariants(seed in 0u64..50, num_seeds in 1usize..30) {
        let g = test_graph(seed, 150);
        let seeds: Vec<usize> = (0..num_seeds).map(|i| (i * 7) % 150).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assume!(dedup.len() == seeds.len());
        let mut s = NeighborSampler::new(vec![4, 4], seed);
        let batch = s.sample(&g, &seeds);
        check_batch(&g, &batch, &seeds)?;
        // fanout cap
        for block in &batch.blocks {
            for d in 0..block.num_dst() {
                prop_assert!(block.neighbors(d).len() <= 4);
            }
        }
    }

    #[test]
    fn labor_sampler_invariants(seed in 0u64..50, num_seeds in 1usize..30) {
        let g = test_graph(seed.wrapping_add(1), 150);
        let seeds: Vec<usize> = (0..num_seeds).map(|i| (i * 11) % 149).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assume!(dedup.len() == seeds.len());
        let mut s = LaborSampler::new(vec![4, 4], seed);
        let batch = s.sample(&g, &seeds);
        check_batch(&g, &batch, &seeds)?;
        // importance weights are ≥ 1 (inverse probabilities)
        for block in &batch.blocks {
            for d in 0..block.num_dst() {
                if let Some(ws) = block.edge_weights(d) {
                    prop_assert!(ws.iter().all(|&w| w >= 1.0 - 1e-5));
                }
            }
        }
    }

    #[test]
    fn ladies_sampler_invariants(seed in 0u64..50, budget in 4usize..64) {
        let g = test_graph(seed.wrapping_add(2), 150);
        let seeds: Vec<usize> = vec![3, 17, 42, 99];
        let mut s = LadiesSampler::new(2, budget, seed);
        let batch = s.sample(&g, &seeds);
        check_batch(&g, &batch, &seeds)?;
        // budget bound: src ≤ dst + budget per layer
        for block in &batch.blocks {
            prop_assert!(block.num_src() <= block.num_dst() + budget);
        }
    }

    #[test]
    fn saint_sampler_invariants(seed in 0u64..50, budget in 8usize..80) {
        let g = test_graph(seed.wrapping_add(3), 150);
        let seeds: Vec<usize> = vec![5, 10];
        let mut s = SaintNodeSampler::new(3, budget, seed);
        let batch = s.sample(&g, &seeds);
        check_batch(&g, &batch, &seeds)?;
        // depth-independent subgraph: all blocks identical
        for w in batch.blocks.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
        prop_assert!(batch.blocks[0].num_src() <= budget.max(seeds.len()));
    }

    #[test]
    fn same_seed_same_batch(seed in 0u64..50) {
        let g = test_graph(7, 120);
        let seeds: Vec<usize> = vec![1, 2, 3, 4, 5];
        let b1 = NeighborSampler::new(vec![3, 3], seed).sample(&g, &seeds);
        let b2 = NeighborSampler::new(vec![3, 3], seed).sample(&g, &seeds);
        prop_assert_eq!(b1, b2);
    }
}
