use ppgnn_graph::CsrGraph;

use crate::neighbor::expand_layer;
use crate::{Block, MiniBatch, SampleStats, Sampler};

/// Exact (no-sampling) block construction: every layer takes the **full**
/// neighborhood.
///
/// This is how MP-GNN *inference* is usually run (DGL's
/// `MultiLayerFullNeighborSampler`): accuracy numbers are then free of
/// sampling variance, at the cost of the full neighbor explosion — which
/// makes this builder double as the ground-truth generator for
/// receptive-field measurements (its `SampleStats` are the exact
/// explosion counts the samplers approximate).
#[derive(Debug, Clone)]
pub struct FullNeighborSampler {
    num_layers: usize,
}

impl FullNeighborSampler {
    /// Creates an exact block builder for `num_layers`-deep models.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new(num_layers: usize) -> Self {
        assert!(num_layers > 0, "at least one layer required");
        FullNeighborSampler { num_layers }
    }
}

impl Sampler for FullNeighborSampler {
    fn sample(&mut self, graph: &CsrGraph, seeds: &[usize]) -> MiniBatch {
        let mut blocks_rev: Vec<Block> = Vec::with_capacity(self.num_layers);
        let mut current: Vec<usize> = seeds.to_vec();
        for _ in 0..self.num_layers {
            let block = expand_layer(&current, |t| (graph.neighbors(t).to_vec(), None));
            current = block.src_nodes().to_vec();
            blocks_rev.push(block);
        }
        blocks_rev.reverse();
        let stats = SampleStats {
            input_nodes: blocks_rev[0].num_src(),
            total_nodes: blocks_rev.iter().map(|b| b.num_src()).sum(),
            total_edges: blocks_rev.iter().map(|b| b.num_edges()).sum(),
            seeds: seeds.len(),
        };
        MiniBatch {
            blocks: blocks_rev,
            seeds: seeds.to_vec(),
            seed_local: (0..seeds.len()).collect(),
            stats,
        }
    }

    fn num_layers(&self) -> usize {
        self.num_layers
    }

    fn name(&self) -> &'static str {
        "full-neighbor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NeighborSampler;
    use ppgnn_graph::{gen, stats};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_graph() -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(0);
        gen::erdos_renyi(300, 10.0, &mut rng).unwrap()
    }

    #[test]
    fn every_neighbor_is_included() {
        let g = test_graph();
        let mut s = FullNeighborSampler::new(1);
        let batch = s.sample(&g, &[0, 1, 2]);
        for d in 0..3 {
            assert_eq!(
                batch.blocks[0].neighbors(d).len(),
                g.degree(batch.blocks[0].src_nodes()[d]),
                "missing neighbors for dst {d}"
            );
        }
    }

    #[test]
    fn input_nodes_match_exact_receptive_field() {
        let g = test_graph();
        let mut s = FullNeighborSampler::new(2);
        let batch = s.sample(&g, &[7]);
        let exact = stats::receptive_field_size(&g, 7, 2);
        assert_eq!(batch.stats.input_nodes, exact);
    }

    #[test]
    fn dominates_any_sampled_batch() {
        let g = test_graph();
        let seeds: Vec<usize> = (0..20).collect();
        let full = FullNeighborSampler::new(2).sample(&g, &seeds);
        let sampled = NeighborSampler::new(vec![5, 5], 1).sample(&g, &seeds);
        assert!(full.stats.input_nodes >= sampled.stats.input_nodes);
        assert!(full.stats.total_edges >= sampled.stats.total_edges);
    }

    #[test]
    fn deterministic_without_randomness() {
        let g = test_graph();
        let a = FullNeighborSampler::new(3).sample(&g, &[1, 2]);
        let b = FullNeighborSampler::new(3).sample(&g, &[1, 2]);
        assert_eq!(a, b);
    }
}
