use std::collections::HashMap;

use ppgnn_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Block, MiniBatch, SampleStats, Sampler};

/// LADIES layer-dependent importance sampling (Zou et al. 2019).
///
/// Each layer samples a **fixed budget** of nodes (default 512, the paper's
/// setting) from the union neighborhood of the current destination set,
/// with probability proportional to how many destinations each candidate
/// touches (the row-sum importance of the induced adjacency). Destination
/// nodes are always retained so self information survives.
///
/// Layer-wise sampling bounds per-layer node counts (linear in depth rather
/// than exponential) but can leave destinations with few or no sampled
/// neighbors — the sparse-connectivity accuracy penalty the paper's
/// Pareto plots show for LADIES.
#[derive(Debug)]
pub struct LadiesSampler {
    num_layers: usize,
    budget: usize,
    rng: StdRng,
}

impl LadiesSampler {
    /// Creates a sampler with `num_layers` layers and per-layer node
    /// `budget`.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0` or `budget == 0`.
    pub fn new(num_layers: usize, budget: usize, seed: u64) -> Self {
        assert!(num_layers > 0, "at least one layer required");
        assert!(budget > 0, "budget must be positive");
        LadiesSampler {
            num_layers,
            budget,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Per-layer node budget.
    pub fn budget(&self) -> usize {
        self.budget
    }
}

impl Sampler for LadiesSampler {
    fn sample(&mut self, graph: &CsrGraph, seeds: &[usize]) -> MiniBatch {
        let mut blocks_rev: Vec<Block> = Vec::with_capacity(self.num_layers);
        let mut current: Vec<usize> = seeds.to_vec();
        for _ in 0..self.num_layers {
            // Importance: number of current destinations adjacent to each
            // candidate (∝ row-sum of squared normalized adjacency in the
            // original paper; connection counts are the unweighted analog).
            let mut importance: HashMap<usize, f64> = HashMap::new();
            for &t in &current {
                for &u in graph.neighbors(t) {
                    *importance.entry(u as usize).or_insert(0.0) += 1.0;
                }
            }
            // Weighted sampling without replacement (Efraimidis–Spirakis:
            // top-k by u^(1/w), via keys log(u)/w). Candidates are sorted
            // by node id first so RNG consumption — and therefore the
            // sample — is deterministic (HashMap iteration order is not).
            let mut candidates: Vec<(usize, f64)> = importance.into_iter().collect();
            candidates.sort_unstable_by_key(|&(u, _)| u);
            let mut keyed: Vec<(f64, usize)> = candidates
                .iter()
                .map(|&(u, w)| {
                    let r: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
                    (r.ln() / w, u)
                })
                .collect();
            keyed.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
            let picked: Vec<usize> = keyed.iter().take(self.budget).map(|&(_, u)| u).collect();
            let picked_set: HashMap<usize, ()> = picked.iter().map(|&u| (u, ())).collect();

            // Assemble the block: dst = current; src = dst ∪ picked;
            // edges = (t, u) with u picked and u ∈ N(t).
            let mut src_nodes = current.clone();
            let mut local = MiniBatch::local_index(&current);
            for &u in &picked {
                let next_id = src_nodes.len() as u32;
                local.entry(u).or_insert_with(|| {
                    src_nodes.push(u);
                    next_id
                });
            }
            let mut indptr = vec![0usize];
            let mut indices = Vec::new();
            for &t in &current {
                for &u in graph.neighbors(t) {
                    if picked_set.contains_key(&(u as usize)) {
                        indices.push(local[&(u as usize)]);
                    }
                }
                indptr.push(indices.len());
            }
            let block = Block::new(src_nodes, current.len(), indptr, indices, None);
            current = block.src_nodes().to_vec();
            blocks_rev.push(block);
        }
        blocks_rev.reverse();
        let stats = SampleStats {
            input_nodes: blocks_rev[0].num_src(),
            total_nodes: blocks_rev.iter().map(|b| b.num_src()).sum(),
            total_edges: blocks_rev.iter().map(|b| b.num_edges()).sum(),
            seeds: seeds.len(),
        };
        MiniBatch {
            blocks: blocks_rev,
            seeds: seeds.to_vec(),
            seed_local: (0..seeds.len()).collect(),
            stats,
        }
    }

    fn num_layers(&self) -> usize {
        self.num_layers
    }

    fn name(&self) -> &'static str {
        "ladies"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NeighborSampler;
    use ppgnn_graph::gen;

    fn test_graph() -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(0);
        gen::erdos_renyi(600, 14.0, &mut rng).unwrap()
    }

    #[test]
    fn budget_bounds_layer_growth() {
        let g = test_graph();
        let seeds: Vec<usize> = (0..64).collect();
        let budget = 100;
        let mut s = LadiesSampler::new(3, budget, 1);
        let batch = s.sample(&g, &seeds);
        for block in &batch.blocks {
            // src = dst + at most `budget` new nodes
            assert!(block.num_src() <= block.num_dst() + budget);
        }
    }

    #[test]
    fn layerwise_growth_is_linear_not_exponential() {
        let g = test_graph();
        let seeds: Vec<usize> = (0..64).collect();
        let mut ladies = LadiesSampler::new(3, 128, 2);
        let mut neighbor = NeighborSampler::new(vec![10, 10, 10], 2);
        let lb = ladies.sample(&g, &seeds);
        let nb = neighbor.sample(&g, &seeds);
        assert!(lb.stats.input_nodes < nb.stats.input_nodes);
    }

    #[test]
    fn edges_connect_real_neighbors() {
        let g = test_graph();
        let mut s = LadiesSampler::new(2, 64, 3);
        let batch = s.sample(&g, &[1, 2, 3, 4]);
        for block in &batch.blocks {
            for d in 0..block.num_dst() {
                let t = block.src_nodes()[d];
                for &u in block.neighbors(d) {
                    assert!(g.has_edge(t, block.src_nodes()[u as usize]));
                }
            }
        }
    }

    #[test]
    fn dst_nodes_survive_into_next_layer() {
        let g = test_graph();
        let mut s = LadiesSampler::new(2, 32, 4);
        let batch = s.sample(&g, &[7, 8]);
        for w in batch.blocks.windows(2) {
            let upper_src = w[1].src_nodes();
            assert_eq!(&w[0].src_nodes()[..w[0].num_dst()], upper_src);
        }
    }

    #[test]
    fn importance_prefers_highly_connected_candidates() {
        // A candidate adjacent to every seed should essentially always be
        // sampled when the budget allows.
        let mut edges = vec![];
        for s in 0..10 {
            edges.push((s, 10)); // node 10 touches all seeds
            edges.push((s, 11 + s)); // each seed has a private neighbor
        }
        let g = CsrGraph::from_edges(30, &edges, true).unwrap();
        let seeds: Vec<usize> = (0..10).collect();
        let mut hit = 0;
        for seed in 0..20 {
            let mut s = LadiesSampler::new(1, 3, seed);
            let batch = s.sample(&g, &seeds);
            if batch.blocks[0].src_nodes().contains(&10) {
                hit += 1;
            }
        }
        assert!(hit >= 18, "hub candidate sampled only {hit}/20 times");
    }

    #[test]
    fn sparse_connectivity_can_leave_empty_neighborhoods() {
        // With a tiny budget many destinations lose all neighbors — the
        // failure mode the paper attributes LADIES' accuracy gap to.
        let g = test_graph();
        let mut s = LadiesSampler::new(1, 2, 5);
        let batch = s.sample(&g, &(0..50).collect::<Vec<_>>());
        let empty = (0..50)
            .filter(|&d| batch.blocks[0].neighbors(d).is_empty())
            .count();
        assert!(empty > 10, "only {empty} empty neighborhoods");
    }
}
