use std::collections::HashMap;

use ppgnn_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Block, MiniBatch, SampleStats, Sampler};

/// GraphSAGE node-wise neighbor sampling (Hamilton et al. 2017).
///
/// For each destination node at layer `l`, samples up to `fanouts[l]`
/// distinct neighbors without replacement. The per-layer source sets grow
/// roughly multiplicatively in the fanouts — the neighbor-explosion
/// behaviour the paper characterizes.
///
/// `fanouts` is ordered **input layer first** (e.g. `[15, 10, 5]`, the
/// paper's GraphSAGE setting).
#[derive(Debug)]
pub struct NeighborSampler {
    fanouts: Vec<usize>,
    rng: StdRng,
}

impl NeighborSampler {
    /// Creates a sampler with the given per-layer fanouts and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty or contains a zero.
    pub fn new(fanouts: Vec<usize>, seed: u64) -> Self {
        assert!(!fanouts.is_empty(), "at least one layer fanout required");
        assert!(fanouts.iter().all(|&f| f > 0), "fanouts must be positive");
        NeighborSampler {
            fanouts,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured fanouts (input layer first).
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }
}

/// Samples `k` distinct elements of `pool` (all of them if `k >= len`),
/// using Floyd's algorithm so hubs don't cost `O(degree)`.
pub(crate) fn sample_distinct(pool: &[u32], k: usize, rng: &mut StdRng) -> Vec<u32> {
    let n = pool.len();
    if k >= n {
        return pool.to_vec();
    }
    let mut chosen: HashMap<usize, usize> = HashMap::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    // Floyd: for j in n-k..n, pick t in [0..=j]; if taken, use j.
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        let pick = if chosen.contains_key(&t) { j } else { t };
        chosen.insert(pick, pick);
        out.push(pool[pick]);
    }
    out
}

/// Builds one block layer: expands `dst_nodes` by `sample_fn`, preserving
/// the dst-prefix invariant.
pub(crate) fn expand_layer(
    dst_nodes: &[usize],
    mut sample_fn: impl FnMut(usize) -> (Vec<u32>, Option<Vec<f32>>),
) -> Block {
    let mut src_nodes = dst_nodes.to_vec();
    let mut local = MiniBatch::local_index(dst_nodes);
    let mut indptr = Vec::with_capacity(dst_nodes.len() + 1);
    let mut indices = Vec::new();
    let mut weights: Option<Vec<f32>> = None;
    indptr.push(0);
    for &t in dst_nodes.iter() {
        let (neigh, w) = sample_fn(t);
        if let Some(w) = w {
            weights.get_or_insert_with(Vec::new).extend(w);
        }
        for u in neigh {
            let next_id = src_nodes.len() as u32;
            let local_id = *local.entry(u as usize).or_insert_with(|| {
                src_nodes.push(u as usize);
                next_id
            });
            indices.push(local_id);
        }
        indptr.push(indices.len());
    }
    if let Some(w) = &weights {
        assert_eq!(w.len(), indices.len(), "sampler emitted ragged weights");
    }
    Block::new(src_nodes, dst_nodes.len(), indptr, indices, weights)
}

impl Sampler for NeighborSampler {
    fn sample(&mut self, graph: &CsrGraph, seeds: &[usize]) -> MiniBatch {
        let mut blocks_rev: Vec<Block> = Vec::with_capacity(self.fanouts.len());
        let mut current: Vec<usize> = seeds.to_vec();
        // Walk output → input, so iterate fanouts back to front.
        for &fanout in self.fanouts.iter().rev() {
            let rng = &mut self.rng;
            let block = expand_layer(&current, |t| {
                (sample_distinct(graph.neighbors(t), fanout, rng), None)
            });
            current = block.src_nodes().to_vec();
            blocks_rev.push(block);
        }
        blocks_rev.reverse();
        let stats = SampleStats {
            input_nodes: blocks_rev[0].num_src(),
            total_nodes: blocks_rev.iter().map(|b| b.num_src()).sum(),
            total_edges: blocks_rev.iter().map(|b| b.num_edges()).sum(),
            seeds: seeds.len(),
        };
        MiniBatch {
            blocks: blocks_rev,
            seeds: seeds.to_vec(),
            seed_local: (0..seeds.len()).collect(),
            stats,
        }
    }

    fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    fn name(&self) -> &'static str {
        "neighbor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_graph() -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(0);
        gen::erdos_renyi(200, 12.0, &mut rng).unwrap()
    }

    #[test]
    fn fanout_caps_are_respected() {
        let g = test_graph();
        let mut s = NeighborSampler::new(vec![5, 3], 1);
        let batch = s.sample(&g, &[0, 1, 2, 3]);
        assert_eq!(batch.blocks.len(), 2);
        // output block (last) obeys fanout 3; input block fanout 5
        for d in 0..batch.blocks[1].num_dst() {
            assert!(batch.blocks[1].neighbors(d).len() <= 3);
        }
        for d in 0..batch.blocks[0].num_dst() {
            assert!(batch.blocks[0].neighbors(d).len() <= 5);
        }
    }

    #[test]
    fn sampled_neighbors_are_true_neighbors() {
        let g = test_graph();
        let mut s = NeighborSampler::new(vec![4, 4], 2);
        let batch = s.sample(&g, &[5, 9]);
        for block in &batch.blocks {
            for d in 0..block.num_dst() {
                let dst_global = block.src_nodes()[d];
                for &n in block.neighbors(d) {
                    let src_global = block.src_nodes()[n as usize];
                    assert!(
                        g.has_edge(dst_global, src_global),
                        "({dst_global},{src_global}) is not an edge"
                    );
                }
            }
        }
    }

    #[test]
    fn dst_prefix_invariant_holds_across_layers() {
        let g = test_graph();
        let mut s = NeighborSampler::new(vec![3, 3, 3], 3);
        let batch = s.sample(&g, &[1, 2, 3]);
        // layer l's dst nodes are layer l+1's src nodes
        for w in batch.blocks.windows(2) {
            let upper_src = w[1].src_nodes();
            assert_eq!(&w[0].src_nodes()[..w[0].num_dst()], upper_src);
        }
        assert_eq!(&batch.blocks.last().unwrap().src_nodes()[..3], &[1, 2, 3]);
    }

    #[test]
    fn sampled_neighbors_are_distinct() {
        let g = test_graph();
        let mut s = NeighborSampler::new(vec![6], 4);
        let batch = s.sample(&g, &(0..50).collect::<Vec<_>>());
        for d in 0..batch.blocks[0].num_dst() {
            let mut ns: Vec<u32> = batch.blocks[0].neighbors(d).to_vec();
            let before = ns.len();
            ns.sort_unstable();
            ns.dedup();
            assert_eq!(ns.len(), before, "duplicate neighbor sampled");
        }
    }

    #[test]
    fn node_count_grows_with_layers() {
        let g = test_graph();
        let seeds: Vec<usize> = (0..20).collect();
        let mut s1 = NeighborSampler::new(vec![10], 5);
        let mut s3 = NeighborSampler::new(vec![10, 10, 10], 5);
        let b1 = s1.sample(&g, &seeds);
        let b3 = s3.sample(&g, &seeds);
        assert!(b3.stats.input_nodes > b1.stats.input_nodes);
        assert!(b3.stats.expansion_factor() > b1.stats.expansion_factor());
    }

    #[test]
    fn low_degree_nodes_take_all_neighbors() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2)], true).unwrap();
        let mut s = NeighborSampler::new(vec![10], 0);
        let batch = s.sample(&g, &[0]);
        assert_eq!(batch.blocks[0].neighbors(0).len(), 2);
    }

    #[test]
    fn sample_distinct_returns_subset_without_replacement() {
        let pool: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let mut got = sample_distinct(&pool, 30, &mut rng);
        assert_eq!(got.len(), 30);
        got.sort_unstable();
        let before = got.len();
        got.dedup();
        assert_eq!(got.len(), before);
        assert!(got.iter().all(|&v| v < 100));
    }
}
