use std::collections::HashMap;

use ppgnn_tensor::Matrix;

use crate::SampleStats;

/// One layer of a sampled computation graph (a message-flow graph).
///
/// Maps `num_src` source nodes to `num_dst` destination nodes through a
/// local CSR. **Invariant:** `src_nodes[..num_dst]` are exactly the
/// destination nodes, so models can slice self features without a lookup.
/// Optional per-edge weights carry the importance corrections of LABOR /
/// LADIES; unweighted blocks aggregate with uniform weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Global ids of source nodes; the first [`Block::num_dst`] entries are
    /// the destination nodes.
    src_nodes: Vec<usize>,
    num_dst: usize,
    indptr: Vec<usize>,
    /// Local indices into `src_nodes`.
    indices: Vec<u32>,
    weights: Option<Vec<f32>>,
}

impl Block {
    /// Assembles a block, validating the structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if `num_dst > src_nodes.len()`, `indptr` is not a valid prefix
    /// array over `indices`, an index exceeds `src_nodes`, or a weight
    /// vector of the wrong length is supplied.
    pub fn new(
        src_nodes: Vec<usize>,
        num_dst: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        weights: Option<Vec<f32>>,
    ) -> Self {
        assert!(num_dst <= src_nodes.len(), "num_dst exceeds src_nodes");
        assert_eq!(
            indptr.len(),
            num_dst + 1,
            "indptr must have num_dst + 1 entries"
        );
        assert_eq!(indptr[0], 0, "indptr must start at 0");
        assert_eq!(
            *indptr.last().expect("non-empty"),
            indices.len(),
            "indptr end mismatch"
        );
        assert!(
            indptr.windows(2).all(|w| w[0] <= w[1]),
            "indptr must be non-decreasing"
        );
        assert!(
            indices.iter().all(|&i| (i as usize) < src_nodes.len()),
            "block index out of bounds"
        );
        if let Some(w) = &weights {
            assert_eq!(w.len(), indices.len(), "one weight per edge required");
        }
        Block {
            src_nodes,
            num_dst,
            indptr,
            indices,
            weights,
        }
    }

    /// Global ids of all source nodes.
    pub fn src_nodes(&self) -> &[usize] {
        &self.src_nodes
    }

    /// Number of destination nodes.
    pub fn num_dst(&self) -> usize {
        self.num_dst
    }

    /// Number of source nodes.
    pub fn num_src(&self) -> usize {
        self.src_nodes.len()
    }

    /// Number of message edges.
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Local neighbor indices of destination `d`.
    pub fn neighbors(&self, d: usize) -> &[u32] {
        &self.indices[self.indptr[d]..self.indptr[d + 1]]
    }

    /// Edge weights of destination `d` (`None` → uniform).
    pub fn edge_weights(&self, d: usize) -> Option<&[f32]> {
        self.weights
            .as_ref()
            .map(|w| &w[self.indptr[d]..self.indptr[d + 1]])
    }

    /// Weighted-mean aggregation: `y[d] = Σ w_e · x[src_e] / Σ w_e`
    /// (zero row for destinations without sampled neighbors).
    ///
    /// # Panics
    ///
    /// Panics if `x_src.rows() != num_src`.
    pub fn mean_forward(&self, x_src: &Matrix) -> Matrix {
        assert_eq!(x_src.rows(), self.num_src(), "src feature row mismatch");
        let f = x_src.cols();
        let mut out = Matrix::zeros(self.num_dst, f);
        for d in 0..self.num_dst {
            let lo = self.indptr[d];
            let hi = self.indptr[d + 1];
            if lo == hi {
                continue;
            }
            let mut wsum = 0.0f32;
            {
                let row = out.row_mut(d);
                for e in lo..hi {
                    let s = self.indices[e] as usize;
                    let w = self.weights.as_ref().map_or(1.0, |ws| ws[e]);
                    wsum += w;
                    for (o, v) in row.iter_mut().zip(x_src.row(s)) {
                        *o += w * v;
                    }
                }
            }
            if wsum > 0.0 {
                let inv = 1.0 / wsum;
                for o in out.row_mut(d) {
                    *o *= inv;
                }
            }
        }
        out
    }

    /// Backward of [`Block::mean_forward`]: scatters `grad_dst` to source
    /// rows with the same normalized weights.
    ///
    /// # Panics
    ///
    /// Panics if `grad_dst.rows() != num_dst`.
    pub fn mean_backward(&self, grad_dst: &Matrix, feature_dim: usize) -> Matrix {
        assert_eq!(grad_dst.rows(), self.num_dst, "dst grad row mismatch");
        assert_eq!(grad_dst.cols(), feature_dim, "grad feature mismatch");
        let mut out = Matrix::zeros(self.num_src(), feature_dim);
        for d in 0..self.num_dst {
            let lo = self.indptr[d];
            let hi = self.indptr[d + 1];
            if lo == hi {
                continue;
            }
            let wsum: f32 = match &self.weights {
                Some(ws) => ws[lo..hi].iter().sum(),
                None => (hi - lo) as f32,
            };
            if wsum <= 0.0 {
                continue;
            }
            let g = grad_dst.row(d).to_vec();
            for e in lo..hi {
                let s = self.indices[e] as usize;
                let w = self.weights.as_ref().map_or(1.0, |ws| ws[e]) / wsum;
                let row = out.row_mut(s);
                for (o, gv) in row.iter_mut().zip(&g) {
                    *o += w * gv;
                }
            }
        }
        out
    }

    /// Iterates `(dst_local, src_local, weight)` over all edges (GAT path).
    pub fn iter_edges(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.num_dst).flat_map(move |d| {
            let lo = self.indptr[d];
            let hi = self.indptr[d + 1];
            (lo..hi).map(move |e| {
                (
                    d,
                    self.indices[e] as usize,
                    self.weights.as_ref().map_or(1.0, |w| w[e]),
                )
            })
        })
    }
}

/// A sampled minibatch: blocks ordered **input → output**.
///
/// `blocks[0].src_nodes()` are the nodes whose raw features must be
/// gathered; `blocks.last().num_dst()` destinations align with `seed_local`
/// positions carrying the loss.
#[derive(Debug, Clone, PartialEq)]
pub struct MiniBatch {
    /// Message-flow blocks, input layer first.
    pub blocks: Vec<Block>,
    /// Seed (training) node ids this batch was sampled for.
    pub seeds: Vec<usize>,
    /// Positions of the seeds within the last block's destinations.
    pub seed_local: Vec<usize>,
    /// Per-batch sampling statistics.
    pub stats: SampleStats,
}

impl MiniBatch {
    /// Global ids whose input features this batch needs.
    pub fn input_nodes(&self) -> &[usize] {
        self.blocks
            .first()
            .map(|b| b.src_nodes())
            .unwrap_or(&self.seeds)
    }

    /// Builds the helper mapping global→local used during block assembly.
    pub(crate) fn local_index(nodes: &[usize]) -> HashMap<usize, u32> {
        nodes
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_block() -> Block {
        // 2 dst (global 10, 11), sources [10, 11, 20, 21];
        // dst0 ← {20, 21}, dst1 ← {20}
        Block::new(vec![10, 11, 20, 21], 2, vec![0, 2, 3], vec![2, 3, 2], None)
    }

    #[test]
    fn invariants_are_enforced() {
        let b = simple_block();
        assert_eq!(b.num_dst(), 2);
        assert_eq!(b.num_src(), 4);
        assert_eq!(b.num_edges(), 3);
        assert_eq!(b.neighbors(0), &[2, 3]);
        assert_eq!(&b.src_nodes()[..b.num_dst()], &[10, 11]);
    }

    #[test]
    fn mean_forward_averages_neighbors() {
        let b = simple_block();
        let x = Matrix::from_rows(&[&[0.0], &[0.0], &[2.0], &[4.0]]);
        let y = b.mean_forward(&x);
        assert_eq!(y.get(0, 0), 3.0);
        assert_eq!(y.get(1, 0), 2.0);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let b = Block::new(
            vec![0, 1, 2],
            1,
            vec![0, 2],
            vec![1, 2],
            Some(vec![3.0, 1.0]),
        );
        let x = Matrix::from_rows(&[&[0.0], &[4.0], &[8.0]]);
        let y = b.mean_forward(&x);
        assert!((y.get(0, 0) - (3.0 * 4.0 + 8.0) / 4.0).abs() < 1e-6);
    }

    #[test]
    fn empty_neighborhood_gives_zero_row() {
        let b = Block::new(vec![5], 1, vec![0, 0], vec![], None);
        let x = Matrix::from_rows(&[&[7.0]]);
        assert_eq!(b.mean_forward(&x).get(0, 0), 0.0);
    }

    #[test]
    fn mean_backward_matches_numeric_jacobian() {
        let b = simple_block();
        let x = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32 * 0.3);
        // loss = sum(mean_forward(x)); numeric grad wrt x
        let base: f32 = b.mean_forward(&x).sum();
        let g = b.mean_backward(&Matrix::full(2, 2, 1.0), 2);
        let eps = 1e-2;
        for k in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[k] += eps;
            let num = (b.mean_forward(&xp).sum() - base) / eps;
            assert!(
                (num - g.as_slice()[k]).abs() < 1e-3,
                "coord {k}: numeric {num} vs analytic {}",
                g.as_slice()[k]
            );
        }
    }

    #[test]
    fn iter_edges_yields_all() {
        let b = simple_block();
        let edges: Vec<_> = b.iter_edges().collect();
        assert_eq!(edges, vec![(0, 2, 1.0), (0, 3, 1.0), (1, 2, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "indptr must have")]
    fn bad_indptr_panics() {
        Block::new(vec![0], 1, vec![0], vec![], None);
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn bad_weights_panics() {
        Block::new(vec![0, 1], 1, vec![0, 1], vec![1], Some(vec![1.0, 2.0]));
    }
}
