//! Graph-sampling algorithms for MP-GNN minibatch training.
//!
//! Implements the four sampler families the paper benchmarks against
//! (Section 2.3 / 6):
//!
//! * [`NeighborSampler`] — GraphSAGE node-wise fanout sampling
//!   (Hamilton et al. 2017),
//! * [`LaborSampler`] — layer-neighbor sampling with shared per-node
//!   randomness and importance-corrected edge weights
//!   (Balin & Çatalyürek 2024),
//! * [`LadiesSampler`] — layer-dependent importance sampling with a fixed
//!   per-layer node budget (Zou et al. 2019),
//! * [`SaintNodeSampler`] — GraphSAINT node-induced subgraph sampling
//!   (Zeng et al. 2020).
//!
//! All samplers produce [`MiniBatch`]es of [`Block`]s (message-flow graphs in
//! DGL terminology) ordered input→output, with the invariant that a block's
//! first `num_dst` source nodes *are* its destination nodes — the convention
//! GraphSAGE/GAT rely on to read "self" features.
//!
//! Every batch carries [`SampleStats`]; the neighbor-explosion and
//! data-transfer analyses (Table 1 intuition, Appendix I) are measured from
//! these counters rather than assumed.

#![deny(missing_docs)]

mod block;
mod full;
mod labor;
mod ladies;
mod neighbor;
mod saint;
mod stats;

pub use block::{Block, MiniBatch};
pub use full::FullNeighborSampler;
pub use labor::LaborSampler;
pub use ladies::LadiesSampler;
pub use neighbor::NeighborSampler;
pub use saint::SaintNodeSampler;
pub use stats::SampleStats;

use ppgnn_graph::CsrGraph;

/// A minibatch sampler: maps a seed set to a stack of message-flow blocks.
pub trait Sampler {
    /// Samples the computation graph for `seeds` (training-node ids).
    ///
    /// # Panics
    ///
    /// Implementations panic if a seed id is out of bounds for `graph`.
    fn sample(&mut self, graph: &CsrGraph, seeds: &[usize]) -> MiniBatch;

    /// Number of GNN layers the produced batches serve.
    fn num_layers(&self) -> usize;

    /// Stable display name (used in reports and harness tables).
    fn name(&self) -> &'static str;
}
