//! Per-batch sampling statistics.
//!
//! The paper's complexity table (Table 1) and data-transfer analysis
//! (Appendix I) reduce to three measured quantities per batch: how many
//! unique input-feature rows must be fetched, how many nodes appear across
//! all layers, and how many message edges flow. [`SampleStats`] accumulates
//! them as sampling happens.

/// Size counters for one sampled minibatch (or an accumulated epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleStats {
    /// Unique nodes whose raw features must be gathered (layer-0 sources).
    pub input_nodes: usize,
    /// Total source nodes summed over every block/layer.
    pub total_nodes: usize,
    /// Total message edges summed over every block/layer.
    pub total_edges: usize,
    /// Seeds (labeled nodes) served.
    pub seeds: usize,
}

impl SampleStats {
    /// Bytes of raw features this batch pulls for `feature_dim` f32 features.
    pub fn feature_bytes(&self, feature_dim: usize) -> u64 {
        (self.input_nodes * feature_dim * 4) as u64
    }

    /// Adds another batch's counters (epoch accumulation).
    pub fn accumulate(&mut self, other: &SampleStats) {
        self.input_nodes += other.input_nodes;
        self.total_nodes += other.total_nodes;
        self.total_edges += other.total_edges;
        self.seeds += other.seeds;
    }

    /// Input-feature amplification relative to the seed count — the measured
    /// face of the neighbor-explosion problem (`1.0` means no expansion, as
    /// in PP-GNN training).
    pub fn expansion_factor(&self) -> f64 {
        if self.seeds == 0 {
            0.0
        } else {
            self.input_nodes as f64 / self.seeds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_bytes_scale_with_dim() {
        let s = SampleStats {
            input_nodes: 10,
            total_nodes: 20,
            total_edges: 30,
            seeds: 5,
        };
        assert_eq!(s.feature_bytes(100), 10 * 100 * 4);
    }

    #[test]
    fn accumulate_adds_fields() {
        let mut a = SampleStats {
            input_nodes: 1,
            total_nodes: 2,
            total_edges: 3,
            seeds: 4,
        };
        a.accumulate(&a.clone());
        assert_eq!(a.input_nodes, 2);
        assert_eq!(a.seeds, 8);
    }

    #[test]
    fn expansion_factor_handles_zero_seeds() {
        assert_eq!(SampleStats::default().expansion_factor(), 0.0);
        let s = SampleStats {
            input_nodes: 50,
            total_nodes: 0,
            total_edges: 0,
            seeds: 10,
        };
        assert_eq!(s.expansion_factor(), 5.0);
    }
}
