use ppgnn_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::neighbor::expand_layer;
use crate::{Block, MiniBatch, SampleStats, Sampler};

/// LABOR-style layer-neighbor sampling (Balin & Çatalyürek 2024).
///
/// The key idea: instead of each destination sampling its neighbors
/// independently (as [`crate::NeighborSampler`] does), all destinations in
/// a layer share **one uniform variate `r_u` per candidate node `u`**.
/// Destination `t` keeps neighbor `u` iff `r_u ≤ fanout / degree(t)`. Nodes
/// wanted by many destinations are then sampled *once* rather than once per
/// destination, so the number of unique sources per layer is provably no
/// larger than independent sampling — the property that makes LABOR the
/// strongest MP-GNN baseline in the paper (and which
/// `tests` assert against [`crate::NeighborSampler`]).
///
/// Kept edges carry importance weights `1 / min(1, fanout/degree)` so the
/// weighted-mean aggregation stays unbiased.
#[derive(Debug)]
pub struct LaborSampler {
    fanouts: Vec<usize>,
    rng: StdRng,
}

impl LaborSampler {
    /// Creates a sampler with per-layer fanouts (input layer first).
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty or contains a zero.
    pub fn new(fanouts: Vec<usize>, seed: u64) -> Self {
        assert!(!fanouts.is_empty(), "at least one layer fanout required");
        assert!(fanouts.iter().all(|&f| f > 0), "fanouts must be positive");
        LaborSampler {
            fanouts,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured fanouts (input layer first).
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }
}

/// Deterministic per-(round, node) uniform variate in `[0, 1)` via
/// SplitMix64 — the shared randomness at the heart of LABOR.
fn shared_uniform(round: u64, node: u32) -> f32 {
    let mut z = round
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(node as u64)
        .wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    ((z >> 40) as f32) / ((1u64 << 24) as f32)
}

impl Sampler for LaborSampler {
    fn sample(&mut self, graph: &CsrGraph, seeds: &[usize]) -> MiniBatch {
        let mut blocks_rev: Vec<Block> = Vec::with_capacity(self.fanouts.len());
        let mut current: Vec<usize> = seeds.to_vec();
        for &fanout in self.fanouts.iter().rev() {
            // Fresh shared-randomness round per layer per batch.
            let round: u64 = self.rng.random();
            let block = expand_layer(&current, |t| {
                let neigh = graph.neighbors(t);
                let deg = neigh.len();
                if deg == 0 {
                    return (Vec::new(), Some(Vec::new()));
                }
                let p = (fanout as f32 / deg as f32).min(1.0);
                let mut kept = Vec::new();
                let mut weights = Vec::new();
                for &u in neigh {
                    if shared_uniform(round, u) <= p {
                        kept.push(u);
                        weights.push(1.0 / p);
                    }
                }
                (kept, Some(weights))
            });
            current = block.src_nodes().to_vec();
            blocks_rev.push(block);
        }
        blocks_rev.reverse();
        let stats = SampleStats {
            input_nodes: blocks_rev[0].num_src(),
            total_nodes: blocks_rev.iter().map(|b| b.num_src()).sum(),
            total_edges: blocks_rev.iter().map(|b| b.num_edges()).sum(),
            seeds: seeds.len(),
        };
        MiniBatch {
            blocks: blocks_rev,
            seeds: seeds.to_vec(),
            seed_local: (0..seeds.len()).collect(),
            stats,
        }
    }

    fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    fn name(&self) -> &'static str {
        "labor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NeighborSampler;
    use ppgnn_graph::gen;

    fn test_graph() -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(0);
        gen::erdos_renyi(500, 16.0, &mut rng).unwrap()
    }

    #[test]
    fn expected_neighbor_count_tracks_fanout() {
        let g = test_graph();
        let mut s = LaborSampler::new(vec![8], 7);
        let seeds: Vec<usize> = (0..100).collect();
        let batch = s.sample(&g, &seeds);
        let avg_deg: f64 = (0..100)
            .map(|d| batch.blocks[0].neighbors(d).len() as f64)
            .sum::<f64>()
            / 100.0;
        // E[kept] = deg * min(1, 8/deg) ≈ 8 for deg ≥ 8
        assert!((4.0..=10.0).contains(&avg_deg), "avg kept {avg_deg}");
    }

    #[test]
    fn fewer_unique_nodes_than_independent_sampling() {
        // The LABOR selling point: at equal fanout, shared randomness yields
        // fewer unique sampled nodes than per-destination sampling.
        let g = test_graph();
        let seeds: Vec<usize> = (0..200).collect();
        let mut labor = LaborSampler::new(vec![8, 8], 1);
        let mut neigh = NeighborSampler::new(vec![8, 8], 1);
        let lb = labor.sample(&g, &seeds);
        let nb = neigh.sample(&g, &seeds);
        assert!(
            lb.stats.input_nodes < nb.stats.input_nodes,
            "labor {} vs neighbor {}",
            lb.stats.input_nodes,
            nb.stats.input_nodes
        );
    }

    #[test]
    fn importance_weights_are_inverse_probabilities() {
        let g = test_graph();
        let mut s = LaborSampler::new(vec![4], 3);
        let batch = s.sample(&g, &[0, 1, 2]);
        let block = &batch.blocks[0];
        for d in 0..block.num_dst() {
            let deg = g.degree(block.src_nodes()[d]);
            let p = (4.0f32 / deg as f32).min(1.0);
            if let Some(w) = block.edge_weights(d) {
                for &wv in w {
                    assert!((wv - 1.0 / p).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn weighted_mean_is_unbiased_for_constant_signal() {
        // Whatever the sampling realization, a constant signal must average
        // to itself (for nodes with at least one kept neighbor).
        let g = test_graph();
        let mut s = LaborSampler::new(vec![4], 5);
        let batch = s.sample(&g, &(0..50).collect::<Vec<_>>());
        let block = &batch.blocks[0];
        let x = ppgnn_tensor::Matrix::full(block.num_src(), 1, 3.0);
        let y = block.mean_forward(&x);
        for d in 0..block.num_dst() {
            if !block.neighbors(d).is_empty() {
                assert!((y.get(d, 0) - 3.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn isolated_seed_yields_empty_neighborhood() {
        let g = CsrGraph::from_edges(3, &[(1, 2)], true).unwrap();
        let mut s = LaborSampler::new(vec![4], 0);
        let batch = s.sample(&g, &[0]);
        assert!(batch.blocks[0].neighbors(0).is_empty());
    }

    #[test]
    fn shared_uniform_is_deterministic_and_bounded() {
        for node in 0..1000u32 {
            let v = shared_uniform(42, node);
            assert!((0.0..1.0).contains(&v));
            assert_eq!(v, shared_uniform(42, node));
        }
        assert_ne!(shared_uniform(1, 7), shared_uniform(2, 7));
    }
}
