use ppgnn_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Block, MiniBatch, SampleStats, Sampler};

/// GraphSAINT node sampler (Zeng et al. 2020).
///
/// Samples a node-induced subgraph per batch: the seed nodes plus uniformly
/// drawn extras up to `node_budget`, with **all** edges among them. Every
/// GNN layer then runs over the same subgraph (so the per-batch node count
/// is independent of model depth — the "graph-wise" scaling behaviour),
/// and the loss is computed only at the seeds.
///
/// Expressed in the block API: `num_layers` identical blocks whose source
/// and destination sets coincide.
#[derive(Debug)]
pub struct SaintNodeSampler {
    num_layers: usize,
    node_budget: usize,
    rng: StdRng,
}

impl SaintNodeSampler {
    /// Creates a sampler producing subgraphs of at most `node_budget` nodes
    /// for a `num_layers`-deep model.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0` or `node_budget == 0`.
    pub fn new(num_layers: usize, node_budget: usize, seed: u64) -> Self {
        assert!(num_layers > 0, "at least one layer required");
        assert!(node_budget > 0, "node budget must be positive");
        SaintNodeSampler {
            num_layers,
            node_budget,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Subgraph node budget.
    pub fn node_budget(&self) -> usize {
        self.node_budget
    }
}

impl Sampler for SaintNodeSampler {
    fn sample(&mut self, graph: &CsrGraph, seeds: &[usize]) -> MiniBatch {
        // Node set: seeds first (so seed_local is the identity prefix),
        // then uniform extras up to the budget.
        let mut in_set = vec![false; graph.num_nodes()];
        let mut nodes: Vec<usize> = Vec::with_capacity(self.node_budget.max(seeds.len()));
        for &s in seeds {
            assert!(s < graph.num_nodes(), "seed {s} out of bounds");
            if !in_set[s] {
                in_set[s] = true;
                nodes.push(s);
            }
        }
        while nodes.len() < self.node_budget {
            let v = self.rng.random_range(0..graph.num_nodes());
            if !in_set[v] {
                in_set[v] = true;
                nodes.push(v);
            }
            // Dense budgets terminate via the pigeonhole: every miss is a
            // retry, but budget ≤ num_nodes keeps this bounded in practice.
            if nodes.len() == graph.num_nodes() {
                break;
            }
        }

        // Induced subgraph in local ids.
        let local = MiniBatch::local_index(&nodes);
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        for &v in &nodes {
            for &u in graph.neighbors(v) {
                if let Some(&lu) = local.get(&(u as usize)) {
                    indices.push(lu);
                }
            }
            indptr.push(indices.len());
        }
        let block = Block::new(nodes.clone(), nodes.len(), indptr, indices, None);
        let blocks: Vec<Block> = std::iter::repeat_with(|| block.clone())
            .take(self.num_layers)
            .collect();

        let stats = SampleStats {
            input_nodes: nodes.len(),
            total_nodes: nodes.len() * self.num_layers,
            total_edges: block.num_edges() * self.num_layers,
            seeds: seeds.len(),
        };
        MiniBatch {
            blocks,
            seeds: seeds.to_vec(),
            seed_local: (0..seeds.len()).collect(),
            stats,
        }
    }

    fn num_layers(&self) -> usize {
        self.num_layers
    }

    fn name(&self) -> &'static str {
        "saint-node"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_graph::gen;

    fn test_graph() -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(0);
        gen::erdos_renyi(400, 10.0, &mut rng).unwrap()
    }

    #[test]
    fn subgraph_size_is_depth_independent() {
        let g = test_graph();
        let seeds: Vec<usize> = (0..32).collect();
        let mut s2 = SaintNodeSampler::new(2, 128, 1);
        let mut s5 = SaintNodeSampler::new(5, 128, 1);
        let b2 = s2.sample(&g, &seeds);
        let b5 = s5.sample(&g, &seeds);
        assert_eq!(b2.stats.input_nodes, b5.stats.input_nodes);
        assert_eq!(b2.stats.input_nodes, 128);
    }

    #[test]
    fn all_layers_share_the_subgraph() {
        let g = test_graph();
        let mut s = SaintNodeSampler::new(3, 64, 2);
        let batch = s.sample(&g, &[0, 1]);
        assert_eq!(batch.blocks.len(), 3);
        assert_eq!(batch.blocks[0], batch.blocks[1]);
        assert_eq!(batch.blocks[1], batch.blocks[2]);
    }

    #[test]
    fn seeds_lead_the_node_list() {
        let g = test_graph();
        let mut s = SaintNodeSampler::new(2, 50, 3);
        let batch = s.sample(&g, &[9, 17, 33]);
        assert_eq!(&batch.blocks[0].src_nodes()[..3], &[9, 17, 33]);
        assert_eq!(batch.seed_local, vec![0, 1, 2]);
    }

    #[test]
    fn induced_edges_are_complete() {
        // every edge of the original graph between sampled nodes must appear
        let g = test_graph();
        let mut s = SaintNodeSampler::new(1, 80, 4);
        let batch = s.sample(&g, &[0]);
        let block = &batch.blocks[0];
        let nodes = block.src_nodes();
        let mut expected = 0usize;
        for (i, &v) in nodes.iter().enumerate() {
            for &u in nodes {
                if g.has_edge(v, u) {
                    expected += 1;
                }
            }
            let _ = i;
        }
        assert_eq!(block.num_edges(), expected);
    }

    #[test]
    fn budget_smaller_than_seed_count_keeps_all_seeds() {
        let g = test_graph();
        let seeds: Vec<usize> = (0..60).collect();
        let mut s = SaintNodeSampler::new(1, 10, 5);
        let batch = s.sample(&g, &seeds);
        assert_eq!(batch.blocks[0].num_src(), 60);
    }

    #[test]
    fn duplicate_seeds_are_collapsed() {
        let g = test_graph();
        let mut s = SaintNodeSampler::new(1, 8, 6);
        let batch = s.sample(&g, &[5, 5, 5]);
        let nodes = batch.blocks[0].src_nodes();
        assert_eq!(nodes.iter().filter(|&&v| v == 5).count(), 1);
    }
}
