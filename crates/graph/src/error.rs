use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a node id `>= num_nodes`.
    NodeOutOfBounds {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph under construction.
        num_nodes: usize,
    },
    /// CSR index arrays are internally inconsistent.
    InvalidCsr(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of bounds for graph with {num_nodes} nodes"
                )
            }
            GraphError::InvalidCsr(msg) => write!(f, "invalid csr structure: {msg}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let e = GraphError::NodeOutOfBounds {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }
}
