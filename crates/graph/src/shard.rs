//! Node-range shard plans over a CSR row space.
//!
//! Pre-propagation parallelism has two axes: within one SpMM (the
//! nnz-balanced row blocks [`WeightedCsr::spmm_into`] fans out) and across
//! operator passes. A [`ShardPlan`] makes the second axis schedulable: it
//! cuts the row space once into contiguous, nnz-balanced node ranges
//! (reusing [`nnz_balanced_blocks`]), and each (shard, operator) pair
//! becomes an independent task — a serial [`WeightedCsr::spmm_rows_into`]
//! over the shard's rows — that a scheduler can interleave with other
//! operators' shards on the shared worker pool. The node-adaptive /
//! partitioned propagation literature (Gao et al. 2023; Li et al. 2024)
//! motivates node ranges as the unit of work; nnz balancing is what keeps
//! power-law hubs from serializing a shard.
//!
//! The plan is also the seam future graph-partition parallelism and
//! multi-store sharding hang off: anything that needs "the row space, cut
//! into balanced pieces" shares this abstraction.

use std::ops::Range;

use crate::{nnz_balanced_blocks, WeightedCsr};

/// Contiguous, nnz-balanced node ranges tiling `0..rows`.
///
/// Built from a CSR `indptr` prefix-sum array; ranges never overlap, are
/// never empty, and concatenate to the full row space (so per-shard output
/// slabs of a row-major matrix tile its backing slice exactly — the
/// property the shard scheduler's `split_at_mut` fan-out relies on).
///
/// # Example
///
/// ```
/// use ppgnn_graph::{CsrGraph, ShardPlan, WeightedCsr};
///
/// let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], true)?;
/// let op = WeightedCsr::sym_norm(&g, true);
/// let plan = ShardPlan::for_operator(&op, 3);
/// assert!(plan.num_shards() <= 3);
/// assert_eq!(plan.rows(), 6);
/// # Ok::<(), ppgnn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    ranges: Vec<Range<usize>>,
    rows: usize,
}

impl ShardPlan {
    /// Builds a plan of at most `max_shards` ranges from a CSR `indptr`
    /// prefix-sum array (`rows + 1` entries).
    ///
    /// Fewer ranges are returned when rows or non-zeros run out; a single
    /// hub row heavier than the per-shard nnz target lands in its own
    /// range. `max_shards == 0` is treated as 1.
    pub fn from_indptr(indptr: &[usize], max_shards: usize) -> Self {
        let rows = indptr.len().saturating_sub(1);
        ShardPlan {
            ranges: nnz_balanced_blocks(indptr, max_shards.max(1)),
            rows,
        }
    }

    /// Builds a plan over `base`'s row space.
    ///
    /// Operators materialized from the same graph with self-loops share
    /// one sparsity structure, so a plan built from any of them balances
    /// all of them — the scheduler builds one plan per operator group.
    pub fn for_operator(base: &WeightedCsr, max_shards: usize) -> Self {
        Self::from_indptr(base.indptr(), max_shards)
    }

    /// Number of shards in the plan (0 only for an empty row space).
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Total rows the plan tiles.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The shard ranges, in row order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// `true` when the plan covers no rows.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    fn star(n: usize) -> WeightedCsr {
        let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
        WeightedCsr::sym_norm(&CsrGraph::from_edges(n, &edges, true).unwrap(), true)
    }

    #[test]
    fn ranges_tile_the_row_space_contiguously() {
        let op = star(50);
        for shards in [1, 3, 7, 64] {
            let plan = ShardPlan::for_operator(&op, shards);
            assert!(plan.num_shards() >= 1 && plan.num_shards() <= shards.max(1));
            assert_eq!(plan.ranges().first().unwrap().start, 0);
            assert_eq!(plan.ranges().last().unwrap().end, 50);
            for w in plan.ranges().windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap at {shards} shards");
            }
            assert!(plan.ranges().iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn zero_shards_degrades_to_one() {
        let op = star(8);
        let plan = ShardPlan::for_operator(&op, 0);
        assert_eq!(plan.num_shards(), 1);
        #[allow(clippy::single_range_in_vec_init)] // one range, not 0..8 indices
        let expected = [0..8];
        assert_eq!(plan.ranges(), &expected);
    }

    #[test]
    fn empty_row_space_yields_no_shards() {
        let plan = ShardPlan::from_indptr(&[0], 4);
        assert!(plan.is_empty());
        assert_eq!(plan.rows(), 0);
    }

    #[test]
    fn hub_row_gets_isolated_from_light_rows() {
        // Star hub = row 0 holds ~half the nnz; with 4 shards the first
        // range should be the hub alone (or nearly so).
        let op = star(64);
        let plan = ShardPlan::for_operator(&op, 4);
        let hub = &plan.ranges()[0];
        let nnz = |r: &Range<usize>| op.indptr()[r.end] - op.indptr()[r.start];
        let hub_nnz = nnz(hub);
        for r in &plan.ranges()[1..] {
            assert!(nnz(r) <= hub_nnz, "light shard {r:?} outweighs the hub");
        }
    }

    #[test]
    fn sharded_spmm_rows_match_full_spmm_bitwise() {
        use ppgnn_tensor::Matrix;
        let op = star(40);
        let x = Matrix::from_fn(40, 5, |r, c| ((r * 13 + c * 7) % 17) as f32 - 8.0);
        let full = op.spmm(&x);
        for shards in [1, 3, 7] {
            let plan = ShardPlan::for_operator(&op, shards);
            let mut out = Matrix::full(40, 5, f32::NAN);
            for range in plan.ranges() {
                let lo = range.start * 5;
                let hi = range.end * 5;
                op.spmm_rows_into(range.clone(), &x, &mut out.as_mut_slice()[lo..hi]);
            }
            // Bit-identical, not approximately equal: per-row accumulation
            // order is independent of shard boundaries.
            let same = out
                .as_slice()
                .iter()
                .zip(full.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{shards}-shard slice SpMM diverged from full SpMM");
        }
    }
}
