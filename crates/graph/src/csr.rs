use crate::GraphError;

/// An unweighted graph in compressed-sparse-row form.
///
/// Node ids are `usize` in `0..num_nodes`; neighbor lists are stored sorted
/// and de-duplicated. The graph is *directed* at this level — undirected
/// graphs are represented by storing both edge directions (which
/// [`CsrGraph::from_edges`] does when `symmetrize` is set, matching how
/// OGB/DGL materialize undirected benchmarks).
///
/// The sorted per-row entry order is load-bearing beyond lookups: the
/// weighted operators derived from this topology inherit it, and the SpMM
/// kernel accumulates each output row in exactly that order regardless of
/// row sharding or column tiling — which is what makes sharded,
/// partitioned, and tiled pre-propagation byte-reproducible.
///
/// # Example
///
/// ```
/// use ppgnn_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)], true)?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 4); // both directions stored
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// # Ok::<(), ppgnn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CsrGraph {
    num_nodes: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
}

impl CsrGraph {
    /// Builds a graph from an edge list.
    ///
    /// Self-loops are kept as given (normalization adds its own), parallel
    /// edges are collapsed, and neighbor lists are sorted. With
    /// `symmetrize = true` each `(u, v)` also inserts `(v, u)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if an endpoint is
    /// `>= num_nodes`.
    pub fn from_edges(
        num_nodes: usize,
        edges: &[(usize, usize)],
        symmetrize: bool,
    ) -> Result<Self, GraphError> {
        for &(u, v) in edges {
            for node in [u, v] {
                if node >= num_nodes {
                    return Err(GraphError::NodeOutOfBounds { node, num_nodes });
                }
            }
        }
        // Counting sort into CSR: one pass for degrees, one for placement.
        let mut degree = vec![0usize; num_nodes];
        for &(u, v) in edges {
            degree[u] += 1;
            if symmetrize && u != v {
                degree[v] += 1;
            }
        }
        let mut indptr = Vec::with_capacity(num_nodes + 1);
        indptr.push(0);
        for d in &degree {
            indptr.push(indptr.last().expect("non-empty") + d);
        }
        let mut indices = vec![0u32; indptr[num_nodes]];
        let mut cursor = indptr[..num_nodes].to_vec();
        for &(u, v) in edges {
            indices[cursor[u]] = v as u32;
            cursor[u] += 1;
            if symmetrize && u != v {
                indices[cursor[v]] = u as u32;
                cursor[v] += 1;
            }
        }
        // Sort + dedup each neighbor list in place.
        let mut out_indptr = vec![0usize; num_nodes + 1];
        let mut out_indices = Vec::with_capacity(indices.len());
        for v in 0..num_nodes {
            let row = &mut indices[indptr[v]..indptr[v + 1]];
            row.sort_unstable();
            let mut prev = None;
            for &n in row.iter() {
                if prev != Some(n) {
                    out_indices.push(n);
                    prev = Some(n);
                }
            }
            out_indptr[v + 1] = out_indices.len();
        }
        Ok(CsrGraph {
            num_nodes,
            indptr: out_indptr,
            indices: out_indices,
        })
    }

    /// Builds a graph directly from CSR arrays.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] if `indptr` is not monotonically
    /// non-decreasing starting at 0, its length is not `num_nodes + 1`, its
    /// last entry is not `indices.len()`, or an index is out of bounds.
    pub fn from_csr(
        num_nodes: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
    ) -> Result<Self, GraphError> {
        if indptr.len() != num_nodes + 1 {
            return Err(GraphError::InvalidCsr(format!(
                "indptr length {} != num_nodes + 1 = {}",
                indptr.len(),
                num_nodes + 1
            )));
        }
        if indptr[0] != 0 || *indptr.last().expect("len >= 1") != indices.len() {
            return Err(GraphError::InvalidCsr(
                "indptr must start at 0 and end at indices.len()".into(),
            ));
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::InvalidCsr(
                "indptr must be non-decreasing".into(),
            ));
        }
        if let Some(&bad) = indices.iter().find(|&&i| i as usize >= num_nodes) {
            return Err(GraphError::NodeOutOfBounds {
                node: bad as usize,
                num_nodes,
            });
        }
        Ok(CsrGraph {
            num_nodes,
            indptr,
            indices,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_nodes`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.indptr[v + 1] - self.indptr[v]
    }

    /// Sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_nodes`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.indices[self.indptr[v]..self.indptr[v + 1]]
    }

    /// `true` if the directed edge `(u, v)` exists.
    ///
    /// # Panics
    ///
    /// Panics if `u >= num_nodes`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// The CSR row-pointer array (length `num_nodes + 1`).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The CSR column-index array.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Approximate in-memory size of the topology in bytes (used by the
    /// auto-configuration system for placement decisions).
    pub fn size_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
    }

    /// Average degree (`0.0` for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.indices.len() as f64 / self.num_nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_symmetrizes_and_dedupes() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (1, 2), (2, 3)], true).unwrap();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.neighbors(3), &[2]);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn directed_mode_keeps_one_direction() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)], false).unwrap();
        assert_eq!(g.neighbors(0), &[1]);
        assert!(g.neighbors(1).len() == 1 && g.neighbors(1)[0] == 2);
        assert!(g.neighbors(2).is_empty());
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn self_loops_are_preserved_once() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 0), (0, 1)], true).unwrap();
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn out_of_bounds_edge_is_rejected() {
        let err = CsrGraph::from_edges(2, &[(0, 5)], true).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfBounds {
                node: 5,
                num_nodes: 2
            }
        );
    }

    #[test]
    fn from_csr_validates_structure() {
        assert!(CsrGraph::from_csr(2, vec![0, 1, 2], vec![1, 0]).is_ok());
        assert!(CsrGraph::from_csr(2, vec![0, 1], vec![1, 0]).is_err());
        assert!(CsrGraph::from_csr(2, vec![0, 3, 2], vec![1, 0]).is_err());
        assert!(CsrGraph::from_csr(2, vec![0, 1, 2], vec![1, 9]).is_err());
        assert!(CsrGraph::from_csr(2, vec![1, 1, 2], vec![1, 0]).is_err());
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = CsrGraph::from_edges(0, &[], true).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn isolated_nodes_have_empty_neighborhoods() {
        let g = CsrGraph::from_edges(5, &[(0, 1)], true).unwrap();
        assert!(g.neighbors(3).is_empty());
        assert_eq!(g.degree(3), 0);
    }
}
