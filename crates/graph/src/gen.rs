//! Seeded synthetic graph generators.
//!
//! These stand in for the paper's benchmark graphs (OGB, SNAP, IGB). Two
//! structural properties drive every result in the paper, and both are
//! controllable here:
//!
//! * **degree skew** — neighbor explosion and sampler behaviour depend on
//!   heavy-tailed degrees; [`rmat`] and the `skew` parameter of
//!   [`labeled_graph`] provide it,
//! * **label–edge correlation** — accuracy trends (more hops help; `wiki` is
//!   harder) depend on how informative neighborhoods are;
//!   [`Mixing`] controls it.

use rand::Rng;

use crate::{CsrGraph, GraphError};

/// How edges correlate with class labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mixing {
    /// With probability `h` an edge stays inside the endpoint's class
    /// (classic homophily, like `ogbn-products`).
    Homophilous(f32),
    /// With probability `h` an edge goes to class `(c + 1) % C` — strongly
    /// structured but *heterophilous*, standing in for the non-homophilous
    /// `wiki` benchmark (Lim et al. 2021). Neighborhoods remain predictive,
    /// but same-class edges are rare.
    Shifted(f32),
}

impl Mixing {
    /// The structure probability `h` regardless of variant.
    pub fn strength(&self) -> f32 {
        match *self {
            Mixing::Homophilous(h) | Mixing::Shifted(h) => h,
        }
    }
}

/// Erdős–Rényi-style random graph with expected average degree `avg_degree`
/// (undirected; both directions stored).
///
/// # Errors
///
/// Propagates [`GraphError`] from graph construction (cannot occur for
/// in-range generated edges).
pub fn erdos_renyi(n: usize, avg_degree: f64, rng: &mut impl Rng) -> Result<CsrGraph, GraphError> {
    let m = ((n as f64) * avg_degree / 2.0).round() as usize;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        edges.push((u, v));
    }
    CsrGraph::from_edges(n, &edges, true)
}

/// R-MAT generator (Chakrabarti et al. 2004) producing a power-law-ish
/// degree distribution, the skew that makes node-wise sampling explode.
///
/// `scale` gives `n = 2^scale` nodes; partition probabilities `(a, b, c)`
/// (with `d = 1 - a - b - c`) default-like values are `(0.57, 0.19, 0.19)`.
///
/// # Errors
///
/// Propagates [`GraphError`] from graph construction.
///
/// # Panics
///
/// Panics if `a + b + c >= 1.0`.
pub fn rmat(
    scale: u32,
    num_edges: usize,
    (a, b, c): (f64, f64, f64),
    rng: &mut impl Rng,
) -> Result<CsrGraph, GraphError> {
    assert!(a + b + c < 1.0, "rmat probabilities must leave room for d");
    let n = 1usize << scale;
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.random();
            if r < a {
                // top-left quadrant: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u, v));
    }
    CsrGraph::from_edges(n, &edges, true)
}

/// Generates a graph whose edges correlate with the supplied `labels`
/// according to `mixing`, with expected average (undirected) degree
/// `avg_degree` and power-law target skew `skew` (`0.0` = uniform; larger
/// values concentrate edges on low-index nodes within each class, creating
/// hubs).
///
/// For each of `n · avg_degree / 2` stubs from a uniformly random source
/// `u`, the target is drawn from `u`'s structural class (own class for
/// [`Mixing::Homophilous`], next class for [`Mixing::Shifted`]) with
/// probability `h`, otherwise uniformly from all nodes.
///
/// # Errors
///
/// Propagates [`GraphError`] from graph construction.
///
/// # Panics
///
/// Panics if `labels.len() != n` or a label is `>= num_classes`.
pub fn labeled_graph(
    n: usize,
    avg_degree: f64,
    labels: &[u32],
    num_classes: usize,
    mixing: Mixing,
    skew: f64,
    rng: &mut impl Rng,
) -> Result<CsrGraph, GraphError> {
    assert_eq!(labels.len(), n, "labels must cover every node");
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (v, &c) in labels.iter().enumerate() {
        assert!((c as usize) < num_classes, "label {c} out of range");
        by_class[c as usize].push(v);
    }
    let h = mixing.strength();
    let m = ((n as f64) * avg_degree / 2.0).round() as usize;
    let mut edges = Vec::with_capacity(m);
    let pick_skewed = |len: usize, mut rng: &mut dyn rand::RngCore| -> usize {
        let u: f64 = rand::Rng::random(&mut rng);
        if skew <= 0.0 {
            (u * len as f64) as usize % len.max(1)
        } else {
            // u^(1+skew) concentrates mass near index 0.
            ((u.powf(1.0 + skew)) * len as f64) as usize % len.max(1)
        }
    };
    for _ in 0..m {
        let u = rng.random_range(0..n);
        let structured: f32 = rng.random();
        let v = if structured < h {
            let target_class = match mixing {
                Mixing::Homophilous(_) => labels[u] as usize,
                Mixing::Shifted(_) => (labels[u] as usize + 1) % num_classes,
            };
            let members = &by_class[target_class];
            if members.is_empty() {
                rng.random_range(0..n)
            } else {
                members[pick_skewed(members.len(), rng)]
            }
        } else {
            rng.random_range(0..n)
        };
        edges.push((u, v));
    }
    CsrGraph::from_edges(n, &edges, true)
}

/// Draws `n` labels approximately uniformly over `num_classes` classes.
pub fn uniform_labels(n: usize, num_classes: usize, rng: &mut impl Rng) -> Vec<u32> {
    (0..n)
        .map(|_| rng.random_range(0..num_classes) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_hits_expected_density() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(2000, 10.0, &mut rng).unwrap();
        let avg = g.avg_degree();
        // dedup removes a few collisions; allow slack
        assert!((8.0..=10.5).contains(&avg), "avg degree was {avg}");
    }

    #[test]
    fn rmat_is_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = rmat(10, 8192, (0.57, 0.19, 0.19), &mut rng).unwrap();
        let max_deg = (0..g.num_nodes()).map(|v| g.degree(v)).max().unwrap();
        let avg = g.avg_degree();
        assert!(
            max_deg as f64 > 8.0 * avg,
            "rmat should produce hubs: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn homophilous_graph_has_high_edge_homophily() {
        let mut rng = StdRng::seed_from_u64(3);
        let labels = uniform_labels(3000, 4, &mut rng);
        let g = labeled_graph(
            3000,
            12.0,
            &labels,
            4,
            Mixing::Homophilous(0.8),
            0.0,
            &mut rng,
        )
        .unwrap();
        let h = stats::edge_homophily(&g, &labels);
        // 0.8 structured + 0.2 * 1/4 random ≈ 0.85
        assert!(h > 0.7, "edge homophily was {h}");
    }

    #[test]
    fn shifted_graph_has_low_edge_homophily_but_structure() {
        let mut rng = StdRng::seed_from_u64(4);
        let labels = uniform_labels(3000, 5, &mut rng);
        let g = labeled_graph(3000, 12.0, &labels, 5, Mixing::Shifted(0.8), 0.0, &mut rng).unwrap();
        let h = stats::edge_homophily(&g, &labels);
        assert!(h < 0.35, "shifted mixing should be heterophilous, got {h}");
        // ... but next-class edges dominate.
        let mut next = 0usize;
        let mut total = 0usize;
        for v in 0..g.num_nodes() {
            for &u in g.neighbors(v) {
                total += 1;
                if labels[u as usize] == (labels[v] + 1) % 5
                    || labels[v] == (labels[u as usize] + 1) % 5
                {
                    next += 1;
                }
            }
        }
        assert!(next as f64 / total as f64 > 0.5);
    }

    #[test]
    fn skew_creates_hubs() {
        let mut rng = StdRng::seed_from_u64(5);
        let labels = uniform_labels(2000, 2, &mut rng);
        let flat = labeled_graph(
            2000,
            10.0,
            &labels,
            2,
            Mixing::Homophilous(0.7),
            0.0,
            &mut rng,
        )
        .unwrap();
        let skewed = labeled_graph(
            2000,
            10.0,
            &labels,
            2,
            Mixing::Homophilous(0.7),
            3.0,
            &mut rng,
        )
        .unwrap();
        let max = |g: &CsrGraph| (0..g.num_nodes()).map(|v| g.degree(v)).max().unwrap();
        assert!(max(&skewed) > 2 * max(&flat));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let make = || {
            let mut rng = StdRng::seed_from_u64(99);
            let labels = uniform_labels(500, 3, &mut rng);
            labeled_graph(
                500,
                8.0,
                &labels,
                3,
                Mixing::Homophilous(0.6),
                1.0,
                &mut rng,
            )
            .unwrap()
        };
        assert_eq!(make(), make());
    }
}
