//! Disjoint node partitions of a graph, with ghost-row extraction.
//!
//! Where a [`crate::ShardPlan`] cuts one graph's row space into ranges that
//! all read a shared full-graph input buffer, a [`PartitionPlan`] cuts the
//! *graph itself* into `P` disjoint node sets that each hold only their own
//! rows — the memory model of multi-machine preprocessing. A partition's
//! SpMM still needs input rows its edges reach outside the partition; those
//! are its **ghost rows**, and [`PartitionPlan::extract`] materializes a
//! partition-local CSR whose columns are remapped to `[own rows ‖ ghost
//! rows]` so the partition computes against a compact local buffer after a
//! per-hop ghost exchange.
//!
//! Bit-identity with whole-graph diffusion is structural: extraction keeps
//! every row's entries in their original order (only the column *ids* are
//! remapped), so per-row accumulation order — the only thing that could
//! perturb f32 results — is unchanged.
//!
//! Two [`Partitioner`] strategies are provided: [`RangeCutPartitioner`]
//! (contiguous node ranges balanced by nnz, reusing
//! [`crate::nnz_balanced_blocks`]) and [`BfsGrowPartitioner`] (grows each
//! partition breadth-first to an nnz budget, trading balance precision for
//! edge locality — fewer ghost rows on community-structured graphs).

use crate::{nnz_balanced_blocks, CsrGraph, WeightedCsr};

/// A disjoint assignment of every node to one of `P` partitions.
///
/// Each partition's member list is kept sorted ascending by global node id;
/// `owner`/`local` give O(1) lookup from a global id to its
/// `(partition, local row)` coordinates — the mapping the sharded feature
/// store serves reads through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    members: Vec<Vec<usize>>,
    owner: Vec<u32>,
    local: Vec<u32>,
}

impl PartitionPlan {
    /// Builds a plan from an explicit assignment of node → partition id.
    ///
    /// Empty partitions are dropped (surviving partitions are compacted,
    /// preserving their relative id order).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` names a partition `>= num_parts`.
    pub fn from_assignment(assignment: &[usize], num_parts: usize) -> Self {
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_parts];
        for (v, &p) in assignment.iter().enumerate() {
            assert!(
                p < num_parts,
                "node {v} assigned to partition {p} >= {num_parts}"
            );
            members[p].push(v);
        }
        members.retain(|m| !m.is_empty());
        let mut owner = vec![0u32; assignment.len()];
        let mut local = vec![0u32; assignment.len()];
        for (p, m) in members.iter().enumerate() {
            // Pushed in ascending v order above, so each list is sorted.
            for (i, &v) in m.iter().enumerate() {
                owner[v] = p as u32;
                local[v] = i as u32;
            }
        }
        PartitionPlan {
            members,
            owner,
            local,
        }
    }

    /// Number of (non-empty) partitions.
    pub fn num_partitions(&self) -> usize {
        self.members.len()
    }

    /// Total nodes the plan covers.
    pub fn num_nodes(&self) -> usize {
        self.owner.len()
    }

    /// Sorted global node ids of partition `p`.
    pub fn members(&self, p: usize) -> &[usize] {
        &self.members[p]
    }

    /// Partition owning global node `v`.
    #[inline]
    pub fn owner(&self, v: usize) -> usize {
        self.owner[v] as usize
    }

    /// Local row of global node `v` within its owner's member list.
    #[inline]
    pub fn local(&self, v: usize) -> usize {
        self.local[v] as usize
    }

    /// Extracts the partition-local operator of partition `p` from `base`:
    /// a CSR over `members(p)` rows whose columns are remapped local ids —
    /// own rows first (`0..n_p`), then the sorted ghost rows
    /// (`n_p..n_p + g_p`). Entry order within each row is preserved, so
    /// local SpMM accumulation is bit-identical to whole-graph SpMM.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not square over the plan's node count.
    pub fn extract(&self, base: &WeightedCsr, p: usize) -> PartitionCsr {
        assert_eq!(
            base.rows(),
            self.num_nodes(),
            "operator/plan node count mismatch"
        );
        assert_eq!(
            base.cols(),
            self.num_nodes(),
            "partition extraction needs a square operator"
        );
        let own = &self.members[p];
        let n_p = own.len();
        // Ghosts: every referenced column not owned by p, sorted + deduped.
        let mut ghosts: Vec<usize> = Vec::new();
        for &v in own {
            for (c, _) in base.row_entries(v) {
                if self.owner(c) != p {
                    ghosts.push(c);
                }
            }
        }
        ghosts.sort_unstable();
        ghosts.dedup();

        let local_col = |c: usize| -> u32 {
            if self.owner(c) == p {
                self.local(c) as u32
            } else {
                (n_p + ghosts.binary_search(&c).expect("ghost collected above")) as u32
            }
        };
        let mut indptr = Vec::with_capacity(n_p + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut weights = Vec::new();
        for &v in own {
            for (c, w) in base.row_entries(v) {
                indices.push(local_col(c));
                weights.push(w);
            }
            indptr.push(indices.len());
        }
        let csr = WeightedCsr::from_raw(n_p, n_p + ghosts.len(), indptr, indices, weights)
            .expect("extracted partition CSR is structurally valid");
        PartitionCsr { csr, ghosts }
    }
}

/// A partition-local operator plus the global ids of its ghost rows.
///
/// `csr` has `members(p).len()` rows and `rows + ghosts.len()` columns;
/// the input buffer it multiplies against is `[own rows ‖ ghost rows]`,
/// with ghost row `i` holding the current values of global node
/// `ghosts[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionCsr {
    /// The remapped local operator.
    pub csr: WeightedCsr,
    /// Sorted global node ids this partition must fetch each hop.
    pub ghosts: Vec<usize>,
}

/// A strategy for cutting a graph into `P` disjoint node partitions.
pub trait Partitioner {
    /// Stable display name (used in reports and bench artifacts).
    fn name(&self) -> &'static str;

    /// Cuts `graph` into at most `max_parts` non-empty partitions.
    /// `max_parts == 0` is treated as 1.
    fn partition(&self, graph: &CsrGraph, max_parts: usize) -> PartitionPlan;
}

/// Contiguous node ranges balanced by adjacency non-zeros — the direct
/// graph-level analog of [`crate::ShardPlan`], and the default partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangeCutPartitioner;

impl Partitioner for RangeCutPartitioner {
    fn name(&self) -> &'static str {
        "range-cut"
    }

    fn partition(&self, graph: &CsrGraph, max_parts: usize) -> PartitionPlan {
        let n = graph.num_nodes();
        let blocks = nnz_balanced_blocks(graph.indptr(), max_parts.max(1));
        let mut assignment = vec![0usize; n];
        for (p, range) in blocks.iter().enumerate() {
            for slot in &mut assignment[range.clone()] {
                *slot = p;
            }
        }
        PartitionPlan::from_assignment(&assignment, blocks.len().max(1))
    }
}

/// Grows each partition breadth-first from the lowest-id unassigned seed
/// until an nnz budget (`total_nnz / P`) is reached, then starts the next —
/// a cheap locality partitioner: neighbors tend to land together, so ghost
/// sets shrink on community-structured graphs relative to a range cut over
/// a scrambled node order.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsGrowPartitioner;

impl Partitioner for BfsGrowPartitioner {
    fn name(&self) -> &'static str {
        "bfs-grow"
    }

    fn partition(&self, graph: &CsrGraph, max_parts: usize) -> PartitionPlan {
        let n = graph.num_nodes();
        let parts = max_parts.max(1).min(n.max(1));
        if n == 0 {
            return PartitionPlan::from_assignment(&[], 1);
        }
        let total_nnz = graph.num_edges().max(n); // count rows for edgeless graphs
        let budget = total_nnz.div_ceil(parts);
        const UNASSIGNED: usize = usize::MAX;
        let mut assignment = vec![UNASSIGNED; n];
        let mut queue = std::collections::VecDeque::new();
        let mut next_seed = 0usize;
        let mut current = 0usize;
        let mut current_nnz = 0usize;
        let mut assigned = 0usize;
        while assigned < n {
            // Refill from the lowest unassigned node when the frontier dies.
            let v = match queue.pop_front() {
                Some(v) => v,
                None => {
                    while assignment[next_seed] != UNASSIGNED {
                        next_seed += 1;
                    }
                    next_seed
                }
            };
            if assignment[v] != UNASSIGNED {
                continue;
            }
            assignment[v] = current;
            assigned += 1;
            current_nnz += graph.degree(v).max(1);
            for &u in graph.neighbors(v) {
                if assignment[u as usize] == UNASSIGNED {
                    queue.push_back(u as usize);
                }
            }
            // The last partition absorbs the remainder regardless of budget.
            if current_nnz >= budget && current + 1 < parts {
                current += 1;
                current_nnz = 0;
                queue.clear();
            }
        }
        PartitionPlan::from_assignment(&assignment, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> CsrGraph {
        let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
        CsrGraph::from_edges(n, &edges, true).unwrap()
    }

    fn assert_covers(plan: &PartitionPlan, n: usize) {
        let mut all: Vec<usize> = (0..plan.num_partitions())
            .flat_map(|p| plan.members(p).to_vec())
            .collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..n).collect::<Vec<_>>(),
            "partitions must tile the node set"
        );
        for p in 0..plan.num_partitions() {
            for (i, &v) in plan.members(p).iter().enumerate() {
                assert_eq!(plan.owner(v), p);
                assert_eq!(plan.local(v), i);
            }
            assert!(
                plan.members(p).windows(2).all(|w| w[0] < w[1]),
                "members sorted"
            );
        }
    }

    #[test]
    fn range_cut_tiles_nodes_and_balances_nnz() {
        let g = star(64);
        for parts in [1, 2, 5, 64] {
            let plan = RangeCutPartitioner.partition(&g, parts);
            assert!(plan.num_partitions() >= 1 && plan.num_partitions() <= parts);
            assert_covers(&plan, 64);
        }
    }

    #[test]
    fn bfs_grow_tiles_nodes_even_with_disconnected_components() {
        // Two components: a path and isolated nodes.
        let g = CsrGraph::from_edges(10, &[(0, 1), (1, 2), (2, 3)], true).unwrap();
        for parts in [1, 2, 3] {
            let plan = BfsGrowPartitioner.partition(&g, parts);
            assert_covers(&plan, 10);
            assert!(plan.num_partitions() <= parts);
        }
    }

    #[test]
    fn bfs_grow_keeps_neighborhoods_together() {
        // Two 8-cliques joined by one edge: BFS-grow at P=2 should cut at
        // the bridge, giving far fewer ghosts than splitting a clique.
        let mut edges = Vec::new();
        for a in 0..8usize {
            for b in (a + 1)..8 {
                edges.push((a, b));
                edges.push((a + 8, b + 8));
            }
        }
        edges.push((0, 8));
        let g = CsrGraph::from_edges(16, &edges, true).unwrap();
        let plan = BfsGrowPartitioner.partition(&g, 2);
        assert_eq!(plan.num_partitions(), 2);
        let base = WeightedCsr::sym_norm(&g, true);
        let ghosts: usize = (0..2).map(|p| plan.extract(&base, p).ghosts.len()).sum();
        // Only the bridge endpoints cross the cut.
        assert!(
            ghosts <= 4,
            "bfs-grow ghosts {ghosts} exceed the bridge cut"
        );
    }

    #[test]
    fn extraction_preserves_row_values_and_order() {
        let g = star(12);
        let base = WeightedCsr::sym_norm(&g, true);
        let plan = RangeCutPartitioner.partition(&g, 3);
        for p in 0..plan.num_partitions() {
            let part = plan.extract(&base, p);
            assert_eq!(part.csr.rows(), plan.members(p).len());
            assert_eq!(part.csr.cols(), plan.members(p).len() + part.ghosts.len());
            assert!(part.ghosts.windows(2).all(|w| w[0] < w[1]));
            for (i, &v) in plan.members(p).iter().enumerate() {
                let global: Vec<(usize, f32)> = base.row_entries(v).collect();
                let local: Vec<(usize, f32)> = part.csr.row_entries(i).collect();
                assert_eq!(global.len(), local.len());
                for ((gc, gw), (lc, lw)) in global.iter().zip(&local) {
                    // Weights identical and in identical order; columns map
                    // back to the same global node.
                    assert_eq!(gw.to_bits(), lw.to_bits());
                    let mapped = if *lc < plan.members(p).len() {
                        plan.members(p)[*lc]
                    } else {
                        part.ghosts[*lc - plan.members(p).len()]
                    };
                    assert_eq!(mapped, *gc);
                }
            }
        }
    }

    #[test]
    fn single_partition_has_no_ghosts() {
        let g = star(9);
        let base = WeightedCsr::row_norm(&g, true);
        let plan = RangeCutPartitioner.partition(&g, 1);
        assert_eq!(plan.num_partitions(), 1);
        let part = plan.extract(&base, 0);
        assert!(part.ghosts.is_empty());
        assert_eq!(part.csr.nnz(), base.nnz());
    }

    #[test]
    fn from_assignment_drops_empty_partitions() {
        let plan = PartitionPlan::from_assignment(&[2, 2, 0, 0], 4);
        assert_eq!(plan.num_partitions(), 2);
        assert_eq!(plan.members(0), &[2, 3]); // relative id order kept
        assert_eq!(plan.members(1), &[0, 1]);
    }
}
