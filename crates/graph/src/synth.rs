//! Ratio-preserving synthetic dataset profiles.
//!
//! Each profile mirrors one of the paper's benchmarks (Table 2) at a
//! laptop-friendly scale. The *ratios* that drive the paper's findings are
//! preserved — feature dimension, class count, labeled fraction, edge
//! density, homophily regime — while node counts shrink ~100×. Each profile
//! also records the **paper-scale statistics** verbatim from Table 2; the
//! performance-plane experiments (`ppgnn-memsim`) use those true sizes, so
//! throughput results are simulated at the paper's real scale even though
//! functional training runs on the scaled graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use ppgnn_tensor::{init, Matrix};

use crate::gen::{self, Mixing};
use crate::{CsrGraph, GraphError};

/// Paper-scale statistics of the benchmark a profile mirrors (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperStats {
    /// Nodes in the real benchmark.
    pub num_nodes: u64,
    /// Directed edges in the real benchmark.
    pub num_edges: u64,
    /// Input feature dimension.
    pub feature_dim: u32,
    /// Labeled fraction of nodes.
    pub labeled_frac: f64,
    /// Raw node-feature payload in bytes (`Size (node)` column).
    pub feature_bytes: u64,
    /// Graph topology payload in bytes (`Size (graph)` column).
    pub graph_bytes: u64,
}

/// Train/valid/test node-index split.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Split {
    /// Training node ids.
    pub train: Vec<usize>,
    /// Validation node ids.
    pub val: Vec<usize>,
    /// Test node ids.
    pub test: Vec<usize>,
}

impl Split {
    /// Total number of labeled nodes across the three partitions.
    pub fn num_labeled(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }
}

/// A synthetic stand-in for one of the paper's benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Profile name, e.g. `products-sim`.
    pub name: &'static str,
    /// Node count at scale 1.0.
    pub num_nodes: usize,
    /// Expected average (stored, directed) degree.
    pub avg_degree: f64,
    /// Input feature dimension `F`.
    pub feature_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Fraction of nodes that carry labels (1.4 % for papers100m).
    pub labeled_frac: f64,
    /// Train/val/test fractions *of the labeled nodes*.
    pub split_frac: (f64, f64, f64),
    /// Structure probability of the mixing pattern.
    pub structure: f64,
    /// `true` → heterophilous shifted mixing (the `wiki` regime).
    pub heterophilous: bool,
    /// Power-law skew of edge targets (hubs).
    pub degree_skew: f64,
    /// Class-signal magnitude in features (vs unit noise). Lower values make
    /// single-node classification noisier, so aggregation over more hops
    /// keeps helping — the Figure 2 trend.
    pub signal: f32,
    /// Paper-scale statistics for the performance plane.
    pub paper: PaperStats,
}

impl DatasetProfile {
    /// Returns a copy with the node count multiplied by `factor`
    /// (minimum 64 nodes). Tests use small factors for speed.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.num_nodes = ((self.num_nodes as f64 * factor) as usize).max(64);
        self
    }

    /// Raw feature payload in bytes at the profile's (scaled) size.
    pub fn feature_bytes(&self) -> u64 {
        (self.num_nodes * self.feature_dim * 4) as u64
    }

    /// `ogbn-products` analog: homophilous co-purchase graph, 47 classes.
    pub fn products_sim() -> Self {
        DatasetProfile {
            name: "products-sim",
            num_nodes: 24_000,
            avg_degree: 25.0,
            feature_dim: 100,
            num_classes: 47,
            labeled_frac: 1.0,
            split_frac: (0.08, 0.02, 0.90),
            structure: 0.80,
            heterophilous: false,
            degree_skew: 1.5,
            signal: 0.8,
            paper: PaperStats {
                num_nodes: 2_449_029,
                num_edges: 61_859_140,
                feature_dim: 100,
                labeled_frac: 1.0,
                feature_bytes: 900 << 20,
                graph_bytes: 900 << 20,
            },
        }
    }

    /// `pokec` analog: social network, 2 classes, moderate homophily.
    pub fn pokec_sim() -> Self {
        DatasetProfile {
            name: "pokec-sim",
            num_nodes: 16_000,
            avg_degree: 19.0,
            feature_dim: 65,
            num_classes: 2,
            labeled_frac: 1.0,
            split_frac: (0.50, 0.25, 0.25),
            structure: 0.65,
            heterophilous: false,
            degree_skew: 1.0,
            signal: 0.5,
            paper: PaperStats {
                num_nodes: 1_632_803,
                num_edges: 30_622_564,
                feature_dim: 65,
                labeled_frac: 1.0,
                feature_bytes: 400 << 20,
                graph_bytes: 500 << 20,
            },
        }
    }

    /// `wiki` analog: dense, non-homophilous, 5 classes, F = 600.
    pub fn wiki_sim() -> Self {
        DatasetProfile {
            name: "wiki-sim",
            num_nodes: 18_000,
            avg_degree: 60.0,
            feature_dim: 600,
            num_classes: 5,
            labeled_frac: 1.0,
            split_frac: (0.50, 0.25, 0.25),
            structure: 0.70,
            heterophilous: true,
            degree_skew: 2.0,
            signal: 0.35,
            paper: PaperStats {
                num_nodes: 1_925_342,
                num_edges: 303_434_860,
                feature_dim: 600,
                labeled_frac: 1.0,
                feature_bytes: (43u64 << 30) / 10,
                graph_bytes: (45u64 << 30) / 10,
            },
        }
    }

    /// `ogbn-papers100M` analog: only 1.4 % of nodes labeled — the case where
    /// PP-GNN preprocessing shrinks the training input by ~70×.
    ///
    /// The class count is reduced from 172 to 64 so that the scaled-down
    /// label budget still allows learning; the labeled *fraction* (the
    /// property the systems results depend on) is preserved.
    pub fn papers100m_sim() -> Self {
        DatasetProfile {
            name: "papers100m-sim",
            num_nodes: 120_000,
            avg_degree: 15.0,
            feature_dim: 128,
            num_classes: 64,
            labeled_frac: 0.014,
            split_frac: (0.78, 0.08, 0.14),
            structure: 0.75,
            heterophilous: false,
            degree_skew: 1.5,
            signal: 0.9,
            paper: PaperStats {
                num_nodes: 111_059_956,
                num_edges: 1_615_685_872,
                feature_dim: 128,
                labeled_frac: 0.014,
                feature_bytes: 53u64 << 30,
                graph_bytes: 24u64 << 30,
            },
        }
    }

    /// `IGB-medium` analog: fully labeled, F = 1024 (feature-heavy).
    pub fn igb_medium_sim() -> Self {
        DatasetProfile {
            name: "igb-medium-sim",
            num_nodes: 40_000,
            avg_degree: 12.0,
            feature_dim: 1024,
            num_classes: 19,
            labeled_frac: 1.0,
            split_frac: (0.60, 0.20, 0.20),
            structure: 0.75,
            heterophilous: false,
            degree_skew: 1.2,
            signal: 0.7,
            paper: PaperStats {
                num_nodes: 10_000_000,
                num_edges: 120_077_694,
                feature_dim: 1024,
                labeled_frac: 1.0,
                feature_bytes: 39u64 << 30,
                graph_bytes: (18u64 << 30) / 10,
            },
        }
    }

    /// `IGB-large` analog: the input-expansion stress case (400 GB of raw
    /// features at paper scale → 1.6 TB preprocessed, past host memory).
    pub fn igb_large_sim() -> Self {
        DatasetProfile {
            name: "igb-large-sim",
            num_nodes: 80_000,
            avg_degree: 12.0,
            feature_dim: 1024,
            num_classes: 19,
            labeled_frac: 1.0,
            split_frac: (0.60, 0.20, 0.20),
            structure: 0.75,
            heterophilous: false,
            degree_skew: 1.2,
            signal: 0.7,
            paper: PaperStats {
                num_nodes: 100_000_000,
                num_edges: 1_223_571_364,
                feature_dim: 1024,
                labeled_frac: 1.0,
                feature_bytes: 400u64 << 30,
                graph_bytes: 19u64 << 30,
            },
        }
    }

    /// The three medium profiles used for the accuracy studies.
    pub fn medium_profiles() -> Vec<DatasetProfile> {
        vec![Self::products_sim(), Self::pokec_sim(), Self::wiki_sim()]
    }

    /// All six profiles.
    pub fn all_profiles() -> Vec<DatasetProfile> {
        vec![
            Self::products_sim(),
            Self::pokec_sim(),
            Self::wiki_sim(),
            Self::papers100m_sim(),
            Self::igb_medium_sim(),
            Self::igb_large_sim(),
        ]
    }
}

/// A fully materialized synthetic dataset: graph + features + labels + split.
#[derive(Debug, Clone)]
pub struct SynthDataset {
    /// The profile this dataset was generated from.
    pub profile: DatasetProfile,
    /// Graph topology.
    pub graph: CsrGraph,
    /// Node features, `num_nodes x feature_dim`.
    pub features: Matrix,
    /// Node labels (defined for every node; only `split` rows are *observed*).
    pub labels: Vec<u32>,
    /// Labeled-node split.
    pub split: Split,
}

impl SynthDataset {
    /// Generates the dataset for `profile` deterministically from `seed`.
    ///
    /// Features follow a noisy class-centroid model: unit-norm centroids
    /// `c_k`, node features `x_v = signal · c_{y_v} + ε`, `ε ~ N(0, I)`.
    /// With `signal < 1` single nodes are ambiguous and neighborhood
    /// averaging (what both GNN families do) denoises — which is what makes
    /// the "more hops help" trend of Figure 2 emerge for real.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from graph generation.
    pub fn generate(profile: DatasetProfile, seed: u64) -> Result<Self, GraphError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = profile.num_nodes;
        let c = profile.num_classes;

        let labels = gen::uniform_labels(n, c, &mut rng);
        let mixing = if profile.heterophilous {
            Mixing::Shifted(profile.structure as f32)
        } else {
            Mixing::Homophilous(profile.structure as f32)
        };
        let graph = gen::labeled_graph(
            n,
            profile.avg_degree,
            &labels,
            c,
            mixing,
            profile.degree_skew,
            &mut rng,
        )?;

        // Unit-norm class centroids.
        let mut centroids = init::standard_normal(c, profile.feature_dim, &mut rng);
        centroids.l2_normalize_rows();
        centroids.scale((profile.feature_dim as f32).sqrt() * profile.signal);

        let mut features = init::standard_normal(n, profile.feature_dim, &mut rng);
        for v in 0..n {
            let centroid = centroids.row(labels[v] as usize).to_vec();
            let row = features.row_mut(v);
            for (f, cv) in row.iter_mut().zip(&centroid) {
                *f += cv / (profile.feature_dim as f32).sqrt();
            }
        }

        // Labeled subset, then split by the profile fractions.
        let mut ids: Vec<usize> = (0..n).collect();
        shuffle(&mut ids, &mut rng);
        let num_labeled = ((n as f64) * profile.labeled_frac).round() as usize;
        let labeled = &ids[..num_labeled.min(n)];
        let (ftr, fva, _) = profile.split_frac;
        let t_end = ((labeled.len() as f64) * ftr) as usize;
        let v_end = t_end + ((labeled.len() as f64) * fva) as usize;
        let split = Split {
            train: labeled[..t_end].to_vec(),
            val: labeled[t_end..v_end.min(labeled.len())].to_vec(),
            test: labeled[v_end.min(labeled.len())..].to_vec(),
        };

        Ok(SynthDataset {
            profile,
            graph,
            features,
            labels,
            split,
        })
    }

    /// Labels of the given node ids.
    pub fn labels_of(&self, ids: &[usize]) -> Vec<u32> {
        ids.iter().map(|&i| self.labels[i]).collect()
    }

    /// Accuracy of always predicting the majority training class — the floor
    /// any learned model must beat.
    pub fn majority_baseline(&self) -> f64 {
        let mut counts = vec![0usize; self.profile.num_classes];
        for &i in &self.split.train {
            counts[self.labels[i] as usize] += 1;
        }
        let majority = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(k, _)| k as u32)
            .unwrap_or(0);
        if self.split.test.is_empty() {
            return 0.0;
        }
        let hits = self
            .split
            .test
            .iter()
            .filter(|&&i| self.labels[i] == majority)
            .count();
        hits as f64 / self.split.test.len() as f64
    }
}

/// Fisher–Yates shuffle using the experiment RNG (avoids pulling in
/// `rand::seq` trait imports at call sites).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn profiles_serde_round_trip_exactly() {
        for p in DatasetProfile::all_profiles() {
            let text = serde::to_string(&p);
            let back: DatasetProfile = serde::from_str(&text).expect("profile parses back");
            assert_eq!(back, p, "{} changed across serde round-trip", p.name);
            assert_eq!(back.paper, p.paper);
            // Bit-exactness of the float fields, beyond PartialEq.
            assert_eq!(back.signal.to_bits(), p.signal.to_bits());
            assert_eq!(back.avg_degree.to_bits(), p.avg_degree.to_bits());
        }
    }

    #[test]
    fn profiles_have_distinct_names() {
        let names: Vec<&str> = DatasetProfile::all_profiles()
            .iter()
            .map(|p| p.name)
            .collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn scaled_profile_shrinks_nodes_only() {
        let p = DatasetProfile::products_sim().scaled(0.01);
        assert_eq!(p.num_nodes, 240);
        assert_eq!(p.feature_dim, 100);
        assert_eq!(p.num_classes, 47);
    }

    #[test]
    fn generate_is_deterministic() {
        let p = DatasetProfile::pokec_sim().scaled(0.02);
        let a = SynthDataset::generate(p, 7).unwrap();
        let b = SynthDataset::generate(p, 7).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features, b.features);
        assert_eq!(a.split, b.split);
    }

    #[test]
    fn split_respects_label_fraction() {
        let p = DatasetProfile::papers100m_sim().scaled(0.05);
        let d = SynthDataset::generate(p, 1).unwrap();
        let labeled = d.split.num_labeled();
        let expected = (p.num_nodes as f64 * 0.014).round() as usize;
        assert_eq!(labeled, expected);
        assert!(d.split.train.len() > d.split.val.len());
    }

    #[test]
    fn fully_labeled_profiles_cover_all_nodes() {
        let p = DatasetProfile::products_sim().scaled(0.01);
        let d = SynthDataset::generate(p, 3).unwrap();
        assert_eq!(d.split.num_labeled(), p.num_nodes);
        // partitions are disjoint
        let mut all: Vec<usize> = d
            .split
            .train
            .iter()
            .chain(&d.split.val)
            .chain(&d.split.test)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), p.num_nodes);
    }

    #[test]
    fn homophilous_profile_yields_homophilous_graph() {
        let d = SynthDataset::generate(DatasetProfile::products_sim().scaled(0.05), 2).unwrap();
        assert!(stats::edge_homophily(&d.graph, &d.labels) > 0.6);
        let w = SynthDataset::generate(DatasetProfile::wiki_sim().scaled(0.05), 2).unwrap();
        assert!(stats::edge_homophily(&w.graph, &w.labels) < 0.4);
    }

    #[test]
    fn features_carry_class_signal() {
        // Nearest-centroid on *aggregated* features should beat majority.
        let p = DatasetProfile::pokec_sim().scaled(0.05);
        let d = SynthDataset::generate(p, 11).unwrap();
        // class-mean features from train nodes
        let fdim = p.feature_dim;
        let mut means = vec![vec![0.0f32; fdim]; p.num_classes];
        let mut counts = vec![0usize; p.num_classes];
        for &i in &d.split.train {
            let y = d.labels[i] as usize;
            counts[y] += 1;
            for (m, v) in means[y].iter_mut().zip(d.features.row(i)) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f32;
            }
        }
        let mut hits = 0usize;
        for &i in &d.split.test {
            let x = d.features.row(i);
            let best = (0..p.num_classes)
                .max_by(|&a, &b| {
                    let da: f32 = means[a].iter().zip(x).map(|(m, v)| m * v).sum();
                    let db: f32 = means[b].iter().zip(x).map(|(m, v)| m * v).sum();
                    da.partial_cmp(&db).expect("finite scores")
                })
                .expect("non-empty classes");
            if best as u32 == d.labels[i] {
                hits += 1;
            }
        }
        let acc = hits as f64 / d.split.test.len() as f64;
        let base = d.majority_baseline();
        assert!(acc > base + 0.05, "centroid acc {acc} vs majority {base}");
    }

    #[test]
    fn paper_stats_match_table2_scale() {
        let igb = DatasetProfile::igb_large_sim();
        assert_eq!(igb.paper.feature_bytes, 400u64 << 30);
        let papers = DatasetProfile::papers100m_sim();
        assert!((papers.paper.labeled_frac - 0.014).abs() < 1e-9);
    }
}
