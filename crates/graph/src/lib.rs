//! Graph substrate for the `preprop-gnn` stack.
//!
//! Provides everything the paper's preprocessing stage (Eq. 2) and the
//! MP-GNN baselines need from a graph library:
//!
//! * [`CsrGraph`] — compressed-sparse-row adjacency with a validating
//!   builder, plus [`WeightedCsr`] for normalized operators,
//! * [`Operator`] — the graph-signal filters used by PP-GNNs (symmetric /
//!   row-normalized adjacency, truncated Personalized-PageRank and heat
//!   kernels, following Gasteiger et al. 2019),
//! * threaded CSR×dense SpMM (the kernel behind feature pre-propagation),
//! * [`ShardPlan`] — nnz-balanced node-range shards plus a row-slice SpMM
//!   ([`WeightedCsr::spmm_rows_into`]) for shard-scheduled diffusion,
//! * [`PartitionPlan`] — disjoint node partitions with ghost-row
//!   extraction ([`Partitioner`] strategies: nnz-balanced
//!   [`RangeCutPartitioner`], locality-first [`BfsGrowPartitioner`]) for
//!   partition-parallel preprocessing,
//! * [`gen`] — seeded synthetic graph generators (R-MAT skew, planted
//!   homophily) standing in for the OGB/SNAP/IGB benchmarks,
//! * [`synth`] — ratio-preserving scaled-down dataset profiles
//!   (`products-sim`, `pokec-sim`, `wiki-sim`, `papers100m-sim`,
//!   `igb-medium-sim`, `igb-large-sim`).
//!
//! # Example
//!
//! ```
//! use ppgnn_graph::{CsrGraph, Operator};
//! use ppgnn_tensor::Matrix;
//!
//! let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], true)?;
//! let x = Matrix::eye(4);
//! let filtered = Operator::SymNorm.apply(&g, &x);
//! assert_eq!(filtered.shape(), (4, 4));
//! # Ok::<(), ppgnn_graph::GraphError>(())
//! ```

#![deny(missing_docs)]

mod csr;
mod error;
mod operator;
mod partition;
mod shard;
mod spmm;

pub mod gen;
pub mod stats;
pub mod synth;

pub use csr::CsrGraph;
pub use error::GraphError;
pub use operator::Operator;
pub use partition::{
    BfsGrowPartitioner, PartitionCsr, PartitionPlan, Partitioner, RangeCutPartitioner,
};
pub use shard::ShardPlan;
pub use spmm::{nnz_balanced_blocks, WeightedCsr};
