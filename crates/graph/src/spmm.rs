//! Weighted CSR matrices and the sparse×dense multiplication kernel.
//!
//! Pre-propagation (Eq. 2 of the paper) is `R` successive SpMM calls per
//! operator; this is the dominant preprocessing cost measured in Table 2 /
//! Table 7. The kernel parallelizes over output rows on the shared
//! `ppgnn-tensor` worker pool, with **nnz-balanced** row blocks computed
//! from `indptr` prefix sums: on the power-law graphs these datasets have,
//! equal-rows splits pile the hub nodes onto one thread and serialize the
//! whole SpMM on it.
//!
//! Within a row, wide feature matrices are processed in
//! [`ppgnn_tensor::block::SPMM_COL_BLOCK`]-column strips (the same
//! block-size constants as the dense GEMM layer) so the CSR gather stays
//! L1-resident; tiling preserves per-row accumulation order exactly, so
//! tiled output is bit-identical to the untiled kernel.

use ppgnn_tensor::{pool, Matrix};

use crate::{CsrGraph, GraphError};

/// Telemetry totals for the whole-matrix SpMM driver. Counters only on
/// this path's inner layers — span guards are allowed at the driver
/// (one per full SpMM call) but statically forbidden inside
/// `spmm_rows_into`/`spmm_row` by the `telemetry_span` lint, where a
/// per-row guard would cost more than the row.
static SPMM_CALLS: ppgnn_telemetry::Counter = ppgnn_telemetry::Counter::new("spmm.calls");
static SPMM_MADDS: ppgnn_telemetry::Counter = ppgnn_telemetry::Counter::new("spmm.madds");

/// Splits CSR rows into at most `parts` contiguous blocks of near-equal
/// **non-zero count**, using the `indptr` prefix-sum array.
///
/// Each boundary is found by binary search for the next multiple of
/// `nnz / parts`, so blocks cost O(`parts`·log `rows`) to compute. Blocks
/// are never empty; fewer than `parts` blocks are returned when rows or
/// non-zeros run out (a single hub row heavier than the target lands in
/// its own block).
pub fn nnz_balanced_blocks(indptr: &[usize], parts: usize) -> Vec<std::ops::Range<usize>> {
    let rows = indptr.len().saturating_sub(1);
    if rows == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, rows);
    let nnz = indptr[rows];
    if parts == 1 || nnz == 0 {
        // One serial block covering every row (not a 0..rows index list).
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..rows];
    }
    let mut blocks = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 1..=parts {
        if start >= rows {
            break;
        }
        let end = if p == parts {
            rows
        } else {
            // First row index whose prefix reaches this part's nnz target;
            // at least one row per block so progress is guaranteed.
            let target = (nnz * p).div_ceil(parts);
            indptr
                .partition_point(|&x| x < target)
                .clamp(start + 1, rows)
        };
        blocks.push(start..end);
        start = end;
    }
    blocks
}

/// A sparse matrix in CSR form with `f32` edge weights — the materialized
/// form of a normalized-adjacency operator.
///
/// # Example
///
/// ```
/// use ppgnn_graph::{CsrGraph, WeightedCsr};
/// use ppgnn_tensor::Matrix;
///
/// let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)], true)?;
/// let op = WeightedCsr::sym_norm(&g, true);
/// let smoothed = op.spmm(&Matrix::eye(3));
/// // Symmetric normalization keeps rows stochastic-ish: entries are finite.
/// assert!(smoothed.as_slice().iter().all(|v| v.is_finite()));
/// # Ok::<(), ppgnn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedCsr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    weights: Vec<f32>,
}

impl WeightedCsr {
    /// Builds a weighted CSR from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] when the arrays are inconsistent.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        weights: Vec<f32>,
    ) -> Result<Self, GraphError> {
        if indptr.len() != rows + 1 {
            return Err(GraphError::InvalidCsr(format!(
                "indptr length {} != rows + 1 = {}",
                indptr.len(),
                rows + 1
            )));
        }
        if indices.len() != weights.len() {
            return Err(GraphError::InvalidCsr(
                "indices and weights must have equal length".into(),
            ));
        }
        if indptr[0] != 0
            || *indptr.last().expect("len >= 1") != indices.len()
            || indptr.windows(2).any(|w| w[0] > w[1])
        {
            return Err(GraphError::InvalidCsr(
                "indptr not a valid prefix array".into(),
            ));
        }
        if let Some(&bad) = indices.iter().find(|&&i| (i as usize) >= cols) {
            return Err(GraphError::NodeOutOfBounds {
                node: bad as usize,
                num_nodes: cols,
            });
        }
        Ok(WeightedCsr {
            rows,
            cols,
            indptr,
            indices,
            weights,
        })
    }

    /// The GCN operator `D̃^(-1/2) Ã D̃^(-1/2)` where `Ã = A (+ I)`.
    ///
    /// `add_self_loops` controls the `+ I` term (SGC/SIGN/HOGA all use it).
    /// Isolated nodes without self-loops produce all-zero rows rather than
    /// NaNs.
    pub fn sym_norm(graph: &CsrGraph, add_self_loops: bool) -> Self {
        Self::normalized(graph, add_self_loops, true)
    }

    /// The random-walk operator `D̃^(-1) Ã`.
    pub fn row_norm(graph: &CsrGraph, add_self_loops: bool) -> Self {
        Self::normalized(graph, add_self_loops, false)
    }

    fn normalized(graph: &CsrGraph, add_self_loops: bool, symmetric: bool) -> Self {
        let n = graph.num_nodes();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices =
            Vec::with_capacity(graph.num_edges() + if add_self_loops { n } else { 0 });
        let mut weights = Vec::with_capacity(indices.capacity());

        // Degrees of Ã (self-loop adds 1 unless already present).
        let deg: Vec<f32> = (0..n)
            .map(|v| {
                let mut d = graph.degree(v) as f32;
                if add_self_loops && !graph.has_edge(v, v) {
                    d += 1.0;
                }
                d
            })
            .collect();
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let inv: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
            .collect();

        indptr.push(0);
        for v in 0..n {
            let mut self_loop_emitted = false;
            let push = |u: u32, indices: &mut Vec<u32>, weights: &mut Vec<f32>| {
                let w = if symmetric {
                    inv_sqrt[v] * inv_sqrt[u as usize]
                } else {
                    inv[v]
                };
                indices.push(u);
                weights.push(w);
            };
            for &u in graph.neighbors(v) {
                if add_self_loops && !self_loop_emitted && u as usize >= v {
                    if u as usize != v {
                        push(v as u32, &mut indices, &mut weights);
                    }
                    self_loop_emitted = true;
                }
                push(u, &mut indices, &mut weights);
            }
            if add_self_loops && !self_loop_emitted {
                push(v as u32, &mut indices, &mut weights);
            }
            indptr.push(indices.len());
        }
        WeightedCsr {
            rows: n,
            cols: n,
            indptr,
            indices,
            weights,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The CSR row-pointer (prefix-sum) array, `rows + 1` entries.
    ///
    /// Exposed so shard planners ([`crate::ShardPlan`]) can cut the row
    /// space into nnz-balanced ranges without re-deriving the prefix sums.
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Non-zero entries of row `r` as `(col, weight)` pairs.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&c, &w)| (c as usize, w))
    }

    /// Sparse × dense product `Y = S · X`.
    ///
    /// Parallelizes over nnz-balanced row blocks on the shared worker pool
    /// once the work estimate (`nnz · X.cols()`) exceeds the workspace
    /// parallel threshold ([`ppgnn_tensor::set_parallel_threshold`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != self.cols()`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.spmm_into(x, &mut out);
        out
    }

    /// `Y = S · X` into a pre-allocated output (overwrites `out`).
    ///
    /// The streaming preprocessor ping-pongs two full-graph buffers through
    /// this, eliminating the per-hop allocation of [`WeightedCsr::spmm`].
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != self.cols()` or `out` is not
    /// `self.rows() x x.cols()`.
    pub fn spmm_into(&self, x: &Matrix, out: &mut Matrix) {
        self.spmm_into_on(x, out, pool::pool());
    }

    /// [`WeightedCsr::spmm_into`] on an explicit worker pool.
    ///
    /// The global pool is sized once from the environment; tests and
    /// benchmarks that need a specific width (the thread-count sweeps in
    /// the SpMM regression suite) pass their own pool here.
    ///
    /// # Panics
    ///
    /// Same conditions as [`WeightedCsr::spmm_into`].
    pub fn spmm_into_on(&self, x: &Matrix, out: &mut Matrix, pool: &ppgnn_tensor::WorkerPool) {
        assert_eq!(
            x.rows(),
            self.cols,
            "spmm dimension mismatch: operator has {} cols, features have {} rows",
            self.cols,
            x.rows()
        );
        let f = x.cols();
        assert_eq!(
            out.shape(),
            (self.rows, f),
            "spmm output shape mismatch: expected {}x{f}",
            self.rows
        );
        let work = self.nnz() * f;
        let nthreads = pool.threads_for(work);
        let x_data = x.as_slice();
        let rows = self.rows;
        if f == 0 {
            return;
        }
        SPMM_CALLS.add(1);
        SPMM_MADDS.add(work as u64);
        let _span =
            ppgnn_telemetry::span_with("spmm", &[("rows", rows as u64), ("cols_f", f as u64)]);

        if nthreads <= 1 || rows <= 1 {
            let out_data = out.as_mut_slice();
            for r in 0..rows {
                let row_out = &mut out_data[r * f..(r + 1) * f];
                row_out.fill(0.0);
                Self::spmm_row(self, r, x_data, f, row_out);
            }
            return;
        }

        let blocks = nnz_balanced_blocks(&self.indptr, nthreads);
        let sizes: Vec<usize> = blocks.iter().map(|b| b.len()).collect();
        pool.run_row_blocks(out.as_mut_slice(), f, &sizes, |block, chunk| {
            let start = blocks[block].start;
            for (i, row_out) in chunk.chunks_exact_mut(f).enumerate() {
                row_out.fill(0.0);
                Self::spmm_row(self, start + i, x_data, f, row_out);
            }
        });
    }

    /// Computes rows `rows` of `S · X` into `out_rows` — the row-slice
    /// kernel behind sharded diffusion.
    ///
    /// `out_rows` holds exactly the output rows of the slice
    /// (`rows.len() × x.cols()` values, row-major) and is overwritten.
    /// The slice reads the **full** `x` (every input row a shard's edges
    /// reach) but writes only its own rows, so disjoint shards can run
    /// concurrently over one shared input buffer. Execution is serial by
    /// design: the caller (the shard scheduler in `ppgnn-core`) owns the
    /// parallelism by submitting one task per shard, and a per-row output
    /// value never depends on shard boundaries — sharded results are
    /// bit-identical to [`WeightedCsr::spmm_into`].
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != self.cols()`, `rows` exceeds `self.rows()`,
    /// or `out_rows` is not exactly `rows.len() * x.cols()` long.
    pub fn spmm_rows_into(&self, rows: std::ops::Range<usize>, x: &Matrix, out_rows: &mut [f32]) {
        assert_eq!(
            x.rows(),
            self.cols,
            "spmm dimension mismatch: operator has {} cols, features have {} rows",
            self.cols,
            x.rows()
        );
        assert!(
            rows.end <= self.rows,
            "row slice {rows:?} exceeds {} operator rows",
            self.rows
        );
        let f = x.cols();
        assert_eq!(
            out_rows.len(),
            rows.len() * f,
            "row-slice output length mismatch: expected {} values",
            rows.len() * f
        );
        if f == 0 {
            return;
        }
        let x_data = x.as_slice();
        for (i, r) in rows.enumerate() {
            let row_out = &mut out_rows[i * f..(i + 1) * f];
            row_out.fill(0.0);
            self.spmm_row(r, x_data, f, row_out);
        }
    }

    /// One output row, column-tiled: wide `X` is processed in
    /// [`ppgnn_tensor::block::SPMM_COL_BLOCK`]-column strips so the
    /// irregular CSR row gather touches only a strip of each gathered `X`
    /// row per pass — on high-degree (hub) rows the strip of the output
    /// and the gathered strips stay L1-resident instead of thrashing the
    /// cache with full-width rows.
    ///
    /// Bit-exactness: for every output element, the accumulation order
    /// over the row's non-zeros is exactly that of the untiled kernel
    /// (non-zeros are walked in CSR order within each strip), so tiled
    /// output is **bit-identical** — the sharded/partitioned equivalence
    /// suites that byte-compare feature stores keep holding.
    #[inline]
    fn spmm_row(&self, r: usize, x: &[f32], f: usize, out: &mut [f32]) {
        const COLS: usize = ppgnn_tensor::block::SPMM_COL_BLOCK;
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        let mut j0 = 0;
        while j0 < f {
            // Absorb small tails into the final strip: a narrow leftover
            // strip would re-walk the row's CSR entries for a sliver of
            // work (f = F+1 is common — pokec's 65 features).
            let rest = f - j0;
            let strip = if rest <= COLS + COLS / 4 { rest } else { COLS };
            let out_strip = &mut out[j0..j0 + strip];
            for idx in lo..hi {
                let c = self.indices[idx] as usize;
                let w = self.weights[idx];
                let x_strip = &x[c * f + j0..c * f + j0 + strip];
                for (o, v) in out_strip.iter_mut().zip(x_strip) {
                    *o += w * v;
                }
            }
            j0 += strip;
        }
    }

    /// The untiled row kernel, retained as the byte-equality oracle for
    /// the column-tiled [`WeightedCsr::spmm_row`].
    #[cfg(test)]
    fn spmm_row_untiled(&self, r: usize, x: &[f32], f: usize, out: &mut [f32]) {
        for idx in self.indptr[r]..self.indptr[r + 1] {
            let c = self.indices[idx] as usize;
            let w = self.weights[idx];
            let x_row = &x[c * f..(c + 1) * f];
            for (o, v) in out.iter_mut().zip(x_row) {
                *o += w * v;
            }
        }
    }

    /// Materializes the operator as a dense matrix (test/debug helper;
    /// quadratic memory).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, w) in self.row_entries(r) {
                m.set(r, c, m.get(r, c) + w);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2)], true).unwrap()
    }

    #[test]
    fn sym_norm_matches_hand_computation() {
        // Path 0-1-2 with self-loops: deg = [2, 3, 2].
        let op = WeightedCsr::sym_norm(&path3(), true);
        let d = op.to_dense();
        assert!((d.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((d.get(0, 1) - 1.0 / (2.0f32 * 3.0).sqrt()).abs() < 1e-6);
        assert!((d.get(1, 1) - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(d.get(0, 2), 0.0);
        // Symmetric.
        assert!(d.max_abs_diff(&d.transpose()) < 1e-6);
    }

    #[test]
    fn row_norm_rows_sum_to_one() {
        let op = WeightedCsr::row_norm(&path3(), true);
        let d = op.to_dense();
        for r in 0..3 {
            let sum: f32 = d.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn isolated_node_without_self_loop_gives_zero_row() {
        let g = CsrGraph::from_edges(3, &[(0, 1)], true).unwrap();
        let op = WeightedCsr::sym_norm(&g, false);
        let d = op.to_dense();
        assert!(d.row(2).iter().all(|&v| v == 0.0));
        assert!(d.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn existing_self_loop_is_not_doubled() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1)], true).unwrap();
        let op = WeightedCsr::sym_norm(&g, true);
        // row 0 has entries for 0 and 1 only.
        assert_eq!(op.row_entries(0).count(), 2);
    }

    #[test]
    fn spmm_matches_dense_product() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)], true).unwrap();
        let op = WeightedCsr::sym_norm(&g, true);
        let x = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.1);
        let sparse = op.spmm(&x);
        let dense = ppgnn_tensor::matmul(&op.to_dense(), &x);
        assert!(sparse.max_abs_diff(&dense) < 1e-5);
    }

    #[test]
    fn spmm_identity_operator_is_noop() {
        let n = 5;
        let indptr: Vec<usize> = (0..=n).collect();
        let indices: Vec<u32> = (0..n as u32).collect();
        let op = WeightedCsr::from_raw(n, n, indptr, indices, vec![1.0; n]).unwrap();
        let x = Matrix::from_fn(n, 2, |r, c| (r + c) as f32);
        assert!(op.spmm(&x).max_abs_diff(&x) < 1e-7);
    }

    #[test]
    fn from_raw_validates() {
        assert!(WeightedCsr::from_raw(1, 1, vec![0, 1], vec![0], vec![1.0]).is_ok());
        assert!(WeightedCsr::from_raw(1, 1, vec![0, 2], vec![0], vec![1.0]).is_err());
        assert!(WeightedCsr::from_raw(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        assert!(WeightedCsr::from_raw(1, 1, vec![0, 1], vec![0], vec![]).is_err());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn spmm_shape_mismatch_panics() {
        let op = WeightedCsr::sym_norm(&path3(), true);
        op.spmm(&Matrix::zeros(5, 2));
    }

    #[test]
    fn spmm_into_overwrites_dirty_buffers() {
        let op = WeightedCsr::sym_norm(&path3(), true);
        let x = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let fresh = op.spmm(&x);
        let mut dirty = Matrix::full(3, 2, 999.0);
        op.spmm_into(&x, &mut dirty);
        assert!(dirty.max_abs_diff(&fresh) < 1e-7);
    }

    #[test]
    fn nnz_blocks_partition_rows_and_balance_nonzeros() {
        // Skewed prefix: one hub row with 90 nnz among 10 light rows.
        let mut indptr = vec![0usize];
        let mut nnz = 0;
        for r in 0..11 {
            nnz += if r == 4 { 90 } else { 1 };
            indptr.push(nnz);
        }
        let blocks = nnz_balanced_blocks(&indptr, 4);
        // Blocks tile 0..rows contiguously.
        assert_eq!(blocks.first().unwrap().start, 0);
        assert_eq!(blocks.last().unwrap().end, 11);
        for w in blocks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // The hub row sits alone-ish: no block except the hub's holds more
        // than the light rows combined.
        let hub_block = blocks.iter().find(|b| b.contains(&4)).unwrap();
        for b in &blocks {
            let block_nnz = indptr[b.end] - indptr[b.start];
            if b != hub_block {
                assert!(block_nnz <= 10, "light block {b:?} got {block_nnz} nnz");
            }
        }
    }

    #[test]
    fn nnz_blocks_edge_cases() {
        assert!(nnz_balanced_blocks(&[0], 4).is_empty());
        // All-zero matrix: nothing to balance, one serial block.
        assert_eq!(nnz_balanced_blocks(&[0, 0, 0], 4), vec![0..2]);
        assert_eq!(nnz_balanced_blocks(&[0, 5, 9], 1), vec![0..2]);
        // More parts than rows degenerates to one row per block.
        let blocks = nnz_balanced_blocks(&[0, 2, 4, 6], 16);
        assert_eq!(blocks, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn column_tiled_spmm_is_byte_identical_to_untiled_on_skewed_star() {
        use ppgnn_tensor::block::SPMM_COL_BLOCK;
        use ppgnn_tensor::WorkerPool;
        // Star graph: node 0 is a hub adjacent to everyone — the shape
        // column tiling exists for. Sweep feature widths below, at, and
        // above the strip width (1/2/8 exercise the single-strip path,
        // the wider ones the multi-strip path with a ragged tail).
        let n = 64;
        let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(n, &edges, true).unwrap();
        let op = WeightedCsr::sym_norm(&g, true);
        let _guard = test_threshold_guard();
        ppgnn_tensor::set_parallel_threshold(0);
        for f in [
            1,
            2,
            8,
            SPMM_COL_BLOCK,
            SPMM_COL_BLOCK + 3,
            2 * SPMM_COL_BLOCK + 1,
        ] {
            let x = Matrix::from_fn(n, f, |r, c| ((r * 31 + c * 7) % 17) as f32 * 0.37 - 2.9);
            // Untiled oracle, computed serially row by row.
            let mut expect = Matrix::zeros(n, f);
            for r in 0..n {
                op.spmm_row_untiled(
                    r,
                    x.as_slice(),
                    f,
                    &mut expect.as_mut_slice()[r * f..(r + 1) * f],
                );
            }
            for threads in [1, 2, 8] {
                let pool = WorkerPool::new(threads);
                let mut out = Matrix::full(n, f, f32::NAN); // dirty buffer
                op.spmm_into_on(&x, &mut out, &pool);
                let same_bits = out
                    .as_slice()
                    .iter()
                    .zip(expect.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(
                    same_bits,
                    "width {f}, pool {threads}: tiled SpMM diverged bytewise"
                );
            }
        }
        ppgnn_tensor::set_parallel_threshold(ppgnn_tensor::pool::DEFAULT_PARALLEL_THRESHOLD);
    }

    #[test]
    fn skewed_graph_spmm_matches_dense_at_all_widths() {
        use ppgnn_tensor::WorkerPool;
        // Star graph: node 0 is a hub adjacent to everyone — the worst case
        // for equal-rows splits.
        let n = 64;
        let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(n, &edges, true).unwrap();
        let op = WeightedCsr::sym_norm(&g, true);
        let x = Matrix::from_fn(n, 5, |r, c| ((r * 7 + c * 3) % 13) as f32 - 6.0);
        let dense = ppgnn_tensor::matmul(&op.to_dense(), &x);
        // Force the pooled path regardless of work size, then sweep widths.
        let _guard = test_threshold_guard();
        ppgnn_tensor::set_parallel_threshold(0);
        for threads in [1, 2, 8] {
            let pool = WorkerPool::new(threads);
            let mut out = Matrix::zeros(n, 5);
            op.spmm_into_on(&x, &mut out, &pool);
            assert!(
                out.max_abs_diff(&dense) < 1e-5,
                "width {threads} disagrees with dense reference"
            );
        }
        ppgnn_tensor::set_parallel_threshold(ppgnn_tensor::pool::DEFAULT_PARALLEL_THRESHOLD);
    }

    /// Serializes tests that mutate the global parallel threshold.
    pub(super) fn test_threshold_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap()
    }
}
