//! Graph statistics used by the characterization experiments.

use crate::CsrGraph;

/// Fraction of edges whose endpoints share a label (edge homophily,
/// Lim et al. 2021). Returns `0.0` for edgeless graphs.
///
/// # Panics
///
/// Panics if `labels.len() != graph.num_nodes()`.
pub fn edge_homophily(graph: &CsrGraph, labels: &[u32]) -> f64 {
    assert_eq!(
        labels.len(),
        graph.num_nodes(),
        "labels must cover every node"
    );
    let mut same = 0usize;
    let mut total = 0usize;
    for v in 0..graph.num_nodes() {
        for &u in graph.neighbors(v) {
            total += 1;
            if labels[u as usize] == labels[v] {
                same += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        same as f64 / total as f64
    }
}

/// Summary of a graph's degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Fraction of nodes with zero neighbors.
    pub isolated_frac: f64,
}

/// Computes [`DegreeStats`] in one pass (plus a sort for the median).
pub fn degree_stats(graph: &CsrGraph) -> DegreeStats {
    let n = graph.num_nodes();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            isolated_frac: 0.0,
        };
    }
    let mut degrees: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    degrees.sort_unstable();
    let isolated = degrees.iter().take_while(|&&d| d == 0).count();
    DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean: graph.avg_degree(),
        median: degrees[n / 2],
        isolated_frac: isolated as f64 / n as f64,
    }
}

/// Size of the `r`-hop neighborhood of `seed` (breadth-first, including the
/// seed). Quantifies neighbor explosion for the characterization plots.
pub fn receptive_field_size(graph: &CsrGraph, seed: usize, hops: usize) -> usize {
    let mut visited = vec![false; graph.num_nodes()];
    let mut frontier = vec![seed];
    visited[seed] = true;
    let mut count = 1usize;
    for _ in 0..hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in graph.neighbors(v) {
                let u = u as usize;
                if !visited[u] {
                    visited[u] = true;
                    count += 1;
                    next.push(u);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], true).unwrap()
    }

    #[test]
    fn homophily_of_perfectly_sorted_labels() {
        let g = path4();
        assert_eq!(edge_homophily(&g, &[0, 0, 0, 0]), 1.0);
        // alternating labels on a path: no same-label edges
        assert_eq!(edge_homophily(&g, &[0, 1, 0, 1]), 0.0);
        // half/half split: only the middle edge crosses
        let h = edge_homophily(&g, &[0, 0, 1, 1]);
        assert!((h - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn homophily_of_edgeless_graph_is_zero() {
        let g = CsrGraph::from_edges(3, &[], true).unwrap();
        assert_eq!(edge_homophily(&g, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn degree_stats_on_star() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)], true).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 1);
        assert_eq!(s.median, 1);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-9);
        assert_eq!(s.isolated_frac, 0.0);
    }

    #[test]
    fn degree_stats_counts_isolated() {
        let g = CsrGraph::from_edges(4, &[(0, 1)], true).unwrap();
        let s = degree_stats(&g);
        assert!((s.isolated_frac - 0.5).abs() < 1e-9);
    }

    #[test]
    fn receptive_field_grows_then_saturates() {
        let g = path4();
        assert_eq!(receptive_field_size(&g, 0, 0), 1);
        assert_eq!(receptive_field_size(&g, 0, 1), 2);
        assert_eq!(receptive_field_size(&g, 0, 2), 3);
        assert_eq!(receptive_field_size(&g, 0, 3), 4);
        assert_eq!(receptive_field_size(&g, 0, 10), 4);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = CsrGraph::from_edges(0, &[], true).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }
}
