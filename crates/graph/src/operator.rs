//! Graph-signal filter operators used during pre-propagation.
//!
//! PP-GNNs compute `S_k = {X, B_k X, …, B_k^R X}` (Eq. 2). The operator
//! `B_k` is derived from the adjacency matrix; from the spectral view these
//! are low-pass filters on the graph signal (Gasteiger et al. 2019; Nt &
//! Maehara 2019). Four choices cover the models in the paper:
//!
//! * [`Operator::SymNorm`] — `D̃^(-1/2) Ã D̃^(-1/2)`, used by SGC, SIGN and
//!   HOGA (the single-kernel configuration of the evaluation),
//! * [`Operator::RowNorm`] — the random-walk transition matrix,
//! * [`Operator::Ppr`] — truncated Personalized-PageRank diffusion,
//! * [`Operator::Heat`] — truncated heat-kernel diffusion.
//!
//! Every application bottoms out in [`WeightedCsr::spmm_into_on`], whose
//! per-row accumulation order is fixed by CSR entry order and unchanged
//! by row sharding, graph partitioning, *or* the kernel's internal
//! column tiling — the invariant the shard/partition equivalence suites
//! byte-compare feature stores against.

use ppgnn_tensor::Matrix;

use crate::{CsrGraph, WeightedCsr};

/// Number of power-series terms used to approximate the diffusion operators.
const DIFFUSION_TERMS: usize = 10;

/// A graph filter `B` applied as `X ↦ B·X` during preprocessing.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Operator {
    /// GCN-style symmetric normalization with self-loops.
    SymNorm,
    /// Random-walk (row-stochastic) normalization with self-loops.
    RowNorm,
    /// Personalized PageRank diffusion with restart probability `alpha`,
    /// approximated by a truncated power series
    /// `α Σ_i (1-α)^i Ā^i` with [`DIFFUSION_TERMS`] terms.
    Ppr {
        /// Restart probability in `(0, 1)`.
        alpha: f32,
    },
    /// Heat-kernel diffusion `e^{-t(I - Ā)}`, approximated by a truncated
    /// series `e^{-t} Σ_i t^i/i! Ā^i`.
    Heat {
        /// Diffusion time `t > 0`.
        t: f32,
    },
}

impl Operator {
    /// Short, stable identifier used in file names and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Operator::SymNorm => "sym",
            Operator::RowNorm => "rw",
            Operator::Ppr { .. } => "ppr",
            Operator::Heat { .. } => "heat",
        }
    }

    /// Materializes the base normalized adjacency this operator diffuses
    /// over.
    pub fn base(&self, graph: &CsrGraph) -> WeightedCsr {
        match self {
            Operator::RowNorm => WeightedCsr::row_norm(graph, true),
            _ => WeightedCsr::sym_norm(graph, true),
        }
    }

    /// Applies the operator once: `X ↦ B·X`.
    ///
    /// For `SymNorm`/`RowNorm` this is a single SpMM; for `Ppr`/`Heat` it is
    /// a truncated diffusion series (each term one SpMM).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != graph.num_nodes()`.
    pub fn apply(&self, graph: &CsrGraph, x: &Matrix) -> Matrix {
        let base = self.base(graph);
        self.apply_with_base(&base, x)
    }

    /// Applies the operator given a pre-materialized base adjacency.
    ///
    /// Preprocessing calls this in a loop over hops so the normalization is
    /// computed once per graph, not once per hop.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != base.cols()`.
    pub fn apply_with_base(&self, base: &WeightedCsr, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), x.cols());
        self.apply_with_base_into(base, x, &mut out);
        out
    }

    /// Applies the operator into a pre-allocated output (overwrites `out`).
    ///
    /// For `SymNorm`/`RowNorm` this is a single allocation-free
    /// [`WeightedCsr::spmm_into`]; the streaming preprocessor ping-pongs two
    /// full-graph buffers through it so hop propagation allocates nothing.
    /// The truncated `Ppr`/`Heat` series still allocate their two term
    /// buffers internally (constant per call, not per series term).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != base.cols()` or `out`'s shape differs from
    /// `x`'s.
    pub fn apply_with_base_into(&self, base: &WeightedCsr, x: &Matrix, out: &mut Matrix) {
        self.apply_with_base_into_on(base, x, out, ppgnn_tensor::pool());
    }

    /// [`Operator::apply_with_base_into`] on an explicit worker pool: every
    /// internal SpMM routes through [`WeightedCsr::spmm_into_on`], so
    /// callers that bound their thread usage (width sweeps,
    /// `Preprocessor::run_on`) keep that bound through diffusion-series
    /// operators too.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Operator::apply_with_base_into`].
    pub fn apply_with_base_into_on(
        &self,
        base: &WeightedCsr,
        x: &Matrix,
        out: &mut Matrix,
        pool: &ppgnn_tensor::WorkerPool,
    ) {
        match *self {
            Operator::SymNorm | Operator::RowNorm => base.spmm_into_on(x, out, pool),
            Operator::Ppr { alpha } => {
                assert!((0.0..1.0).contains(&alpha), "ppr alpha must be in (0,1)");
                out.copy_from(x); // α · Ā^0 X term
                out.scale(alpha);
                let mut term = x.clone();
                let mut next = Matrix::zeros(x.rows(), x.cols());
                let mut coeff = alpha;
                for _ in 1..=DIFFUSION_TERMS {
                    base.spmm_into_on(&term, &mut next, pool);
                    std::mem::swap(&mut term, &mut next);
                    coeff *= 1.0 - alpha;
                    out.axpy(coeff, &term);
                }
            }
            Operator::Heat { t } => {
                assert!(t > 0.0, "heat diffusion time must be positive");
                out.copy_from(x); // i = 0 term, coefficient 1
                let mut term = x.clone();
                let mut next = Matrix::zeros(x.rows(), x.cols());
                let mut coeff = 1.0f32;
                for i in 1..=DIFFUSION_TERMS {
                    base.spmm_into_on(&term, &mut next, pool);
                    std::mem::swap(&mut term, &mut next);
                    coeff *= t / i as f32;
                    out.axpy(coeff, &term);
                }
                out.scale((-t).exp());
            }
        }
    }

    /// `true` for operators whose one application is a truncated diffusion
    /// *series* (`Ppr`/`Heat`) rather than a single SpMM.
    ///
    /// Series applications are an internally sequential chain of SpMMs
    /// over full-graph term buffers, so they do not decompose into
    /// independent node-range shard tasks; the shard scheduler in
    /// `ppgnn-core` runs them through [`Operator::apply_with_base_into`]
    /// (whose inner SpMMs still parallelize on the pool) instead of
    /// slicing them.
    pub fn is_diffusion_series(&self) -> bool {
        matches!(self, Operator::Ppr { .. } | Operator::Heat { .. })
    }

    /// Number of SpMM invocations one application costs (used by the
    /// preprocessing-time model in `ppgnn-memsim`).
    pub fn spmm_count(&self) -> usize {
        match self {
            Operator::SymNorm | Operator::RowNorm => 1,
            Operator::Ppr { .. } | Operator::Heat { .. } => DIFFUSION_TERMS,
        }
    }

    /// Number of power-series terms a diffusion-series application sums
    /// (`0` for single-SpMM operators). Exposed so alternative execution
    /// engines (the partitioned ghost-exchange diffusion in
    /// `ppgnn-partition`) can replicate the truncated series bit-exactly.
    pub fn series_terms(&self) -> usize {
        if self.is_diffusion_series() {
            DIFFUSION_TERMS
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> CsrGraph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        CsrGraph::from_edges(n, &edges, true).unwrap()
    }

    #[test]
    fn sym_norm_smooths_constant_signal_exactly_on_regular_graph() {
        // On a d-regular graph with self-loops, the constant vector is an
        // eigenvector with eigenvalue 1 of the symmetric normalization.
        let g = cycle(6);
        let x = Matrix::full(6, 2, 3.0);
        let y = Operator::SymNorm.apply(&g, &x);
        assert!(y.max_abs_diff(&x) < 1e-5);
    }

    #[test]
    fn row_norm_preserves_constants_on_any_graph() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 3), (3, 4), (2, 4)], true).unwrap();
        let x = Matrix::full(5, 1, 2.5);
        let y = Operator::RowNorm.apply(&g, &x);
        assert!(y.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn ppr_preserves_constants_on_regular_graph() {
        // Σ α(1-α)^i over 10 terms ≈ 1, so constants map near themselves.
        let g = cycle(8);
        let x = Matrix::full(8, 1, 1.0);
        let y = Operator::Ppr { alpha: 0.15 }.apply(&g, &x);
        let expected: f32 = (0..=10).map(|i| 0.15f32 * 0.85f32.powi(i)).sum();
        for v in y.as_slice() {
            assert!((v - expected).abs() < 1e-4, "value {v} vs {expected}");
        }
    }

    #[test]
    fn heat_kernel_is_near_identity_for_small_t() {
        let g = cycle(6);
        let x = Matrix::from_fn(6, 2, |r, c| (r + c) as f32);
        let y = Operator::Heat { t: 0.01 }.apply(&g, &x);
        assert!(y.max_abs_diff(&x) < 0.05);
    }

    #[test]
    fn repeated_application_converges_toward_smooth_signal() {
        // High-frequency alternating signal should shrink under low-pass
        // filtering.
        let g = cycle(8);
        let x = Matrix::from_fn(8, 1, |r, _| if r % 2 == 0 { 1.0 } else { -1.0 });
        let mut y = x.clone();
        for _ in 0..4 {
            y = Operator::SymNorm.apply(&g, &y);
        }
        assert!(y.frobenius_norm() < 0.5 * x.frobenius_norm());
    }

    #[test]
    fn apply_into_matches_allocating_apply_for_every_operator() {
        let g = cycle(7);
        let x = Matrix::from_fn(7, 3, |r, c| ((r * 3 + c) % 5) as f32 - 2.0);
        for op in [
            Operator::SymNorm,
            Operator::RowNorm,
            Operator::Ppr { alpha: 0.2 },
            Operator::Heat { t: 0.5 },
        ] {
            let base = op.base(&g);
            let expected = op.apply_with_base(&base, &x);
            let mut out = Matrix::full(7, 3, -123.0); // dirty buffer
            op.apply_with_base_into(&base, &x, &mut out);
            assert!(
                out.max_abs_diff(&expected) < 1e-6,
                "{} into-variant diverged",
                op.name()
            );
        }
    }

    #[test]
    fn operator_names_are_stable() {
        assert_eq!(Operator::SymNorm.name(), "sym");
        assert_eq!(Operator::Ppr { alpha: 0.1 }.name(), "ppr");
        assert_eq!(Operator::Heat { t: 1.0 }.name(), "heat");
        assert_eq!(Operator::RowNorm.name(), "rw");
    }

    #[test]
    fn spmm_counts_reflect_series_length() {
        assert_eq!(Operator::SymNorm.spmm_count(), 1);
        assert!(Operator::Ppr { alpha: 0.2 }.spmm_count() > 1);
    }

    #[test]
    fn series_classification_matches_spmm_counts() {
        for op in [
            Operator::SymNorm,
            Operator::RowNorm,
            Operator::Ppr { alpha: 0.2 },
            Operator::Heat { t: 0.5 },
        ] {
            assert_eq!(op.is_diffusion_series(), op.spmm_count() > 1);
        }
    }
}
