//! Property-based tests for graph structures, normalization, and SpMM.

use ppgnn_graph::{CsrGraph, Operator, WeightedCsr};
use ppgnn_tensor::Matrix;
use proptest::prelude::*;

/// Strategy: a random edge list over `n` nodes.
fn edges(
    max_nodes: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edge = (0..n, 0..n);
        prop::collection::vec(edge, 0..=max_edges).prop_map(move |es| (n, es))
    })
}

proptest! {
    #[test]
    fn csr_construction_is_valid((n, es) in edges(40, 200)) {
        let g = CsrGraph::from_edges(n, &es, true).expect("in-range edges");
        // indptr is a valid prefix array
        prop_assert_eq!(g.indptr().len(), n + 1);
        prop_assert_eq!(*g.indptr().last().unwrap(), g.num_edges());
        // neighbor lists sorted and deduped
        for v in 0..n {
            let ns = g.neighbors(v);
            for w in ns.windows(2) {
                prop_assert!(w[0] < w[1], "unsorted or duplicate neighbors");
            }
        }
    }

    #[test]
    fn symmetrized_graph_is_symmetric((n, es) in edges(30, 150)) {
        let g = CsrGraph::from_edges(n, &es, true).expect("in-range edges");
        for v in 0..n {
            for &u in g.neighbors(v) {
                prop_assert!(g.has_edge(u as usize, v), "missing reverse edge");
            }
        }
    }

    #[test]
    fn degree_sums_match_edge_count((n, es) in edges(30, 150)) {
        let g = CsrGraph::from_edges(n, &es, false).expect("in-range edges");
        let total: usize = (0..n).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, g.num_edges());
    }

    #[test]
    fn row_norm_rows_sum_to_one_or_zero((n, es) in edges(25, 120)) {
        let g = CsrGraph::from_edges(n, &es, true).expect("in-range edges");
        let op = WeightedCsr::row_norm(&g, true);
        let dense = op.to_dense();
        for r in 0..n {
            let sum: f32 = dense.row(r).iter().sum();
            // self-loops make every row non-empty → sums to 1
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn sym_norm_is_symmetric_matrix((n, es) in edges(25, 120)) {
        let g = CsrGraph::from_edges(n, &es, true).expect("in-range edges");
        let dense = WeightedCsr::sym_norm(&g, true).to_dense();
        prop_assert!(dense.max_abs_diff(&dense.transpose()) < 1e-5);
    }

    #[test]
    fn spmm_matches_dense_reference((n, es) in edges(20, 100), cols in 1usize..5) {
        let g = CsrGraph::from_edges(n, &es, true).expect("in-range edges");
        let op = WeightedCsr::sym_norm(&g, true);
        let x = Matrix::from_fn(n, cols, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.25 - 1.0);
        let sparse = op.spmm(&x);
        let dense = ppgnn_tensor::matmul(&op.to_dense(), &x);
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-4);
    }

    #[test]
    fn operators_are_contractive_in_the_right_norms((n, es) in edges(20, 100)) {
        // Row normalization is an ∞-norm contraction (convex combinations);
        // symmetric normalization has spectral radius ≤ 1, so it contracts
        // the L2 norm of each signal column (but *not* the max-norm — a
        // degree-1 node next to a hub can locally amplify).
        let g = CsrGraph::from_edges(n, &es, true).expect("in-range edges");
        let x = Matrix::from_fn(n, 1, |r, _| if r % 2 == 0 { 1.0 } else { -1.0 });
        let y_rw = Operator::RowNorm.apply(&g, &x);
        let max = y_rw.as_slice().iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        prop_assert!(max <= 1.0 + 1e-4, "row-norm amplified max-norm to {max}");
        let y_sym = Operator::SymNorm.apply(&g, &x);
        prop_assert!(
            y_sym.frobenius_norm() <= x.frobenius_norm() * (1.0 + 1e-4),
            "sym-norm amplified L2: {} > {}",
            y_sym.frobenius_norm(),
            x.frobenius_norm()
        );
    }

    #[test]
    fn preprocessing_chain_is_associative((n, es) in edges(20, 80)) {
        // B(B X) == B² X computed stepwise — the invariant the hop loop
        // relies on.
        let g = CsrGraph::from_edges(n, &es, true).expect("in-range edges");
        let base = Operator::SymNorm.base(&g);
        let x = Matrix::from_fn(n, 2, |r, c| (r + c) as f32 * 0.1);
        let two_step = base.spmm(&base.spmm(&x));
        let dense2 = ppgnn_tensor::matmul(
            &base.to_dense(),
            &ppgnn_tensor::matmul(&base.to_dense(), &x),
        );
        prop_assert!(two_step.max_abs_diff(&dense2) < 1e-3);
    }
}
