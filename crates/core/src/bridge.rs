//! Functional-plane → performance-plane adapters.
//!
//! The throughput experiments simulate at **paper scale** — real node
//! counts and byte volumes from Table 2 — while measurements that don't
//! scale with graph size (per-batch sampled-subgraph statistics, model
//! FLOPs per example) are taken from the functional plane on the scaled
//! datasets and carried over. This module builds the `ppgnn-memsim`
//! workload descriptors from those two sources.

use ppgnn_graph::synth::DatasetProfile;
use ppgnn_memsim::{MpWorkload, PpWorkload};
use ppgnn_models::PpModel;
use ppgnn_sampler::SampleStats;

/// Scale at which to build a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadScale {
    /// The scaled-down synthetic dataset (functional-plane sizes).
    Sim,
    /// The real benchmark's sizes from Table 2 (performance-plane sizes).
    Paper,
}

/// Builds a PP-GNN workload descriptor for `profile`.
///
/// The training-row count honours the labeled fraction (the papers100M
/// retention effect) and `row_bytes` covers all `K(R+1)` hop matrices.
pub fn pp_workload(
    profile: &DatasetProfile,
    model: &dyn PpModel,
    num_operators: usize,
    batch_size: usize,
    chunk_size: usize,
    scale: WorkloadScale,
) -> PpWorkload {
    let (nodes, feature_dim, labeled_frac) = match scale {
        WorkloadScale::Sim => (
            profile.num_nodes as u64,
            profile.feature_dim as u64,
            profile.labeled_frac,
        ),
        WorkloadScale::Paper => (
            profile.paper.num_nodes,
            profile.paper.feature_dim as u64,
            profile.paper.labeled_frac,
        ),
    };
    let hops = model.num_hops() as u64;
    // The training loop iterates the *train split* of the labeled nodes.
    let num_train = ((nodes as f64) * labeled_frac * profile.split_frac.0) as usize;
    PpWorkload {
        num_train,
        batch_size,
        row_bytes: num_operators as u64 * (hops + 1) * feature_dim * 4,
        flops_per_example: model_flops(model, feature_dim as usize),
        chunk_size,
        param_bytes: 0, // filled below
    }
    .with_params(model)
}

trait WithParams {
    fn with_params(self, model: &dyn PpModel) -> Self;
}

impl WithParams for PpWorkload {
    fn with_params(mut self, model: &dyn PpModel) -> Self {
        // params + grads + Adam moments transferred per all-reduce ≈ params
        self.param_bytes = 4 * approx_param_count(model) as u64;
        self
    }
}

/// FLOPs per example, re-derived at the workload's feature dimension when
/// it differs from the model instance's (paper-scale simulation of a
/// sim-scale model uses the same architecture at the paper's `F`).
fn model_flops(model: &dyn PpModel, _feature_dim: usize) -> u64 {
    model.flops_per_example()
}

fn approx_param_count(model: &dyn PpModel) -> usize {
    // `PpModel::num_params` needs `&mut`; the workload builder only has
    // `&dyn`, so approximate from FLOPs: one parameter ≈ 6 FLOPs/example
    // in dense layers (fwd+bwd).
    (model.flops_per_example() / 6) as usize
}

/// Total **resident** expanded-input bytes for placement decisions: every
/// labeled row (train + val + test) is retained across `K(R+1)` hop
/// matrices — the Section 3.4 quantity the auto-configuration system
/// compares against memory capacities.
pub fn expanded_input_bytes(
    profile: &DatasetProfile,
    hops: usize,
    num_operators: usize,
    scale: WorkloadScale,
) -> u64 {
    let (nodes, feature_dim, labeled_frac) = match scale {
        WorkloadScale::Sim => (
            profile.num_nodes as u64,
            profile.feature_dim as u64,
            profile.labeled_frac,
        ),
        WorkloadScale::Paper => (
            profile.paper.num_nodes,
            profile.paper.feature_dim as u64,
            profile.paper.labeled_frac,
        ),
    };
    let labeled = ((nodes as f64) * labeled_frac) as u64;
    labeled * num_operators as u64 * (hops as u64 + 1) * feature_dim * 4
}

/// Builds an MP-GNN workload from measured sampler statistics.
///
/// `stats` must be an accumulation over `batches_measured` batches on the
/// sim-scale graph; per-batch averages carry to paper scale (expansion
/// factors are fanout-driven, not graph-size-driven) while the epoch's
/// batch count comes from the paper-scale training-set size.
pub fn mp_workload(
    profile: &DatasetProfile,
    stats: &SampleStats,
    batches_measured: usize,
    flops_per_batch: u64,
    batch_size: usize,
    param_bytes: u64,
    scale: WorkloadScale,
) -> MpWorkload {
    assert!(batches_measured > 0, "need at least one measured batch");
    let (nodes, feature_dim, labeled_frac) = match scale {
        WorkloadScale::Sim => (
            profile.num_nodes as u64,
            profile.feature_dim as u64,
            profile.labeled_frac,
        ),
        WorkloadScale::Paper => (
            profile.paper.num_nodes,
            profile.paper.feature_dim as u64,
            profile.paper.labeled_frac,
        ),
    };
    let num_train = ((nodes as f64) * labeled_frac * profile.split_frac.0) as usize;
    let per_batch_inputs = (stats.input_nodes / batches_measured) as u64;
    let per_batch_edges = (stats.total_edges / batches_measured) as u64;
    // Feature-dimension correction: FLOPs measured at sim F scale ~ linearly
    // in F for the first layer; approximate the whole model linearly.
    let f_ratio = feature_dim as f64 / profile.feature_dim as f64;
    MpWorkload {
        num_train,
        batch_size,
        feature_row_bytes: feature_dim * 4,
        input_nodes_per_batch: per_batch_inputs.min(nodes),
        edges_per_batch: per_batch_edges,
        flops_per_batch: (flops_per_batch as f64 * f_ratio) as u64,
        param_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_models::Sign;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pp_workload_honours_label_fraction() {
        let profile = DatasetProfile::papers100m_sim();
        let mut rng = StdRng::seed_from_u64(0);
        let model = Sign::new(
            3,
            profile.feature_dim,
            64,
            profile.num_classes,
            0.0,
            &mut rng,
        );
        let w = pp_workload(&profile, &model, 1, 8000, 8000, WorkloadScale::Paper);
        // train split: 78% of the 1.4% labeled nodes
        let expected = (111_059_956f64 * 0.014 * 0.78) as usize;
        assert_eq!(w.num_train, expected);
        assert_eq!(w.row_bytes, 4 * 128 * 4); // (R+1)·F·4
        assert!(w.param_bytes > 0);
    }

    #[test]
    fn paper_scale_expands_input_past_host_memory_for_igb_large() {
        let profile = DatasetProfile::igb_large_sim();
        let mut rng = StdRng::seed_from_u64(1);
        let model = Sign::new(
            3,
            profile.feature_dim,
            64,
            profile.num_classes,
            0.0,
            &mut rng,
        );
        // resident input: 4 × 400 GB = 1.6 TB, the Section 3.4 number
        let resident = expanded_input_bytes(&profile, 3, 1, WorkloadScale::Paper);
        assert!(resident > 1_500_000_000_000);
        let w = pp_workload(&profile, &model, 1, 8000, 8000, WorkloadScale::Paper);
        // the training loop iterates the 60% train split of that
        assert!(w.total_input_bytes() < resident);
    }

    #[test]
    fn mp_workload_averages_measured_stats() {
        let profile = DatasetProfile::products_sim();
        let stats = SampleStats {
            input_nodes: 5000,
            total_nodes: 9000,
            total_edges: 30000,
            seeds: 100,
        };
        let w = mp_workload(
            &profile,
            &stats,
            10,
            1_000_000,
            8000,
            1 << 20,
            WorkloadScale::Paper,
        );
        assert_eq!(w.input_nodes_per_batch, 500);
        assert_eq!(w.edges_per_batch, 3000);
        assert_eq!(w.feature_row_bytes, 100 * 4);
    }

    #[test]
    fn sim_scale_uses_profile_sizes() {
        let profile = DatasetProfile::pokec_sim().scaled(0.1);
        let mut rng = StdRng::seed_from_u64(2);
        let model = Sign::new(2, profile.feature_dim, 16, 2, 0.0, &mut rng);
        let w = pp_workload(&profile, &model, 1, 64, 64, WorkloadScale::Sim);
        assert_eq!(w.num_train, (profile.num_nodes as f64 * 0.5) as usize);
    }
}
