//! Persistence of preprocessed outputs — the amortization workflow.
//!
//! The paper's central cost argument (Section 3.5 / Table 7) is that
//! preprocessing is a **one-time** cost amortized over many training runs.
//! That only works if the preprocessed hop features are saved and reloaded;
//! this module persists a whole [`PrepropOutput`] (all three partitions,
//! labels, node ids, timing, expansion metadata) to a directory and loads
//! it back bit-exactly, so hyperparameter sweeps skip the SpMM chain.
//!
//! Layout: one sub-store per partition in the Section 4.3 file-per-hop
//! format, plus `labels_<part>.ppgt` / `nodes_<part>.ppgt` sidecars (labels
//! and ids stored as 1×n f32 matrices — exact for values < 2²⁴) and a
//! `preprop.txt` manifest.

use std::fs;
use std::path::Path;

use ppgnn_dataio::{commit, DataIoError, FeatureStore, FeatureStoreWriter, StoreMeta};
use ppgnn_tensor::{io as tio, Matrix};

use crate::preprocess::{ExpansionReport, PrepropFeatures, PrepropOutput};

const MANIFEST: &str = "preprop.txt";
const PARTS: [&str; 3] = ["train", "val", "test"];

/// Saves `out` under `dir` (created if needed). The `preprop.txt`
/// manifest is committed last, atomically, so an interrupted save is
/// always detectable: [`load`] fails on the missing manifest rather than
/// returning partial data.
///
/// # Errors
///
/// Propagates filesystem and store-layer failures; a partially written
/// directory is left behind for inspection (callers should treat any error
/// as "re-run preprocessing").
pub fn save(
    out: &PrepropOutput,
    dir: impl AsRef<Path>,
    chunk_size: usize,
) -> Result<(), DataIoError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut manifest = format!(
        "version=1\npreprocess_seconds={}\nraw_bytes={}\nexpanded_bytes={}\nretained_rows={}\nnum_operators={}\nhops={}\n",
        out.preprocess_seconds,
        out.expansion.raw_bytes,
        out.expansion.expanded_bytes,
        out.expansion.retained_rows,
        out.expansion.num_operators,
        out.expansion.hops,
    );
    // Partition balance stats of partitioned runs, one colon-separated
    // line per partition (absent for single-domain runs).
    for s in &out.expansion.partitions {
        manifest.push_str(&format!(
            "partition_{}={}:{}:{}:{}:{}\n",
            s.partition, s.rows, s.nnz, s.ghost_rows, s.train_rows, s.store_bytes
        ));
    }
    // Run telemetry (per-hop timings, writer backpressure), so the
    // report round-trips exactly; absent in pre-telemetry manifests.
    let t = &out.expansion.telemetry;
    if !t.hop_ns.is_empty() {
        let hop_ns: Vec<String> = t.hop_ns.iter().map(u64::to_string).collect();
        manifest.push_str(&format!("telemetry_hop_ns={}\n", hop_ns.join(":")));
    }
    manifest.push_str(&format!(
        "telemetry_writer={}:{}\n",
        t.writer_queue_hwm, t.writer_block_ns
    ));
    for (part, features) in PARTS.iter().zip([&out.train, &out.val, &out.test]) {
        save_partition(features, dir, part, chunk_size)?;
    }
    // The manifest is the commit point: written last, atomically, so an
    // interrupted save never leaves a manifest pointing at incomplete
    // partition stores.
    commit::write_bytes_atomic("manifest", &dir.join(MANIFEST), manifest.as_bytes())?;
    Ok(())
}

fn save_partition(
    f: &PrepropFeatures,
    dir: &Path,
    part: &str,
    chunk_size: usize,
) -> Result<(), DataIoError> {
    let rows = f.len();
    let cols = f.hops.first().map(|h| h.cols()).unwrap_or(0);
    let meta = StoreMeta {
        dataset: part.to_string(),
        num_hops: f.hops.len(),
        rows,
        cols,
        chunk_size: chunk_size.max(1),
        // Persisted outputs exist to reload **bit-exactly** (the whole
        // point of amortization), so they are always lossless f32
        // regardless of `PPGNN_STORE_DTYPE`.
        dtype: ppgnn_dataio::StoreDtype::F32,
    };
    let sub = dir.join(part);
    let mut writer = FeatureStoreWriter::create(&sub, meta)?;
    for (k, hop) in f.hops.iter().enumerate() {
        writer.write_hop(k, hop)?;
    }
    writer.finish()?;
    let labels = Matrix::from_fn(1, rows, |_, c| f.labels[c] as f32);
    let nodes = Matrix::from_fn(1, rows, |_, c| f.node_ids[c] as f32);
    write_sidecar(&sub.join("labels.ppgt"), &labels)?;
    write_sidecar(&sub.join("nodes.ppgt"), &nodes)?;
    Ok(())
}

fn write_sidecar(path: &Path, m: &Matrix) -> Result<(), DataIoError> {
    let mut buf = Vec::new();
    tio::write_matrix(&mut buf, m).map_err(|e| DataIoError::Io(e.to_string()))?;
    commit::write_bytes_atomic("sidecar", path, &buf)
}

fn read_sidecar(path: &Path) -> Result<Matrix, DataIoError> {
    let mut f = fs::File::open(path)?;
    tio::read_matrix(&mut f)
        .map_err(|e| ppgnn_dataio::CorruptError::new(e.to_string()).with_path(path))
        .map_err(DataIoError::from)
}

/// Loads a [`PrepropOutput`] previously written by [`save`].
///
/// # Errors
///
/// Fails on missing/corrupt manifest, stores, or sidecars.
pub fn load(dir: impl AsRef<Path>) -> Result<PrepropOutput, DataIoError> {
    let dir = dir.as_ref();
    let text = fs::read_to_string(dir.join(MANIFEST))
        .map_err(|e| DataIoError::Io(format!("{}: {e}", dir.display())))?;
    let field = |key: &str| -> Result<f64, DataIoError> {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .ok_or_else(|| DataIoError::BadManifest(format!("missing {key}")))?
            .parse::<f64>()
            .map_err(|_| DataIoError::BadManifest(format!("bad {key}")))
    };
    let preprocess_seconds = field("preprocess_seconds")?;
    let mut parts = Vec::with_capacity(3);
    for part in PARTS {
        parts.push(load_partition(dir, part)?);
    }
    // Manifests written before the retained-rows key derive it from the
    // loaded partitions (the value the report is defined to equal anyway);
    // a *present but malformed* value still fails like any other field.
    let retained_rows = if text.lines().any(|l| l.starts_with("retained_rows=")) {
        field("retained_rows")? as u64
    } else {
        parts.iter().map(|p| p.len() as u64).sum()
    };
    let mut partitions = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("partition_") else {
            continue;
        };
        let Some((idx, values)) = rest.split_once('=') else {
            continue;
        };
        let bad = || DataIoError::BadManifest(format!("bad partition line: {line}"));
        let partition = idx.parse::<usize>().map_err(|_| bad())?;
        let nums = values
            .split(':')
            .map(|v| v.parse::<u64>().map_err(|_| bad()))
            .collect::<Result<Vec<u64>, _>>()?;
        let [rows, nnz, ghost_rows, train_rows, store_bytes] = nums[..] else {
            return Err(bad());
        };
        partitions.push(ppgnn_partition::PartitionStat {
            partition,
            rows: rows as usize,
            nnz: nnz as usize,
            ghost_rows: ghost_rows as usize,
            train_rows: train_rows as usize,
            store_bytes,
        });
    }
    // Telemetry lines are optional (absent in pre-telemetry manifests —
    // the report then carries the empty default), but a present-yet-
    // malformed value is corruption, like any other field.
    let mut telemetry = crate::preprocess::PrepTelemetry::default();
    if let Some(v) = text
        .lines()
        .find_map(|l| l.strip_prefix("telemetry_hop_ns="))
    {
        telemetry.hop_ns = v
            .split(':')
            .map(|s| {
                s.parse::<u64>()
                    .map_err(|_| DataIoError::BadManifest("bad telemetry_hop_ns".into()))
            })
            .collect::<Result<Vec<u64>, _>>()?;
    }
    if let Some(v) = text
        .lines()
        .find_map(|l| l.strip_prefix("telemetry_writer="))
    {
        let bad = || DataIoError::BadManifest("bad telemetry_writer".into());
        let (hwm, block) = v.split_once(':').ok_or_else(bad)?;
        telemetry.writer_queue_hwm = hwm.parse().map_err(|_| bad())?;
        telemetry.writer_block_ns = block.parse().map_err(|_| bad())?;
    }
    let expansion = ExpansionReport {
        raw_bytes: field("raw_bytes")? as u64,
        expanded_bytes: field("expanded_bytes")? as u64,
        retained_rows,
        num_operators: field("num_operators")? as usize,
        hops: field("hops")? as usize,
        partitions,
        telemetry,
    };
    let mut it = parts.into_iter();
    Ok(PrepropOutput {
        train: it.next().expect("three partitions"),
        val: it.next().expect("three partitions"),
        test: it.next().expect("three partitions"),
        preprocess_seconds,
        expansion,
    })
}

fn load_partition(dir: &Path, part: &str) -> Result<PrepropFeatures, DataIoError> {
    let sub = dir.join(part);
    let mut store = FeatureStore::open(&sub)?;
    let num_hops = store.meta().num_hops;
    let mut hops = Vec::with_capacity(num_hops);
    for k in 0..num_hops {
        hops.push(store.read_full_hop(k)?);
    }
    let labels = read_sidecar(&sub.join("labels.ppgt"))?;
    let nodes = read_sidecar(&sub.join("nodes.ppgt"))?;
    Ok(PrepropFeatures {
        hops,
        labels: labels.as_slice().iter().map(|&v| v as u32).collect(),
        node_ids: nodes.as_slice().iter().map(|&v| v as usize).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::Preprocessor;
    use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
    use ppgnn_graph::Operator;

    fn temp(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ppgnn-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trip_is_exact() {
        let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 3).unwrap();
        let out = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
        let dir = temp("roundtrip");
        save(&out, &dir, 64).unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.train.labels, out.train.labels);
        assert_eq!(loaded.val.node_ids, out.val.node_ids);
        assert_eq!(loaded.expansion, out.expansion);
        for (a, b) in loaded.train.hops.iter().zip(&out.train.hops) {
            assert_eq!(a, b, "hop features changed across persistence");
        }
        for (a, b) in loaded.test.hops.iter().zip(&out.test.hops) {
            assert_eq!(a, b);
        }
        assert!((loaded.preprocess_seconds - out.preprocess_seconds).abs() < 1e-9);
        // Pre-retained-rows manifests load too: the value is re-derived
        // from the partitions.
        let manifest_path = dir.join("preprop.txt");
        let text = fs::read_to_string(&manifest_path).unwrap();
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("retained_rows="))
            .map(|l| format!("{l}\n"))
            .collect();
        fs::write(&manifest_path, stripped).unwrap();
        let legacy = load(&dir).unwrap();
        assert_eq!(legacy.expansion, out.expansion);
        // Pre-telemetry manifests load too, carrying the empty default.
        let text = fs::read_to_string(&manifest_path).unwrap();
        let no_telemetry: String = text
            .lines()
            .filter(|l| !l.starts_with("telemetry_"))
            .map(|l| format!("{l}\n"))
            .collect();
        fs::write(&manifest_path, no_telemetry).unwrap();
        let pre_telemetry = load(&dir).unwrap();
        assert_eq!(
            pre_telemetry.expansion.telemetry,
            crate::preprocess::PrepTelemetry::default()
        );
        // A present-but-malformed value is corruption, not a legacy
        // manifest: it must fail like any other field.
        let mut corrupted = fs::read_to_string(&manifest_path).unwrap();
        corrupted.push_str("retained_rows=garbage\n");
        fs::write(&manifest_path, corrupted).unwrap();
        assert!(matches!(load(&dir), Err(DataIoError::BadManifest(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loaded_output_trains_identically() {
        use crate::trainer::{LoaderKind, TrainConfig, Trainer};
        use ppgnn_models::Sgc;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 4).unwrap();
        let out = Preprocessor::new(vec![Operator::SymNorm], 1).run(&data);
        let dir = temp("train");
        save(&out, &dir, 32).unwrap();
        let loaded = load(&dir).unwrap();

        let run = |prep: &PrepropOutput| {
            let mut model = Sgc::new(
                1,
                data.profile.feature_dim,
                2,
                &mut StdRng::seed_from_u64(1),
            );
            let mut t = Trainer::new(TrainConfig {
                epochs: 3,
                batch_size: 64,
                loader: LoaderKind::Fused,
                ..TrainConfig::default()
            });
            t.fit(&mut model, prep).unwrap().test_acc
        };
        assert_eq!(run(&out), run(&loaded));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_fails_cleanly() {
        let dir = temp("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(load(&dir), Err(DataIoError::Io(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_partition_fails_cleanly() {
        let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.015), 5).unwrap();
        let out = Preprocessor::new(vec![Operator::SymNorm], 1).run(&data);
        let dir = temp("corrupt");
        save(&out, &dir, 32).unwrap();
        fs::remove_file(dir.join("val").join("labels.ppgt")).unwrap();
        assert!(load(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
