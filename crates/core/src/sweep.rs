//! Hyperparameter sweeps over a single preprocessing run.
//!
//! The paper's amortization argument (Section 3.5): "hyper-parameter tuning
//! may require tens or even hundreds of runs", so the one-time
//! pre-propagation cost vanishes in the denominator. This module is that
//! workflow as an API — preprocess once (or [`crate::persist::load`] from
//! disk), then fan a configuration grid over the shared [`PrepropOutput`],
//! reporting per-configuration accuracy alongside the amortized
//! preprocessing share.

use ppgnn_models::PpModel;

use crate::preprocess::PrepropOutput;
use crate::trainer::{TrainConfig, TrainError, Trainer};

/// One grid point and its outcome.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The configuration trained.
    pub config: TrainConfig,
    /// Best validation accuracy reached.
    pub val_acc: f64,
    /// Test accuracy at the best-validation epoch.
    pub test_acc: f64,
    /// Wall-clock training seconds for this run.
    pub train_seconds: f64,
}

/// Outcome of a sweep: per-run results plus the amortization accounting.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One entry per grid point, in input order.
    pub results: Vec<SweepResult>,
    /// Preprocessing seconds being amortized (from the shared output).
    pub preprocess_seconds: f64,
}

impl SweepReport {
    /// The best result by validation accuracy.
    pub fn best(&self) -> Option<&SweepResult> {
        self.results.iter().max_by(|a, b| {
            a.val_acc
                .partial_cmp(&b.val_acc)
                .expect("accuracies are finite")
        })
    }

    /// Preprocessing cost as a fraction of the *total* sweep compute — the
    /// amortized Table 7 quantity (shrinks as the grid grows).
    pub fn amortized_preprocess_fraction(&self) -> f64 {
        let train: f64 = self.results.iter().map(|r| r.train_seconds).sum();
        if train + self.preprocess_seconds == 0.0 {
            return 0.0;
        }
        self.preprocess_seconds / (train + self.preprocess_seconds)
    }
}

/// Runs every `(config, model)` pair against the shared preprocessed
/// features. The model factory is invoked once per grid point so each run
/// starts from a fresh initialization.
///
/// # Errors
///
/// Propagates the first training failure (empty train set).
pub fn run_sweep(
    prep: &PrepropOutput,
    configs: &[TrainConfig],
    mut make_model: impl FnMut(&TrainConfig) -> Box<dyn PpModel>,
) -> Result<SweepReport, TrainError> {
    let mut results = Vec::with_capacity(configs.len());
    for config in configs {
        let mut model = make_model(config);
        let start = std::time::Instant::now();
        let mut trainer = Trainer::new(*config);
        let report = trainer.fit(model.as_mut(), prep)?;
        results.push(SweepResult {
            config: *config,
            val_acc: report.best_val_acc,
            test_acc: report.test_acc,
            train_seconds: start.elapsed().as_secs_f64(),
        });
    }
    Ok(SweepReport {
        results,
        preprocess_seconds: prep.preprocess_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::Preprocessor;
    use crate::trainer::LoaderKind;
    use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
    use ppgnn_graph::Operator;
    use ppgnn_models::Sgc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid() -> Vec<TrainConfig> {
        [1e-2f32, 3e-3]
            .iter()
            .map(|&lr| TrainConfig {
                epochs: 4,
                batch_size: 64,
                lr,
                loader: LoaderKind::Fused,
                ..TrainConfig::default()
            })
            .collect()
    }

    #[test]
    fn sweep_trains_every_grid_point_and_finds_a_best() {
        let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 8).unwrap();
        let prep = Preprocessor::new(vec![Operator::SymNorm], 1).run(&data);
        let report = run_sweep(&prep, &grid(), |_| {
            Box::new(Sgc::new(
                1,
                data.profile.feature_dim,
                2,
                &mut StdRng::seed_from_u64(0),
            ))
        })
        .unwrap();
        assert_eq!(report.results.len(), 2);
        let best = report.best().expect("non-empty sweep");
        assert!(best.val_acc >= report.results[0].val_acc.min(report.results[1].val_acc));
        assert!(report.results.iter().all(|r| r.train_seconds > 0.0));
    }

    #[test]
    fn amortized_fraction_shrinks_with_grid_size() {
        let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 9).unwrap();
        let prep = Preprocessor::new(vec![Operator::SymNorm], 1).run(&data);
        let make = |_: &TrainConfig| -> Box<dyn PpModel> {
            Box::new(Sgc::new(
                1,
                data.profile.feature_dim,
                2,
                &mut StdRng::seed_from_u64(0),
            ))
        };
        let small = run_sweep(&prep, &grid()[..1], make).unwrap();
        let big_grid: Vec<TrainConfig> = grid().into_iter().cycle().take(6).collect();
        let make2 = |_: &TrainConfig| -> Box<dyn PpModel> {
            Box::new(Sgc::new(
                1,
                data.profile.feature_dim,
                2,
                &mut StdRng::seed_from_u64(0),
            ))
        };
        let big = run_sweep(&prep, &big_grid, make2).unwrap();
        assert!(
            big.amortized_preprocess_fraction() < small.amortized_preprocess_fraction() + 1e-9,
            "amortization should improve with more runs"
        );
    }

    #[test]
    fn empty_grid_is_fine() {
        let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.015), 10).unwrap();
        let prep = Preprocessor::new(vec![Operator::SymNorm], 1).run(&data);
        let report = run_sweep(&prep, &[], |_| unreachable!("no grid points")).unwrap();
        assert!(report.results.is_empty());
        assert!(report.best().is_none());
    }
}
