use ppgnn_dataio::{AccessPath, DataIoError, FeatureStore};
use ppgnn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::loader::{permutation, Loader, LoaderCounters, PpBatch};

/// Generation 3s: chunk-reshuffled loading **directly from storage**
/// (Section 4.3).
///
/// Reads whole chunks from the on-disk [`FeatureStore`] in a shuffled chunk
/// order — each chunk is one sequential request per hop file, the access
/// pattern that keeps SSD throughput near its sequential ceiling. The
/// [`AccessPath`] selects the GPUDirect analog ([`AccessPath::Direct`]) or
/// the conventional host bounce buffer.
///
/// The loader carries rows across batch boundaries so `batch_size` need not
/// divide `chunk_size` (a pending queue holds the tail of the last chunk).
#[derive(Debug)]
pub struct StorageChunkLoader {
    store: FeatureStore,
    labels: Vec<u32>,
    batch_size: usize,
    path: AccessPath,
    rng: StdRng,
    chunk_order: Vec<usize>,
    next_chunk: usize,
    /// Rows read but not yet emitted: parallel per-hop buffers + indices.
    pending_hops: Vec<Matrix>,
    pending_indices: Vec<usize>,
    counters: LoaderCounters,
}

impl StorageChunkLoader {
    /// Creates a storage-backed loader over `store`.
    ///
    /// `labels[i]` must be the label of store row `i` (training order).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `labels.len()` disagrees with the
    /// store's row count.
    pub fn new(
        store: FeatureStore,
        labels: Vec<u32>,
        batch_size: usize,
        path: AccessPath,
        seed: u64,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert_eq!(
            labels.len(),
            store.meta().rows,
            "one label per stored row required"
        );
        let num_hops = store.meta().num_hops;
        let cols = store.meta().cols;
        StorageChunkLoader {
            store,
            labels,
            batch_size,
            path,
            rng: StdRng::seed_from_u64(seed),
            chunk_order: Vec::new(),
            next_chunk: 0,
            pending_hops: vec![Matrix::zeros(0, cols); num_hops],
            pending_indices: Vec::new(),
            counters: LoaderCounters::default(),
        }
    }

    /// I/O counters of the underlying store (sequential vs random reads).
    pub fn io_counters(&self) -> ppgnn_dataio::IoCounters {
        self.store.counters()
    }

    fn refill(&mut self) -> Result<bool, DataIoError> {
        if self.next_chunk >= self.chunk_order.len() {
            return Ok(false);
        }
        let chunk_id = self.chunk_order[self.next_chunk];
        self.next_chunk += 1;
        let chunk_size = self.store.meta().chunk_size;
        let start_row = chunk_id * chunk_size;
        let mats = self.store.read_chunk_all_hops(chunk_id, self.path)?;
        let rows = mats[0].rows();
        for (pending, fresh) in self.pending_hops.iter_mut().zip(&mats) {
            *pending = if pending.rows() == 0 {
                fresh.clone()
            } else {
                Matrix::vstack(&[pending, fresh])
            };
        }
        self.pending_indices.extend(start_row..start_row + rows);
        self.counters.gather_ops += mats.len() as u64;
        self.counters.bytes_assembled += mats.iter().map(|m| m.size_bytes() as u64).sum::<u64>();
        Ok(true)
    }
}

impl Loader for StorageChunkLoader {
    fn start_epoch(&mut self) {
        let num_chunks = self.store.meta().num_chunks();
        self.chunk_order = permutation(num_chunks, &mut self.rng);
        self.next_chunk = 0;
        self.pending_indices.clear();
        let cols = self.store.meta().cols;
        for p in &mut self.pending_hops {
            *p = Matrix::zeros(0, cols);
        }
    }

    fn next_batch(&mut self) -> Option<PpBatch> {
        while self.pending_indices.len() < self.batch_size {
            match self.refill() {
                Ok(true) => continue,
                Ok(false) => break,
                Err(e) => panic!("storage loader read failure: {e}"),
            }
        }
        if self.pending_indices.is_empty() {
            return None;
        }
        let take = self.batch_size.min(self.pending_indices.len());
        let indices: Vec<usize> = self.pending_indices.drain(..take).collect();
        let mut hops = Vec::with_capacity(self.pending_hops.len());
        for pending in &mut self.pending_hops {
            let emitted = pending.slice_rows(0, take);
            *pending = pending.slice_rows(take, pending.rows());
            hops.push(emitted);
        }
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        self.counters.batches += 1;
        Some(PpBatch {
            indices,
            hops,
            labels,
        })
    }

    fn num_batches(&self) -> usize {
        self.store.meta().rows.div_ceil(self.batch_size)
    }

    fn counters(&self) -> LoaderCounters {
        self.counters
    }

    fn name(&self) -> &'static str {
        "storage-chunk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_dataio::{FeatureStoreWriter, StoreMeta};
    use std::path::PathBuf;

    fn build_store(tag: &str, rows: usize, hops: usize, chunk: usize) -> (FeatureStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!("ppgnn-sl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = StoreMeta {
            dataset: "t".into(),
            num_hops: hops + 1,
            rows,
            cols: 3,
            chunk_size: chunk,
        };
        let mut w = FeatureStoreWriter::create(&dir, meta).unwrap();
        for k in 0..=hops {
            let m = Matrix::from_fn(rows, 3, move |r, c| (k * 1_000_000 + r * 1_000 + c) as f32);
            w.write_hop(k, &m).unwrap();
        }
        (w.finish().unwrap(), dir)
    }

    #[test]
    fn covers_every_row_once_with_correct_contents() {
        let (store, dir) = build_store("cover", 25, 1, 4);
        let labels: Vec<u32> = (0..25).map(|r| (r % 3) as u32).collect();
        let mut l = StorageChunkLoader::new(store, labels, 7, AccessPath::Direct, 0);
        l.start_epoch();
        let mut seen = Vec::new();
        while let Some(b) = l.next_batch() {
            for (r, &idx) in b.indices.iter().enumerate() {
                assert_eq!(b.hops[0].row(r)[0], (idx * 1000) as f32);
                assert_eq!(b.hops[1].row(r)[0], (1_000_000 + idx * 1000) as f32);
                assert_eq!(b.labels[r], (idx % 3) as u32);
            }
            seen.extend(b.indices);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..25).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reads_are_sequential_chunks_not_random_rows() {
        let (store, dir) = build_store("seq", 32, 2, 8);
        let labels = vec![0u32; 32];
        let mut l = StorageChunkLoader::new(store, labels, 8, AccessPath::Direct, 1);
        l.start_epoch();
        while l.next_batch().is_some() {}
        let io = l.io_counters();
        assert_eq!(io.rand_requests, 0);
        assert_eq!(io.seq_requests, 4 * 3); // chunks × hop files
        assert_eq!(io.seq_bytes, (32 * 3 * 4 * 3) as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounce_path_counts_extra_copies() {
        let (store, dir) = build_store("bounce", 16, 0, 4);
        let labels = vec![0u32; 16];
        let mut l = StorageChunkLoader::new(store, labels, 4, AccessPath::HostBounce, 2);
        l.start_epoch();
        while l.next_batch().is_some() {}
        let io = l.io_counters();
        assert_eq!(io.bounce_bytes, io.seq_bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_size_not_dividing_chunk_size_carries_rows_over() {
        let (store, dir) = build_store("carry", 20, 0, 6);
        let labels = vec![0u32; 20];
        let mut l = StorageChunkLoader::new(store, labels, 7, AccessPath::Direct, 3);
        l.start_epoch();
        let sizes: Vec<usize> = std::iter::from_fn(|| l.next_batch().map(|b| b.len())).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 20);
        assert_eq!(sizes, vec![7, 7, 6]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epochs_reshuffle_chunk_order() {
        let (store, dir) = build_store("shuffle", 64, 0, 4);
        let labels = vec![0u32; 64];
        let mut l = StorageChunkLoader::new(store, labels, 64, AccessPath::Direct, 4);
        l.start_epoch();
        let e1 = l.next_batch().unwrap().indices;
        l.start_epoch();
        let e2 = l.next_batch().unwrap().indices;
        assert_ne!(e1, e2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
