use ppgnn_dataio::{AccessPath, DataIoError, FeatureStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::loader::{
    permutation, BatchSource, ChunkBatcher, Loader, LoaderCounters, PendingChunk, PpBatch,
};

/// Generation 3s: chunk-reshuffled loading **directly from storage**
/// (Section 4.3).
///
/// Reads whole chunks from the on-disk [`FeatureStore`] in a shuffled chunk
/// order — each chunk is one sequential request per hop file, the access
/// pattern that keeps SSD throughput near its sequential ceiling. The
/// [`AccessPath`] selects the GPUDirect analog ([`AccessPath::Direct`]) or
/// the conventional host bounce buffer.
///
/// The loader carries rows across batch boundaries so `batch_size` need not
/// divide `chunk_size`: read chunks sit untouched in the shared
/// [`ChunkBatcher`] deque and a row cursor walks the front chunk, so
/// assembling a batch copies exactly `batch_size` rows — never the whole
/// pending buffer. (The previous implementation `vstack`ed every refill and
/// re-sliced the remainder every batch: O(pending²) traffic when
/// `chunk_size ≫ batch_size`.)
///
/// I/O failures mid-epoch are surfaced through
/// [`StorageChunkLoader::try_next_batch`]; the infallible [`Loader`] API
/// ends the epoch and parks the error for [`Loader::take_error`], which the
/// trainer checks after draining — a truncated store file fails the epoch
/// cleanly instead of aborting the process.
#[derive(Debug)]
pub struct StorageChunkLoader {
    store: FeatureStore,
    labels: Vec<u32>,
    batch_size: usize,
    path: AccessPath,
    rng: StdRng,
    chunk_order: Vec<usize>,
    next_chunk: usize,
    /// Chunks read but not fully emitted, in emit order.
    batcher: ChunkBatcher,
    /// First I/O error of the epoch, parked for [`Loader::take_error`].
    error: Option<DataIoError>,
    /// Latched on the first I/O failure and cleared only by
    /// [`Loader::start_epoch`]: a failed epoch must not resume past the
    /// failed chunk and silently drop its rows.
    failed: bool,
    counters: LoaderCounters,
}

impl StorageChunkLoader {
    /// Creates a storage-backed loader over `store`.
    ///
    /// `labels[i]` must be the label of store row `i` (training order).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `labels.len()` disagrees with the
    /// store's row count.
    pub fn new(
        store: FeatureStore,
        labels: Vec<u32>,
        batch_size: usize,
        path: AccessPath,
        seed: u64,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert_eq!(
            labels.len(),
            store.meta().rows,
            "one label per stored row required"
        );
        StorageChunkLoader {
            store,
            labels,
            batch_size,
            path,
            rng: StdRng::seed_from_u64(seed),
            chunk_order: Vec::new(),
            next_chunk: 0,
            batcher: ChunkBatcher::default(),
            error: None,
            failed: false,
            counters: LoaderCounters::default(),
        }
    }

    /// I/O counters of the underlying store (sequential vs random reads).
    pub fn io_counters(&self) -> ppgnn_dataio::IoCounters {
        self.store.counters()
    }

    fn refill(&mut self) -> Result<bool, DataIoError> {
        if self.next_chunk >= self.chunk_order.len() {
            return Ok(false);
        }
        let chunk_id = self.chunk_order[self.next_chunk];
        self.next_chunk += 1;
        let start_row = chunk_id * self.store.meta().chunk_size;
        let hops = self.store.read_chunk_all_hops(chunk_id, self.path)?;
        self.counters.gather_ops += hops.len() as u64;
        self.counters.bytes_assembled += hops.iter().map(|m| m.size_bytes() as u64).sum::<u64>();
        let rows = (start_row..start_row + hops[0].rows()).collect();
        self.batcher.push(PendingChunk { rows, hops });
        Ok(true)
    }

    /// Fallible batch path: `Ok(None)` ends the epoch, `Err` surfaces the
    /// first storage failure. The failure is latched: every further call
    /// keeps returning `Err` until [`Loader::start_epoch`], so a retrying
    /// caller cannot resume past the failed chunk and silently train on an
    /// epoch with missing rows.
    ///
    /// # Errors
    ///
    /// Propagates [`DataIoError`] from chunk reads — e.g. a store file
    /// truncated after the epoch started.
    pub fn try_next_batch(&mut self) -> Result<Option<PpBatch>, DataIoError> {
        if self.failed {
            return Err(self.error.clone().unwrap_or_else(|| {
                DataIoError::Io("epoch already failed; start_epoch required".into())
            }));
        }
        while self.batcher.pending_rows() < self.batch_size {
            match self.refill() {
                Ok(true) => continue,
                Ok(false) => break,
                Err(e) => {
                    self.failed = true;
                    self.error = Some(e.clone());
                    return Err(e);
                }
            }
        }
        if self.batcher.pending_rows() == 0 {
            return Ok(None);
        }
        let take = self.batch_size.min(self.batcher.pending_rows());
        let (hops, indices) =
            self.batcher
                .assemble(take, self.store.meta().num_hops, self.store.meta().cols);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        self.counters.batches += 1;
        Ok(Some(PpBatch {
            indices,
            hops,
            labels,
        }))
    }
}

impl Loader for StorageChunkLoader {
    fn start_epoch(&mut self) {
        let num_chunks = self.store.meta().num_chunks();
        self.chunk_order = permutation(num_chunks, &mut self.rng);
        self.next_chunk = 0;
        self.batcher.reset();
        self.error = None;
        self.failed = false;
    }

    fn next_batch(&mut self) -> Option<PpBatch> {
        if self.failed {
            return None;
        }
        // An Err is latched by try_next_batch and parked for take_error.
        self.try_next_batch().unwrap_or_default()
    }

    fn num_batches(&self) -> usize {
        self.store.meta().rows.div_ceil(self.batch_size)
    }

    fn counters(&self) -> LoaderCounters {
        self.counters
    }

    fn take_error(&mut self) -> Option<String> {
        self.error.take().map(|e| e.to_string())
    }

    fn name(&self) -> &'static str {
        "storage-chunk"
    }
}

impl BatchSource for StorageChunkLoader {
    fn begin_epoch(&mut self) {
        Loader::start_epoch(self)
    }

    fn try_next(&mut self) -> Result<Option<PpBatch>, DataIoError> {
        StorageChunkLoader::try_next_batch(self)
    }

    fn batches_per_epoch(&self) -> usize {
        Loader::num_batches(self)
    }

    fn source_counters(&self) -> LoaderCounters {
        Loader::counters(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_dataio::{FeatureStoreWriter, StoreMeta};
    use ppgnn_tensor::Matrix;
    use std::path::PathBuf;

    fn build_store(tag: &str, rows: usize, hops: usize, chunk: usize) -> (FeatureStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!("ppgnn-sl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = StoreMeta {
            dataset: "t".into(),
            num_hops: hops + 1,
            rows,
            cols: 3,
            chunk_size: chunk,
            dtype: ppgnn_tensor::StoreDtype::F32,
        };
        let mut w = FeatureStoreWriter::create(&dir, meta).unwrap();
        for k in 0..=hops {
            let m = Matrix::from_fn(rows, 3, move |r, c| (k * 1_000_000 + r * 1_000 + c) as f32);
            w.write_hop(k, &m).unwrap();
        }
        (w.finish().unwrap(), dir)
    }

    #[test]
    fn covers_every_row_once_with_correct_contents() {
        let (store, dir) = build_store("cover", 25, 1, 4);
        let labels: Vec<u32> = (0..25).map(|r| (r % 3) as u32).collect();
        let mut l = StorageChunkLoader::new(store, labels, 7, AccessPath::Direct, 0);
        l.start_epoch();
        let mut seen = Vec::new();
        while let Some(b) = l.next_batch() {
            for (r, &idx) in b.indices.iter().enumerate() {
                assert_eq!(b.hops[0].row(r)[0], (idx * 1000) as f32);
                assert_eq!(b.hops[1].row(r)[0], (1_000_000 + idx * 1000) as f32);
                assert_eq!(b.labels[r], (idx % 3) as u32);
            }
            seen.extend(b.indices);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..25).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reads_are_sequential_chunks_not_random_rows() {
        let (store, dir) = build_store("seq", 32, 2, 8);
        let labels = vec![0u32; 32];
        let mut l = StorageChunkLoader::new(store, labels, 8, AccessPath::Direct, 1);
        l.start_epoch();
        while l.next_batch().is_some() {}
        let io = l.io_counters();
        assert_eq!(io.rand_requests, 0);
        assert_eq!(io.seq_requests, 4 * 3); // chunks × hop files
        assert_eq!(io.seq_bytes, (32 * 3 * 4 * 3) as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounce_path_counts_extra_copies() {
        let (store, dir) = build_store("bounce", 16, 0, 4);
        let labels = vec![0u32; 16];
        let mut l = StorageChunkLoader::new(store, labels, 4, AccessPath::HostBounce, 2);
        l.start_epoch();
        while l.next_batch().is_some() {}
        let io = l.io_counters();
        assert_eq!(io.bounce_bytes, io.seq_bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_size_not_dividing_chunk_size_carries_rows_over() {
        let (store, dir) = build_store("carry", 20, 0, 6);
        let labels = vec![0u32; 20];
        let mut l = StorageChunkLoader::new(store, labels, 7, AccessPath::Direct, 3);
        l.start_epoch();
        let sizes: Vec<usize> = std::iter::from_fn(|| l.next_batch().map(|b| b.len())).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 20);
        assert_eq!(sizes, vec![7, 7, 6]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunk_size_not_dividing_rows_emits_short_last_chunk_rows() {
        // 23 rows / chunk 5 → chunks of 5,5,5,5,3; batch 4 crosses every
        // chunk boundary including the short tail.
        let (store, dir) = build_store("shortlast", 23, 1, 5);
        let labels: Vec<u32> = (0..23).map(|r| (r % 4) as u32).collect();
        let mut l = StorageChunkLoader::new(store, labels, 4, AccessPath::Direct, 9);
        l.start_epoch();
        let mut seen = Vec::new();
        let mut sizes = Vec::new();
        while let Some(b) = l.next_batch() {
            for (r, &idx) in b.indices.iter().enumerate() {
                assert_eq!(b.hops[1].row(r)[2], (1_000_000 + idx * 1000 + 2) as f32);
            }
            sizes.push(b.len());
            seen.extend(b.indices);
        }
        assert_eq!(sizes, vec![4, 4, 4, 4, 4, 3]);
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn large_chunk_small_batch_copies_only_batch_rows() {
        // chunk_size ≫ batch_size: the O(pending²) regression scenario.
        // Counter semantics: bytes_assembled counts chunk reads, so it must
        // equal the store payload exactly once — no re-stacking traffic.
        let (store, dir) = build_store("bigchunk", 64, 1, 64);
        let labels = vec![0u32; 64];
        let mut l = StorageChunkLoader::new(store, labels, 3, AccessPath::Direct, 5);
        l.start_epoch();
        let mut total_rows = 0;
        while let Some(b) = l.next_batch() {
            total_rows += b.len();
        }
        assert_eq!(total_rows, 64);
        assert_eq!(l.counters().bytes_assembled, (64 * 3 * 4 * 2) as u64);
        assert_eq!(l.counters().gather_ops, 2); // one read per hop file
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epochs_reshuffle_chunk_order() {
        let (store, dir) = build_store("shuffle", 64, 0, 4);
        let labels = vec![0u32; 64];
        let mut l = StorageChunkLoader::new(store, labels, 64, AccessPath::Direct, 4);
        l.start_epoch();
        let e1 = l.next_batch().unwrap().indices;
        l.start_epoch();
        let e2 = l.next_batch().unwrap().indices;
        assert_ne!(e1, e2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_store_fails_the_epoch_cleanly() {
        let (store, dir) = build_store("trunc", 32, 1, 4);
        let labels = vec![0u32; 32];
        let mut l = StorageChunkLoader::new(store, labels, 4, AccessPath::Direct, 6);
        l.start_epoch();
        let first = l.next_batch();
        assert!(first.is_some());
        // Truncate hop 1 mid-epoch: some future chunk read must fail.
        let path = dir.join("hop_1.ppgt");
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        // The infallible path ends the epoch instead of panicking...
        let mut emitted = 1;
        while l.next_batch().is_some() {
            emitted += 1;
        }
        assert!(emitted < l.num_batches(), "epoch should end early");
        // ...and parks the error for the trainer to check.
        let err = l.take_error().expect("error must be surfaced");
        assert!(!err.is_empty());
        assert!(l.take_error().is_none(), "take_error drains the slot");
        // The fallible path reports it directly on a fresh epoch.
        l.start_epoch();
        let mut result = l.try_next_batch();
        while let Ok(Some(_)) = result {
            result = l.try_next_batch();
        }
        assert!(result.is_err(), "truncated read must surface an error");
        // The failure is latched: a retry must NOT resume past the failed
        // chunk (that would silently drop its rows), and the infallible
        // path must stay ended.
        assert!(l.try_next_batch().is_err(), "failed epoch must stay failed");
        assert!(l.next_batch().is_none());
        // start_epoch clears the latch (and would re-fail on the same
        // truncated store, but from a clean slate).
        l.start_epoch();
        assert!(l.take_error().is_none(), "start_epoch resets the error");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
