use ppgnn_dataio::{AccessPath, DataIoError, ShardedFeatureStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::loader::{
    permutation, BatchSource, ChunkBatcher, Loader, LoaderCounters, PendingChunk, PpBatch,
};

/// Generation 3p: chunk-reshuffled loading from a **sharded** feature
/// store — the serving side of partition-parallel preprocessing.
///
/// The work list is every `(partition, chunk)` pair across the partition
/// stores, shuffled each epoch; each unit of work is one sequential
/// [`ShardedFeatureStore::read_chunk_all_hops`] against a single partition
/// store, so training-time I/O fans out over the per-partition files
/// instead of serializing on one. Batch `indices` are **global** training
/// rows (resolved through the store's row mapping), so the batch stream is
/// drop-in for the trainer: same labels, same feature bytes per row as the
/// single-store [`crate::loader::StorageChunkLoader`] — and with a single
/// partition, exactly the same stream for equal seeds.
///
/// Error handling follows the storage loader's contract: the first I/O
/// failure latches the epoch, [`ShardedStorageChunkLoader::try_next_batch`]
/// reports it, the infallible [`Loader`] API ends the epoch, and
/// [`Loader::take_error`] hands the message to the trainer.
#[derive(Debug)]
pub struct ShardedStorageChunkLoader {
    store: ShardedFeatureStore,
    labels: Vec<u32>,
    batch_size: usize,
    path: AccessPath,
    rng: StdRng,
    /// Shuffled `(partition, chunk)` work list for the current epoch.
    chunk_order: Vec<(usize, usize)>,
    next_chunk: usize,
    /// Chunks read but not fully emitted, in emit order.
    batcher: ChunkBatcher,
    error: Option<DataIoError>,
    failed: bool,
    counters: LoaderCounters,
}

impl ShardedStorageChunkLoader {
    /// Creates a sharded storage loader over `store`.
    ///
    /// `labels[i]` must be the label of **global** training row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `labels.len()` disagrees with the
    /// store's total row count.
    pub fn new(
        store: ShardedFeatureStore,
        labels: Vec<u32>,
        batch_size: usize,
        path: AccessPath,
        seed: u64,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert_eq!(
            labels.len(),
            store.meta().rows,
            "one label per stored (global) row required"
        );
        ShardedStorageChunkLoader {
            store,
            labels,
            batch_size,
            path,
            rng: StdRng::seed_from_u64(seed),
            chunk_order: Vec::new(),
            next_chunk: 0,
            batcher: ChunkBatcher::default(),
            error: None,
            failed: false,
            counters: LoaderCounters::default(),
        }
    }

    /// Aggregated I/O counters across all partition stores.
    pub fn io_counters(&self) -> ppgnn_dataio::IoCounters {
        self.store.counters()
    }

    /// Number of partition stores the loader fans reads across.
    pub fn num_partitions(&self) -> usize {
        self.store.num_partitions()
    }

    fn refill(&mut self) -> Result<bool, DataIoError> {
        if self.next_chunk >= self.chunk_order.len() {
            return Ok(false);
        }
        let (p, chunk_id) = self.chunk_order[self.next_chunk];
        self.next_chunk += 1;
        let rows = self.store.chunk_global_rows(p, chunk_id).to_vec();
        let hops = self.store.read_chunk_all_hops(p, chunk_id, self.path)?;
        self.counters.gather_ops += hops.len() as u64;
        self.counters.bytes_assembled += hops.iter().map(|m| m.size_bytes() as u64).sum::<u64>();
        self.batcher.push(PendingChunk { rows, hops });
        Ok(true)
    }

    /// Fallible batch path: `Ok(None)` ends the epoch, `Err` surfaces (and
    /// latches) the first storage failure until [`Loader::start_epoch`].
    ///
    /// # Errors
    ///
    /// Propagates [`DataIoError`] from partition-store chunk reads.
    pub fn try_next_batch(&mut self) -> Result<Option<PpBatch>, DataIoError> {
        if self.failed {
            return Err(self.error.clone().unwrap_or_else(|| {
                DataIoError::Io("epoch already failed; start_epoch required".into())
            }));
        }
        while self.batcher.pending_rows() < self.batch_size {
            match self.refill() {
                Ok(true) => continue,
                Ok(false) => break,
                Err(e) => {
                    self.failed = true;
                    self.error = Some(e.clone());
                    return Err(e);
                }
            }
        }
        if self.batcher.pending_rows() == 0 {
            return Ok(None);
        }
        let take = self.batch_size.min(self.batcher.pending_rows());
        let (hops, indices) =
            self.batcher
                .assemble(take, self.store.meta().num_hops, self.store.meta().cols);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        self.counters.batches += 1;
        Ok(Some(PpBatch {
            indices,
            hops,
            labels,
        }))
    }
}

impl Loader for ShardedStorageChunkLoader {
    fn start_epoch(&mut self) {
        // (partition, chunk) pairs in canonical order, then one shared
        // Fisher–Yates shuffle — with a single partition this reduces to
        // exactly the StorageChunkLoader chunk order for equal seeds.
        let pairs: Vec<(usize, usize)> = (0..self.store.num_partitions())
            .flat_map(|p| (0..self.store.num_chunks(p)).map(move |c| (p, c)))
            .collect();
        self.chunk_order = permutation(pairs.len(), &mut self.rng)
            .into_iter()
            .map(|i| pairs[i])
            .collect();
        self.next_chunk = 0;
        self.batcher.reset();
        self.error = None;
        self.failed = false;
    }

    fn next_batch(&mut self) -> Option<PpBatch> {
        if self.failed {
            return None;
        }
        self.try_next_batch().unwrap_or_default()
    }

    fn num_batches(&self) -> usize {
        self.store.meta().rows.div_ceil(self.batch_size)
    }

    fn counters(&self) -> LoaderCounters {
        self.counters
    }

    fn take_error(&mut self) -> Option<String> {
        self.error.take().map(|e| e.to_string())
    }

    fn name(&self) -> &'static str {
        "sharded-storage-chunk"
    }
}

impl BatchSource for ShardedStorageChunkLoader {
    fn begin_epoch(&mut self) {
        Loader::start_epoch(self)
    }

    fn try_next(&mut self) -> Result<Option<PpBatch>, DataIoError> {
        ShardedStorageChunkLoader::try_next_batch(self)
    }

    fn batches_per_epoch(&self) -> usize {
        Loader::num_batches(self)
    }

    fn source_counters(&self) -> LoaderCounters {
        Loader::counters(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_dataio::{ShardedStoreWriter, StoreMeta};
    use ppgnn_tensor::Matrix;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppgnn-shl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Builds a sharded store whose logical rows follow the deterministic
    /// `r * 1000 + hop * 1_000_000 + c` pattern, rows dealt round-robin.
    fn build(
        tag: &str,
        rows: usize,
        hops: usize,
        chunk: usize,
        parts: usize,
    ) -> (ShardedFeatureStore, PathBuf) {
        let dir = temp_dir(tag);
        let meta = StoreMeta {
            dataset: "t".into(),
            num_hops: hops + 1,
            rows,
            cols: 3,
            chunk_size: chunk,
            dtype: ppgnn_tensor::StoreDtype::F32,
        };
        let mut assignment = vec![Vec::new(); parts];
        for r in 0..rows {
            assignment[r % parts].push(r);
        }
        let mut w = ShardedStoreWriter::create(&dir, meta, &assignment, 2).unwrap();
        for k in 0..=hops {
            let hop = Matrix::from_fn(rows, 3, move |r, c| (k * 1_000_000 + r * 1_000 + c) as f32);
            for (p, globals) in assignment.iter().enumerate() {
                w.submit(p, k, hop.gather_rows(globals)).unwrap();
            }
        }
        (w.finish().unwrap(), dir)
    }

    #[test]
    fn covers_every_global_row_once_with_correct_contents() {
        let (store, dir) = build("cover", 25, 1, 4, 3);
        let labels: Vec<u32> = (0..25).map(|r| (r % 3) as u32).collect();
        let mut l = ShardedStorageChunkLoader::new(store, labels, 7, AccessPath::Direct, 0);
        l.start_epoch();
        let mut seen = Vec::new();
        while let Some(b) = l.next_batch() {
            for (r, &idx) in b.indices.iter().enumerate() {
                assert_eq!(b.hops[0].row(r)[0], (idx * 1000) as f32);
                assert_eq!(b.hops[1].row(r)[2], (1_000_000 + idx * 1000 + 2) as f32);
                assert_eq!(b.labels[r], (idx % 3) as u32);
            }
            seen.extend(b.indices);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..25).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reads_fan_out_across_partitions_sequentially() {
        let (store, dir) = build("fanout", 32, 1, 4, 2);
        let labels = vec![0u32; 32];
        let mut l = ShardedStorageChunkLoader::new(store, labels, 8, AccessPath::Direct, 1);
        assert_eq!(l.num_partitions(), 2);
        l.start_epoch();
        while l.next_batch().is_some() {}
        let io = l.io_counters();
        assert_eq!(io.rand_requests, 0);
        // 4 chunks per partition × 2 partitions × 2 hop files.
        assert_eq!(io.seq_requests, 16);
        assert_eq!(io.seq_bytes, (32 * 3 * 4 * 2) as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_partition_store_fails_the_epoch_cleanly() {
        let (store, dir) = build("trunc", 24, 1, 4, 2);
        let labels = vec![0u32; 24];
        let mut l = ShardedStorageChunkLoader::new(store, labels, 4, AccessPath::Direct, 6);
        l.start_epoch();
        assert!(l.next_batch().is_some());
        let path = dir.join("part_1").join("hop_1.ppgt");
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let mut emitted = 1;
        while l.next_batch().is_some() {
            emitted += 1;
        }
        assert!(emitted < l.num_batches(), "epoch should end early");
        assert!(
            l.take_error().is_some(),
            "error must surface to the trainer"
        );
        // Latched until the next start_epoch.
        assert!(l.try_next_batch().is_err());
        l.start_epoch();
        assert!(l.take_error().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epochs_reshuffle_the_partition_chunk_order() {
        let (store, dir) = build("shuffle", 64, 0, 4, 2);
        let labels = vec![0u32; 64];
        let mut l = ShardedStorageChunkLoader::new(store, labels, 64, AccessPath::Direct, 4);
        l.start_epoch();
        let e1 = l.next_batch().unwrap().indices;
        l.start_epoch();
        let e2 = l.next_batch().unwrap().indices;
        assert_ne!(e1, e2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
