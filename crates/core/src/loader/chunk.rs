use std::sync::Arc;

use ppgnn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::loader::{chunk_permutation, Loader, LoaderCounters, PpBatch};
use crate::preprocess::PrepropFeatures;

/// Generation 3: chunk reshuffling — SGD-CR (Section 4.2).
///
/// Shuffles **chunk ids** instead of row ids at epoch start, so every
/// assembled batch is a concatenation of contiguous row ranges. On real
/// hardware each range is one bulk DMA transfer and the final assembly
/// happens GPU-side at HBM bandwidth; here each range is one contiguous
/// memcpy, and the counters record chunk-granular operations (compare
/// `gather_ops` against the fused loader to see the per-batch request
/// reduction).
///
/// With `chunk_size == 1`, SGD-CR is exactly SGD-RR and the batch stream
/// matches the other loaders for an equal seed.
#[derive(Debug)]
pub struct ChunkReshuffleLoader {
    data: Arc<PrepropFeatures>,
    batch_size: usize,
    chunk_size: usize,
    rng: StdRng,
    order: Vec<usize>,
    cursor: usize,
    counters: LoaderCounters,
}

impl ChunkReshuffleLoader {
    /// Creates a chunk-reshuffling loader.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`, `chunk_size == 0`, or `data` is empty.
    pub fn new(
        data: Arc<PrepropFeatures>,
        batch_size: usize,
        chunk_size: usize,
        seed: u64,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(chunk_size > 0, "chunk size must be positive");
        assert!(!data.is_empty(), "cannot iterate an empty partition");
        ChunkReshuffleLoader {
            data,
            batch_size,
            chunk_size,
            rng: StdRng::seed_from_u64(seed),
            order: Vec::new(),
            cursor: 0,
            counters: LoaderCounters::default(),
        }
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }
}

impl Loader for ChunkReshuffleLoader {
    fn start_epoch(&mut self) {
        self.order = chunk_permutation(self.data.len(), self.chunk_size, &mut self.rng);
        self.cursor = 0;
    }

    fn next_batch(&mut self) -> Option<PpBatch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let indices = self.order[self.cursor..end].to_vec();
        self.cursor = end;

        let f = self.data.hops[0].cols();
        // Copy contiguous runs (chunk fragments) in bulk — one operation
        // per run per hop, the chunk-transfer pattern.
        let runs = contiguous_runs(&indices);
        let mut hops = Vec::with_capacity(self.data.hops.len());
        for src in &self.data.hops {
            let mut out = Matrix::zeros(indices.len(), f);
            let mut dst_row = 0;
            for &(start, len) in &runs {
                let src_slice = &src.as_slice()[start * f..(start + len) * f];
                out.as_mut_slice()[dst_row * f..(dst_row + len) * f].copy_from_slice(src_slice);
                dst_row += len;
                self.counters.gather_ops += 1;
                self.counters.bytes_assembled += (len * f * 4) as u64;
            }
            hops.push(out);
        }
        let labels = indices.iter().map(|&i| self.data.labels[i]).collect();
        self.counters.batches += 1;
        Some(PpBatch {
            indices,
            hops,
            labels,
        })
    }

    fn num_batches(&self) -> usize {
        self.data.len().div_ceil(self.batch_size)
    }

    fn counters(&self) -> LoaderCounters {
        self.counters
    }

    fn name(&self) -> &'static str {
        "chunk-reshuffle"
    }
}

/// Collapses an index list into `(start, len)` runs of consecutive values.
fn contiguous_runs(indices: &[usize]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut iter = indices.iter().copied();
    let Some(first) = iter.next() else {
        return runs;
    };
    let mut start = first;
    let mut len = 1;
    for idx in iter {
        if idx == start + len {
            len += 1;
        } else {
            runs.push((start, len));
            start = idx;
            len = 1;
        }
    }
    runs.push((start, len));
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::tests_support::tiny_features;
    use crate::loader::FusedGatherLoader;

    #[test]
    fn chunk_size_one_matches_rr_loaders() {
        let data = Arc::new(tiny_features(27, 2, 3));
        let mut rr = FusedGatherLoader::new(data.clone(), 6, 11);
        let mut cr = ChunkReshuffleLoader::new(data, 6, 1, 11);
        rr.start_epoch();
        cr.start_epoch();
        loop {
            match (rr.next_batch(), cr.next_batch()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.indices, y.indices);
                    assert_eq!(x.hops, y.hops);
                    assert_eq!(x.labels, y.labels);
                }
                _ => panic!("loaders disagree on batch count"),
            }
        }
    }

    #[test]
    fn covers_all_rows_with_chunked_order() {
        let data = Arc::new(tiny_features(50, 1, 2));
        let mut l = ChunkReshuffleLoader::new(data, 12, 8, 3);
        l.start_epoch();
        let mut seen = Vec::new();
        while let Some(b) = l.next_batch() {
            seen.extend(b.indices);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn batch_contents_are_correct_rows() {
        let data = Arc::new(tiny_features(30, 2, 2));
        let mut l = ChunkReshuffleLoader::new(data.clone(), 10, 5, 7);
        l.start_epoch();
        while let Some(b) = l.next_batch() {
            for (k, hop) in b.hops.iter().enumerate() {
                for (r, &idx) in b.indices.iter().enumerate() {
                    assert_eq!(hop.row(r), data.hops[k].row(idx), "hop {k} row {r}");
                }
            }
        }
    }

    #[test]
    fn far_fewer_ops_than_fused_when_chunks_are_large() {
        let data = Arc::new(tiny_features(64, 1, 2));
        let mut cr = ChunkReshuffleLoader::new(data.clone(), 16, 16, 5);
        cr.start_epoch();
        while cr.next_batch().is_some() {}
        // batch == chunk → 1 run per hop per batch, same op count as fused;
        // the real difference is each op is a *contiguous* copy.
        assert_eq!(cr.counters().gather_ops, 4 * 2);
        // with tiny chunks, ops grow
        let mut small = ChunkReshuffleLoader::new(data, 16, 2, 5);
        small.start_epoch();
        while small.next_batch().is_some() {}
        assert!(small.counters().gather_ops > cr.counters().gather_ops);
    }

    #[test]
    fn contiguous_runs_detects_runs() {
        assert_eq!(
            contiguous_runs(&[3, 4, 5, 9, 0, 1]),
            vec![(3, 3), (9, 1), (0, 2)]
        );
        assert_eq!(contiguous_runs(&[]), vec![]);
        assert_eq!(contiguous_runs(&[7]), vec![(7, 1)]);
    }
}
