use std::sync::Arc;

use ppgnn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::loader::{permutation, Loader, LoaderCounters, PpBatch};
use crate::preprocess::PrepropFeatures;

/// Generation 1: efficient batch assembly (first half of Section 4.1).
///
/// One fused index-gather **per hop per batch** into a pre-allocated
/// staging buffer (the pinned-tensor analog), instead of one copy per row.
/// The counter difference against [`crate::loader::BaselineLoader`] —
/// `hops + 1` ops per batch versus `batch_size × (hops + 1)` — is exactly
/// the kernel-launch saving the paper measures as a 3.3× speedup.
#[derive(Debug)]
pub struct FusedGatherLoader {
    data: Arc<PrepropFeatures>,
    batch_size: usize,
    rng: StdRng,
    order: Vec<usize>,
    cursor: usize,
    /// Reused staging buffers, one per hop (resized for a partial tail batch).
    staging: Vec<Matrix>,
    counters: LoaderCounters,
}

impl FusedGatherLoader {
    /// Creates a fused-gather loader.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `data` is empty.
    pub fn new(data: Arc<PrepropFeatures>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!data.is_empty(), "cannot iterate an empty partition");
        let f = data.hops[0].cols();
        let staging = data
            .hops
            .iter()
            .map(|_| Matrix::zeros(batch_size, f))
            .collect();
        FusedGatherLoader {
            data,
            batch_size,
            rng: StdRng::seed_from_u64(seed),
            order: Vec::new(),
            cursor: 0,
            staging,
            counters: LoaderCounters::default(),
        }
    }
}

impl Loader for FusedGatherLoader {
    fn start_epoch(&mut self) {
        self.order = permutation(self.data.len(), &mut self.rng);
        self.cursor = 0;
    }

    fn next_batch(&mut self) -> Option<PpBatch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let indices = self.order[self.cursor..end].to_vec();
        self.cursor = end;

        let f = self.data.hops[0].cols();
        let mut hops = Vec::with_capacity(self.data.hops.len());
        for (src, stage) in self.data.hops.iter().zip(self.staging.iter_mut()) {
            if stage.rows() != indices.len() {
                *stage = Matrix::zeros(indices.len(), f);
            }
            src.gather_rows_into(&indices, stage);
            self.counters.gather_ops += 1;
            self.counters.bytes_assembled += (indices.len() * f * 4) as u64;
            hops.push(stage.clone());
        }
        let labels = indices.iter().map(|&i| self.data.labels[i]).collect();
        self.counters.batches += 1;
        Some(PpBatch {
            indices,
            hops,
            labels,
        })
    }

    fn num_batches(&self) -> usize {
        self.data.len().div_ceil(self.batch_size)
    }

    fn counters(&self) -> LoaderCounters {
        self.counters
    }

    fn name(&self) -> &'static str {
        "fused-gather"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::tests_support::tiny_features;
    use crate::loader::BaselineLoader;

    #[test]
    fn identical_stream_to_baseline_for_equal_seed() {
        let data = Arc::new(tiny_features(31, 2, 3));
        let mut a = BaselineLoader::new(data.clone(), 7, 42);
        let mut b = FusedGatherLoader::new(data, 7, 42);
        a.start_epoch();
        b.start_epoch();
        loop {
            match (a.next_batch(), b.next_batch()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.indices, y.indices);
                    assert_eq!(x.labels, y.labels);
                    for (hx, hy) in x.hops.iter().zip(&y.hops) {
                        assert_eq!(hx, hy);
                    }
                }
                _ => panic!("loaders disagree on batch count"),
            }
        }
    }

    #[test]
    fn issues_one_op_per_hop_per_batch() {
        let data = Arc::new(tiny_features(20, 3, 2));
        let mut l = FusedGatherLoader::new(data, 10, 0);
        l.start_epoch();
        while l.next_batch().is_some() {}
        let c = l.counters();
        assert_eq!(c.batches, 2);
        assert_eq!(c.gather_ops, 2 * 4); // batches × (hops+1)
    }

    #[test]
    fn partial_tail_batch_has_correct_rows() {
        let data = Arc::new(tiny_features(11, 1, 2));
        let mut l = FusedGatherLoader::new(data, 4, 1);
        l.start_epoch();
        let sizes: Vec<usize> = std::iter::from_fn(|| l.next_batch().map(|b| b.len())).collect();
        assert_eq!(sizes, vec![4, 4, 3]);
    }
}
