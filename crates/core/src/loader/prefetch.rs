use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver};
use ppgnn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::loader::{permutation, Loader, LoaderCounters, PpBatch};
use crate::preprocess::PrepropFeatures;

/// Generation 2: double-buffer prefetching (second half of Section 4.1).
///
/// A dedicated producer thread assembles batches (fused gathers, like
/// generation 1) and pushes them into a **bounded channel of capacity 2**
/// — the software double buffer. The consumer (training loop) overlaps its
/// compute with the producer's assembly, which is precisely the pipelining
/// Figure 6(c) illustrates; on real hardware the two buffers live in GPU
/// memory and the channel is a pair of CUDA events.
#[derive(Debug)]
pub struct DoubleBufferLoader {
    data: Arc<PrepropFeatures>,
    batch_size: usize,
    rng: StdRng,
    rx: Option<Receiver<PpBatch>>,
    worker: Option<JoinHandle<LoaderCounters>>,
    counters: LoaderCounters,
}

impl DoubleBufferLoader {
    /// Creates a double-buffered loader.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `data` is empty.
    pub fn new(data: Arc<PrepropFeatures>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!data.is_empty(), "cannot iterate an empty partition");
        DoubleBufferLoader {
            data,
            batch_size,
            rng: StdRng::seed_from_u64(seed),
            rx: None,
            worker: None,
            counters: LoaderCounters::default(),
        }
    }

    fn reap_worker(&mut self) {
        if let Some(handle) = self.worker.take() {
            if let Ok(c) = handle.join() {
                self.counters.gather_ops += c.gather_ops;
                self.counters.bytes_assembled += c.bytes_assembled;
                self.counters.batches += c.batches;
            }
        }
    }
}

impl Loader for DoubleBufferLoader {
    fn start_epoch(&mut self) {
        // Drain any unfinished previous epoch first.
        self.rx = None;
        self.reap_worker();

        let order = permutation(self.data.len(), &mut self.rng);
        let data = Arc::clone(&self.data);
        let batch_size = self.batch_size;
        // Capacity 2 = the double buffer: the producer runs at most two
        // batches ahead of the consumer.
        let (tx, rx) = bounded::<PpBatch>(2);
        let handle = std::thread::spawn(move || {
            let mut counters = LoaderCounters::default();
            let f = data.hops[0].cols();
            let mut cursor = 0;
            while cursor < order.len() {
                let end = (cursor + batch_size).min(order.len());
                let indices = order[cursor..end].to_vec();
                cursor = end;
                let mut hops = Vec::with_capacity(data.hops.len());
                for src in &data.hops {
                    let mut stage = Matrix::zeros(indices.len(), f);
                    src.gather_rows_into(&indices, &mut stage);
                    counters.gather_ops += 1;
                    counters.bytes_assembled += (indices.len() * f * 4) as u64;
                    hops.push(stage);
                }
                let labels = indices.iter().map(|&i| data.labels[i]).collect();
                counters.batches += 1;
                if tx
                    .send(PpBatch {
                        indices,
                        hops,
                        labels,
                    })
                    .is_err()
                {
                    break; // consumer dropped the epoch early
                }
            }
            counters
        });
        self.rx = Some(rx);
        self.worker = Some(handle);
    }

    fn next_batch(&mut self) -> Option<PpBatch> {
        let rx = self.rx.as_ref()?;
        match rx.recv() {
            Ok(batch) => Some(batch),
            Err(_) => {
                self.rx = None;
                self.reap_worker();
                None
            }
        }
    }

    fn num_batches(&self) -> usize {
        self.data.len().div_ceil(self.batch_size)
    }

    fn counters(&self) -> LoaderCounters {
        self.counters
    }

    fn name(&self) -> &'static str {
        "double-buffer"
    }
}

impl Drop for DoubleBufferLoader {
    fn drop(&mut self) {
        self.rx = None; // closes the channel, unblocking the producer
        self.reap_worker();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::tests_support::tiny_features;
    use crate::loader::FusedGatherLoader;

    #[test]
    fn identical_stream_to_fused_for_equal_seed() {
        let data = Arc::new(tiny_features(29, 2, 3));
        let mut a = FusedGatherLoader::new(data.clone(), 6, 9);
        let mut b = DoubleBufferLoader::new(data, 6, 9);
        a.start_epoch();
        b.start_epoch();
        loop {
            match (a.next_batch(), b.next_batch()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.indices, y.indices);
                    assert_eq!(x.hops, y.hops);
                    assert_eq!(x.labels, y.labels);
                }
                _ => panic!("loaders disagree on batch count"),
            }
        }
    }

    #[test]
    fn multiple_epochs_work_and_reshuffle() {
        let data = Arc::new(tiny_features(40, 1, 2));
        let mut l = DoubleBufferLoader::new(data, 40, 4);
        l.start_epoch();
        let e1 = l.next_batch().unwrap().indices;
        assert!(l.next_batch().is_none());
        l.start_epoch();
        let e2 = l.next_batch().unwrap().indices;
        assert!(l.next_batch().is_none());
        assert_ne!(e1, e2);
        let c = l.counters();
        assert_eq!(c.batches, 2);
    }

    #[test]
    fn abandoning_an_epoch_does_not_deadlock() {
        let data = Arc::new(tiny_features(100, 1, 2));
        let mut l = DoubleBufferLoader::new(data, 5, 5);
        l.start_epoch();
        let _ = l.next_batch(); // take one of twenty, then abandon
        l.start_epoch(); // must not hang on the old producer
        let mut count = 0;
        while l.next_batch().is_some() {
            count += 1;
        }
        assert_eq!(count, 20);
    }

    #[test]
    fn drop_mid_epoch_terminates_worker() {
        let data = Arc::new(tiny_features(100, 1, 2));
        let mut l = DoubleBufferLoader::new(data, 5, 6);
        l.start_epoch();
        let _ = l.next_batch();
        drop(l); // must join cleanly without hanging the test
    }
}
